#include "core/lda_baseline.h"

#include <cmath>

#include "math/running_stats.h"

namespace texrheo::core {

LdaModel::LdaModel(const LdaConfig& config, const recipe::Dataset* dataset)
    : config_(config), docs_(dataset), rng_(config.seed) {}

texrheo::StatusOr<LdaModel> LdaModel::Create(const LdaConfig& config,
                                             const recipe::Dataset* dataset) {
  if (dataset == nullptr || dataset->documents.empty()) {
    return Status::InvalidArgument("lda: empty dataset");
  }
  if (config.num_topics < 1 || config.alpha <= 0.0 || config.gamma <= 0.0) {
    return Status::InvalidArgument("lda: invalid hyperparameters");
  }
  LdaModel model(config, dataset);
  model.vocab_size_ = dataset->term_vocab.size();
  size_t d_count = dataset->documents.size();
  int k_count = config.num_topics;
  model.z_.resize(d_count);
  model.n_dk_.assign(d_count, std::vector<int>(k_count, 0));
  model.n_kv_.assign(static_cast<size_t>(k_count),
                     std::vector<int>(model.vocab_size_, 0));
  model.n_k_.assign(static_cast<size_t>(k_count), 0);
  for (size_t d = 0; d < d_count; ++d) {
    const auto& doc = dataset->documents[d];
    model.z_[d].resize(doc.term_ids.size());
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      int k = static_cast<int>(
          model.rng_.NextUint(static_cast<uint64_t>(k_count)));
      model.z_[d][n] = k;
      ++model.n_dk_[d][static_cast<size_t>(k)];
      ++model.n_kv_[static_cast<size_t>(k)]
                   [static_cast<size_t>(doc.term_ids[n])];
      ++model.n_k_[static_cast<size_t>(k)];
    }
  }
  return model;
}

texrheo::Status LdaModel::RunSweeps(int sweeps) {
  int k_count = config_.num_topics;
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  std::vector<double> weights(static_cast<size_t>(k_count));
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (size_t d = 0; d < docs_->documents.size(); ++d) {
      const auto& doc = docs_->documents[d];
      for (size_t n = 0; n < doc.term_ids.size(); ++n) {
        size_t v = static_cast<size_t>(doc.term_ids[n]);
        int old_k = z_[d][n];
        --n_dk_[d][static_cast<size_t>(old_k)];
        --n_kv_[static_cast<size_t>(old_k)][v];
        --n_k_[static_cast<size_t>(old_k)];
        for (int k = 0; k < k_count; ++k) {
          size_t ks = static_cast<size_t>(k);
          weights[ks] =
              (static_cast<double>(n_dk_[d][ks]) + config_.alpha) *
              (static_cast<double>(n_kv_[ks][v]) + config_.gamma) /
              (static_cast<double>(n_k_[ks]) + gamma_v);
        }
        int new_k = static_cast<int>(rng_.NextCategorical(weights));
        z_[d][n] = new_k;
        ++n_dk_[d][static_cast<size_t>(new_k)];
        ++n_kv_[static_cast<size_t>(new_k)][v];
        ++n_k_[static_cast<size_t>(new_k)];
      }
    }
  }
  return Status::OK();
}

std::vector<std::vector<double>> LdaModel::Phi() const {
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  std::vector<std::vector<double>> phi(
      static_cast<size_t>(config_.num_topics),
      std::vector<double>(vocab_size_, 0.0));
  for (int k = 0; k < config_.num_topics; ++k) {
    size_t ks = static_cast<size_t>(k);
    for (size_t v = 0; v < vocab_size_; ++v) {
      phi[ks][v] = (static_cast<double>(n_kv_[ks][v]) + config_.gamma) /
                   (static_cast<double>(n_k_[ks]) + gamma_v);
    }
  }
  return phi;
}

std::vector<std::vector<double>> LdaModel::Theta() const {
  double alpha_sum = config_.alpha * static_cast<double>(config_.num_topics);
  std::vector<std::vector<double>> theta(
      docs_->documents.size(),
      std::vector<double>(static_cast<size_t>(config_.num_topics), 0.0));
  for (size_t d = 0; d < docs_->documents.size(); ++d) {
    double n_d = static_cast<double>(docs_->documents[d].term_ids.size());
    for (int k = 0; k < config_.num_topics; ++k) {
      size_t ks = static_cast<size_t>(k);
      theta[d][ks] =
          (static_cast<double>(n_dk_[d][ks]) + config_.alpha) /
          (n_d + alpha_sum);
    }
  }
  return theta;
}

std::vector<int> LdaModel::DocTopics() const {
  std::vector<int> out(docs_->documents.size(), 0);
  for (size_t d = 0; d < docs_->documents.size(); ++d) {
    int best = 0;
    int best_count = -1;
    for (int k = 0; k < config_.num_topics; ++k) {
      if (n_dk_[d][static_cast<size_t>(k)] > best_count) {
        best_count = n_dk_[d][static_cast<size_t>(k)];
        best = k;
      }
    }
    out[d] = best;
  }
  return out;
}

double LdaModel::LogLikelihood() const {
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  double ll = 0.0;
  for (size_t d = 0; d < docs_->documents.size(); ++d) {
    const auto& doc = docs_->documents[d];
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t k = static_cast<size_t>(z_[d][n]);
      size_t v = static_cast<size_t>(doc.term_ids[n]);
      ll += std::log((static_cast<double>(n_kv_[k][v]) + config_.gamma) /
                     (static_cast<double>(n_k_[k]) + gamma_v));
    }
  }
  return ll;
}

texrheo::StatusOr<std::vector<math::Gaussian>> FitPostHocGaussians(
    const recipe::Dataset& dataset, const std::vector<int>& doc_topic,
    int num_topics, bool use_gel, const math::NormalWishartParams& prior) {
  if (doc_topic.size() != dataset.documents.size()) {
    return Status::InvalidArgument("doc_topic size mismatch");
  }
  std::vector<math::Gaussian> out;
  out.reserve(static_cast<size_t>(num_topics));
  size_t dim = use_gel ? dataset.documents.front().gel_feature.size()
                       : dataset.documents.front().emulsion_feature.size();
  for (int k = 0; k < num_topics; ++k) {
    math::RunningMoments moments(dim);
    for (size_t d = 0; d < dataset.documents.size(); ++d) {
      if (doc_topic[d] != k) continue;
      moments.Add(use_gel ? dataset.documents[d].gel_feature
                          : dataset.documents[d].emulsion_feature);
    }
    // MAP-style estimate: posterior-mean Gaussian of the Normal-Wishart
    // update (degenerate sample covariance is regularized by the prior).
    math::NormalWishartParams post =
        prior.Posterior(moments.count(), moments.Mean(), moments.Scatter());
    TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian g, math::NormalWishartMean(post));
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace texrheo::core
