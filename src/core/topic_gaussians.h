#ifndef TEXRHEO_CORE_TOPIC_GAUSSIANS_H_
#define TEXRHEO_CORE_TOPIC_GAUSSIANS_H_

#include <cstddef>
#include <vector>

#include "math/distributions.h"
#include "math/linalg.h"

namespace texrheo::core {

/// Contiguous structure-of-arrays mirror of the per-topic Gaussian
/// parameters (mean, precision, log normalizer) with the *topic* index
/// innermost, so the eq.-3 log-density evaluation over all K topics is one
/// batch of unit-stride loops the compiler can vectorize (and fuse with FMA
/// where the target has it), instead of K pointer-chasing Gaussian::LogPdf
/// calls.
///
/// Bit-exactness contract: BatchLogPdf, LogPdfScalar, and
/// math::Gaussian::LogPdf perform the *same* floating-point operations in
/// the same order for every topic (row-by-row quadratic form, then
/// 0.5 * (log_norm - quad)), so all three agree to the last bit. The batch
/// loop only reorders work *across* topics, never within one topic, and the
/// build keeps the default FP contraction settings of the rest of the
/// project. tests/topic_gaussians_test.cc and the SIMD cases in
/// tests/sampler_exactness_test.cc pin this for K both a multiple and a
/// non-multiple of any plausible vector width.
class TopicGaussiansSoA {
 public:
  /// Reusable per-caller workspace for BatchLogPdf. The evaluator itself is
  /// const and touches no shared scratch, so any number of threads may
  /// evaluate concurrently against one TopicGaussiansSoA as long as each
  /// brings its own Scratch (the FoldInTheta concurrency contract).
  struct Scratch {
    std::vector<double> diff;  ///< dim * K centered coordinates.
    std::vector<double> row;   ///< K running row sums of the quadratic form.
  };

  TopicGaussiansSoA() = default;

  /// Packs `topics` (all of equal dimension) into the SoA layout. An empty
  /// input yields an empty evaluator.
  static TopicGaussiansSoA FromGaussians(
      const std::vector<math::Gaussian>& topics);

  size_t num_topics() const { return k_; }
  size_t dim() const { return dim_; }
  bool empty() const { return k_ == 0; }

  /// out[k] = log N(x | mu_k, Lambda_k) for every topic k, in one pass.
  /// `out` must hold num_topics() doubles; `scratch` is resized as needed.
  void BatchLogPdf(const math::Vector& x, Scratch& scratch,
                   double* out) const;

  /// Scalar reference path: identical arithmetic for a single topic.
  double LogPdfScalar(size_t k, const math::Vector& x) const;

 private:
  size_t k_ = 0;
  size_t dim_ = 0;
  std::vector<double> mean_;      ///< [i * K + k].
  std::vector<double> prec_;      ///< [(i * dim + j) * K + k].
  std::vector<double> log_norm_;  ///< [k]: log|Lambda_k| - dim * log(2 pi).
};

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_TOPIC_GAUSSIANS_H_
