// texrheo_modelpack: pack, inspect, verify, and unpack the memory-mapped
// binary model format (see core/model_binary.h).
//
//   texrheo_modelpack pack   model.txt out_base     # -> out_base.{dat,idx}
//   texrheo_modelpack info   model.idx              # header + section table
//   texrheo_modelpack verify model.idx              # full CRC + structure
//   texrheo_modelpack unpack model.idx model.txt    # back to v2 text
//
// `pack` canonicalizes through the v2 round-trip, so pack followed by
// unpack reproduces the v2 file byte-for-byte.

#include <cstdio>
#include <string>

#include "core/model_binary.h"
#include "core/serialization.h"
#include "util/csv.h"
#include "util/status.h"

namespace {

using texrheo::Status;
using texrheo::StatusOr;
namespace core = texrheo::core;

int Usage() {
  std::fprintf(stderr,
               "usage: texrheo_modelpack pack <model.txt> <out_base>\n"
               "       texrheo_modelpack info <model.idx>\n"
               "       texrheo_modelpack verify <model.idx>\n"
               "       texrheo_modelpack unpack <model.idx> <out.txt>\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

int Info(const std::string& idx_path) {
  core::ModelBinaryPaths paths = core::ModelBinaryPathsFor(idx_path);
  auto bytes = texrheo::ReadFileToString(paths.idx);
  if (!bytes.ok()) return Fail(bytes.status());
  auto index = core::ParseModelBinaryIndex(*bytes);
  if (!index.ok()) return Fail(index.status());
  std::printf("index:        %s\n", paths.idx.c_str());
  std::printf("data:         %s\n", paths.dat.c_str());
  std::printf("version:      %u\n", index->version);
  std::printf("topics:       %u\n", index->num_topics);
  std::printf("vocab:        %llu\n",
              static_cast<unsigned long long>(index->vocab_size));
  std::printf("gel dim:      %u\n", index->gel_dim);
  std::printf("emulsion dim: %u\n", index->emulsion_dim);
  std::printf("fingerprint:  %08x\n", index->fingerprint);
  std::printf("data bytes:   %llu\n",
              static_cast<unsigned long long>(index->data_file_size));
  std::printf("%-20s %12s %12s %12s %10s\n", "section", "offset", "bytes",
              "count", "crc32");
  for (const core::ModelSectionEntry& entry : index->sections) {
    std::printf("%-20s %12llu %12llu %12llu   %08x\n",
                core::ModelSectionName(
                    static_cast<core::ModelSection>(entry.id)),
                static_cast<unsigned long long>(entry.offset),
                static_cast<unsigned long long>(entry.size),
                static_cast<unsigned long long>(entry.count), entry.crc32);
  }
  return 0;
}

int Verify(const std::string& idx_path) {
  // MappedModel::Open is the verifier: index frame + CRC, section table,
  // per-section CRC over the mapped data, vocabulary pool structure.
  auto mapped = core::MappedModel::Open(idx_path);
  if (!mapped.ok()) return Fail(mapped.status());
  std::printf("ok: %d topics, %zu words, fingerprint %08x, %zu data bytes\n",
              (*mapped)->num_topics(), (*mapped)->vocab_size(),
              (*mapped)->fingerprint(), (*mapped)->mapped_bytes());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string command = argv[1];
  if (command == "pack") {
    if (argc != 4) return Usage();
    Status status = core::ConvertModelFileToBinary(argv[2], argv[3]);
    if (!status.ok()) return Fail(status);
    core::ModelBinaryPaths paths = core::ModelBinaryPathsFor(argv[3]);
    std::printf("wrote %s + %s\n", paths.dat.c_str(), paths.idx.c_str());
    return 0;
  }
  if (command == "info") {
    if (argc != 3) return Usage();
    return Info(argv[2]);
  }
  if (command == "verify") {
    if (argc != 3) return Usage();
    return Verify(argv[2]);
  }
  if (command == "unpack") {
    if (argc != 4) return Usage();
    auto model = core::ReadModelBinary(argv[2]);
    if (!model.ok()) return Fail(model.status());
    Status status = core::SaveModel(argv[3], *model);
    if (!status.ok()) return Fail(status);
    std::printf("wrote %s\n", argv[3]);
    return 0;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
