// texrheo_modelpack: pack, inspect, verify, and unpack the memory-mapped
// binary model format (see core/model_binary.h).
//
//   texrheo_modelpack pack   model.txt out_base [--embed=emb.bin]
//   texrheo_modelpack info   model.idx              # header + section table
//   texrheo_modelpack verify model.idx              # full CRC + structure
//   texrheo_modelpack unpack model.idx model.txt [--embed-out=emb.bin]
//
// `pack` canonicalizes through the v2 round-trip, so pack followed by
// unpack reproduces the v2 file byte-for-byte. `--embed` attaches an
// embedding sidecar (see embed/embedding.h) as the optional trailing
// section pair; `--embed-out` extracts it again, byte-for-byte.

#include <cstdio>
#include <string>

#include "core/model_binary.h"
#include "core/serialization.h"
#include "embed/embedding.h"
#include "util/csv.h"
#include "util/status.h"

namespace {

using texrheo::Status;
using texrheo::StatusOr;
namespace core = texrheo::core;
namespace embed = texrheo::embed;

int Usage() {
  std::fprintf(
      stderr,
      "usage: texrheo_modelpack pack <model.txt> <out_base> [--embed=EMB]\n"
      "       texrheo_modelpack info <model.idx>\n"
      "       texrheo_modelpack verify <model.idx>\n"
      "       texrheo_modelpack unpack <model.idx> <out.txt> "
      "[--embed-out=EMB]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

/// "--flag=value" -> value; empty when absent. Any other extra argument is
/// a usage error (signalled via `bad`).
std::string ParseFlagArg(int argc, char** argv, const char* flag, bool* bad) {
  std::string prefix = std::string(flag) + "=";
  std::string value;
  for (int i = 4; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
    } else {
      *bad = true;
    }
  }
  return value;
}

int Info(const std::string& idx_path) {
  core::ModelBinaryPaths paths = core::ModelBinaryPathsFor(idx_path);
  auto bytes = texrheo::ReadFileToString(paths.idx);
  if (!bytes.ok()) return Fail(bytes.status());
  auto index = core::ParseModelBinaryIndex(*bytes);
  if (!index.ok()) return Fail(index.status());
  std::printf("index:        %s\n", paths.idx.c_str());
  std::printf("data:         %s\n", paths.dat.c_str());
  std::printf("version:      %u\n", index->version);
  std::printf("topics:       %u\n", index->num_topics);
  std::printf("vocab:        %llu\n",
              static_cast<unsigned long long>(index->vocab_size));
  std::printf("gel dim:      %u\n", index->gel_dim);
  std::printf("emulsion dim: %u\n", index->emulsion_dim);
  std::printf("fingerprint:  %08x\n", index->fingerprint);
  std::printf("data bytes:   %llu\n",
              static_cast<unsigned long long>(index->data_file_size));
  // Legacy nine-section packs predate the embedding sections and stay
  // fully servable; say so explicitly instead of leaving a silent gap.
  bool has_embeddings = false;
  for (const core::ModelSectionEntry& entry : index->sections) {
    if (entry.id == static_cast<uint32_t>(core::ModelSection::kEmbedding)) {
      has_embeddings = true;
      std::printf("embeddings:   dim=%llu crc32=%08x\n",
                  static_cast<unsigned long long>(
                      index->vocab_size == 0 ? 0
                                             : entry.count / index->vocab_size),
                  entry.crc32);
    }
  }
  if (!has_embeddings) {
    std::printf("embeddings:   none (legacy nine-section pack)\n");
  }
  std::printf("%-20s %12s %12s %12s %10s\n", "section", "offset", "bytes",
              "count", "crc32");
  for (const core::ModelSectionEntry& entry : index->sections) {
    std::printf("%-20s %12llu %12llu %12llu   %08x\n",
                core::ModelSectionName(
                    static_cast<core::ModelSection>(entry.id)),
                static_cast<unsigned long long>(entry.offset),
                static_cast<unsigned long long>(entry.size),
                static_cast<unsigned long long>(entry.count), entry.crc32);
  }
  return 0;
}

int Verify(const std::string& idx_path) {
  // MappedModel::Open is the verifier: index frame + CRC, section table,
  // per-section CRC over the mapped data, vocabulary pool structure, and
  // (when present) embedding matrix/norm finiteness.
  auto mapped = core::MappedModel::Open(idx_path);
  if (!mapped.ok()) return Fail(mapped.status());
  std::printf("ok: %d topics, %zu words, fingerprint %08x, %zu data bytes\n",
              (*mapped)->num_topics(), (*mapped)->vocab_size(),
              (*mapped)->fingerprint(), (*mapped)->mapped_bytes());
  if ((*mapped)->has_embeddings()) {
    std::printf("ok: embeddings %zu x %zu\n", (*mapped)->vocab_size(),
                (*mapped)->embedding_dim());
  } else {
    std::printf("ok: no embedding sections (legacy pack)\n");
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string command = argv[1];
  if (command == "pack") {
    if (argc < 4) return Usage();
    bool bad = false;
    std::string embed_path = ParseFlagArg(argc, argv, "--embed", &bad);
    if (bad) return Usage();
    embed::EmbeddingTable table;
    if (!embed_path.empty()) {
      auto table_or = embed::LoadEmbeddingTable(embed_path);
      if (!table_or.ok()) return Fail(table_or.status());
      table = *std::move(table_or);
    }
    Status status = core::ConvertModelFileToBinary(
        argv[2], argv[3], texrheo::FileOps::Real(),
        table.empty() ? nullptr : &table);
    if (!status.ok()) return Fail(status);
    core::ModelBinaryPaths paths = core::ModelBinaryPathsFor(argv[3]);
    std::printf("wrote %s + %s%s\n", paths.dat.c_str(), paths.idx.c_str(),
                table.empty() ? "" : " (with embeddings)");
    return 0;
  }
  if (command == "info") {
    if (argc != 3) return Usage();
    return Info(argv[2]);
  }
  if (command == "verify") {
    if (argc != 3) return Usage();
    return Verify(argv[2]);
  }
  if (command == "unpack") {
    if (argc < 4) return Usage();
    bool bad = false;
    std::string embed_out = ParseFlagArg(argc, argv, "--embed-out", &bad);
    if (bad) return Usage();
    auto model = core::ReadModelBinary(argv[2]);
    if (!model.ok()) return Fail(model.status());
    Status status = core::SaveModel(argv[3], *model);
    if (!status.ok()) return Fail(status);
    if (embed_out.empty()) {
      std::printf("wrote %s\n", argv[3]);
      return 0;
    }
    // Extracting the sidecar needs the mapped view (ReadModelBinary
    // returns only the v2-representable model, which has no embeddings).
    auto mapped = core::MappedModel::Open(argv[2]);
    if (!mapped.ok()) return Fail(mapped.status());
    if (!(*mapped)->has_embeddings()) {
      return Fail(Status::FailedPrecondition(
          "--embed-out: pack has no embedding sections (legacy pack)"));
    }
    embed::EmbeddingTable table = core::CopyEmbeddingTable(**mapped);
    status = embed::SaveEmbeddingTable(embed_out, table);
    if (!status.ok()) return Fail(status);
    std::printf("wrote %s + %s\n", argv[3], embed_out.c_str());
    return 0;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
