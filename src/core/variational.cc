#include "core/variational.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/running_stats.h"
#include "math/special.h"
#include "util/rng.h"

namespace texrheo::core {

VariationalJointTopicModel::VariationalJointTopicModel(
    const JointTopicModelConfig& config, const recipe::Dataset* dataset)
    : config_(config), docs_(dataset) {}

texrheo::StatusOr<VariationalJointTopicModel>
VariationalJointTopicModel::Create(const JointTopicModelConfig& config,
                                   const recipe::Dataset* dataset) {
  if (dataset == nullptr || dataset->documents.empty()) {
    return Status::InvalidArgument("variational model: empty dataset");
  }
  if (config.num_topics < 1 || config.alpha <= 0.0 || config.gamma <= 0.0) {
    return Status::InvalidArgument("variational model: invalid config");
  }
  VariationalJointTopicModel model(config, dataset);
  TEXRHEO_RETURN_IF_ERROR(model.Initialize());
  return model;
}

texrheo::Status VariationalJointTopicModel::Initialize() {
  const auto& documents = docs_->documents;
  vocab_size_ = docs_->term_vocab.size();
  size_t d_count = documents.size();
  size_t k_count = static_cast<size_t>(config_.num_topics);

  if (config_.auto_prior) {
    // Same empirical prior recipe as the samplers.
    size_t gel_dim = documents.front().gel_feature.size();
    size_t emu_dim = documents.front().emulsion_feature.size();
    math::RunningMoments gel_moments(gel_dim), emu_moments(emu_dim);
    for (const auto& doc : documents) {
      gel_moments.Add(doc.gel_feature);
      emu_moments.Add(doc.emulsion_feature);
    }
    auto make_prior = [this](const math::RunningMoments& m) {
      math::NormalWishartParams prior;
      size_t dim = m.dim();
      prior.mu0 = m.Mean();
      prior.beta = config_.prior_beta;
      prior.nu = static_cast<double>(dim) + config_.prior_nu_extra;
      prior.scale = math::Matrix(dim, dim);
      math::Matrix cov = m.Covariance();
      for (size_t i = 0; i < dim; ++i) {
        prior.scale(i, i) = 1.0 / (std::max(cov(i, i), 1e-3) * prior.nu);
      }
      return prior;
    };
    config_.gel_prior = make_prior(gel_moments);
    config_.emulsion_prior = make_prior(emu_moments);
  }
  TEXRHEO_RETURN_IF_ERROR(config_.gel_prior.Validate());
  TEXRHEO_RETURN_IF_ERROR(config_.emulsion_prior.Validate());

  Rng rng(config_.seed);
  gamma_.resize(d_count);
  rho_.assign(d_count, std::vector<double>(k_count, 0.0));
  e_n_dk_.assign(d_count, std::vector<double>(k_count, 0.0));
  e_n_kv_.assign(k_count, std::vector<double>(vocab_size_, 0.0));
  e_n_k_.assign(k_count, 0.0);

  for (size_t d = 0; d < d_count; ++d) {
    const auto& doc = documents[d];
    gamma_[d].resize(doc.term_ids.size());
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      // Random simplex initialization breaks symmetry.
      gamma_[d][n] =
          math::DirichletSample(rng, k_count, 1.0).data();
      for (size_t k = 0; k < k_count; ++k) {
        double g = gamma_[d][n][k];
        e_n_dk_[d][k] += g;
        e_n_kv_[k][static_cast<size_t>(doc.term_ids[n])] += g;
        e_n_k_[k] += g;
      }
    }
    rho_[d] = math::DirichletSample(rng, k_count, 1.0).data();
  }
  return UpdateGaussians();
}

texrheo::Status VariationalJointTopicModel::UpdateGaussians() {
  const auto& documents = docs_->documents;
  size_t k_count = static_cast<size_t>(config_.num_topics);
  size_t gel_dim = documents.front().gel_feature.size();
  size_t emu_dim = documents.front().emulsion_feature.size();

  std::vector<math::Gaussian> new_gel, new_emu;
  new_gel.reserve(k_count);
  new_emu.reserve(k_count);
  for (size_t k = 0; k < k_count; ++k) {
    // Responsibility-weighted mean and scatter.
    double weight = 0.0;
    math::Vector gel_sum(gel_dim), emu_sum(emu_dim);
    for (size_t d = 0; d < documents.size(); ++d) {
      double r = rho_[d][k];
      weight += r;
      gel_sum += r * documents[d].gel_feature;
      emu_sum += r * documents[d].emulsion_feature;
    }
    math::Vector gel_mean = gel_sum, emu_mean = emu_sum;
    if (weight > 1e-12) {
      gel_mean *= 1.0 / weight;
      emu_mean *= 1.0 / weight;
    }
    math::Matrix gel_scatter(gel_dim, gel_dim);
    math::Matrix emu_scatter(emu_dim, emu_dim);
    for (size_t d = 0; d < documents.size(); ++d) {
      double r = rho_[d][k];
      if (r <= 1e-12) continue;
      math::Vector dg = documents[d].gel_feature - gel_mean;
      math::Vector de = documents[d].emulsion_feature - emu_mean;
      gel_scatter += r * math::Matrix::Outer(dg, dg);
      emu_scatter += r * math::Matrix::Outer(de, de);
    }
    math::NormalWishartParams gel_post =
        config_.gel_prior.PosteriorWeighted(weight, gel_mean, gel_scatter);
    math::NormalWishartParams emu_post =
        config_.emulsion_prior.PosteriorWeighted(weight, emu_mean,
                                                 emu_scatter);
    TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian g,
                             math::NormalWishartMean(gel_post));
    TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian e,
                             math::NormalWishartMean(emu_post));
    new_gel.push_back(std::move(g));
    new_emu.push_back(std::move(e));
  }
  gel_topics_ = std::move(new_gel);
  emulsion_topics_ = std::move(new_emu);
  return Status::OK();
}

void VariationalJointTopicModel::UpdateWordResponsibilities() {
  const auto& documents = docs_->documents;
  size_t k_count = static_cast<size_t>(config_.num_topics);
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  std::vector<double> weights(k_count);

  for (size_t d = 0; d < documents.size(); ++d) {
    const auto& doc = documents[d];
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t v = static_cast<size_t>(doc.term_ids[n]);
      // Remove this token's own responsibility (CVB0's "minus self").
      for (size_t k = 0; k < k_count; ++k) {
        double g = gamma_[d][n][k];
        e_n_dk_[d][k] -= g;
        e_n_kv_[k][v] -= g;
        e_n_k_[k] -= g;
      }
      double total = 0.0;
      for (size_t k = 0; k < k_count; ++k) {
        double doc_part = e_n_dk_[d][k] + rho_[d][k] + config_.alpha;
        double word_part = (e_n_kv_[k][v] + config_.gamma) /
                           (e_n_k_[k] + gamma_v);
        weights[k] = std::max(doc_part, 1e-12) * std::max(word_part, 1e-12);
        total += weights[k];
      }
      for (size_t k = 0; k < k_count; ++k) {
        double g = weights[k] / total;
        gamma_[d][n][k] = g;
        e_n_dk_[d][k] += g;
        e_n_kv_[k][v] += g;
        e_n_k_[k] += g;
      }
    }
  }
}

void VariationalJointTopicModel::UpdateDocResponsibilities() {
  const auto& documents = docs_->documents;
  size_t k_count = static_cast<size_t>(config_.num_topics);
  std::vector<double> log_w(k_count);
  for (size_t d = 0; d < documents.size(); ++d) {
    const auto& doc = documents[d];
    for (size_t k = 0; k < k_count; ++k) {
      double lw = std::log(e_n_dk_[d][k] + config_.alpha);
      lw += gel_topics_[k].LogPdf(doc.gel_feature);
      if (config_.use_emulsion_likelihood) {
        lw += emulsion_topics_[k].LogPdf(doc.emulsion_feature);
      }
      log_w[k] = lw;
    }
    double norm = math::LogSumExp(log_w.data(), log_w.size());
    for (size_t k = 0; k < k_count; ++k) {
      rho_[d][k] = std::exp(log_w[k] - norm);
    }
  }
}

double VariationalJointTopicModel::ComputeObjective() const {
  const auto& documents = docs_->documents;
  size_t k_count = static_cast<size_t>(config_.num_topics);
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  double alpha_sum = config_.alpha * static_cast<double>(k_count);
  double objective = 0.0;
  for (size_t d = 0; d < documents.size(); ++d) {
    const auto& doc = documents[d];
    double n_d = static_cast<double>(doc.term_ids.size());
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t v = static_cast<size_t>(doc.term_ids[n]);
      double p = 0.0;
      for (size_t k = 0; k < k_count; ++k) {
        double theta = (e_n_dk_[d][k] + rho_[d][k] + config_.alpha) /
                       (n_d + 1.0 + alpha_sum);
        double phi = (e_n_kv_[k][v] + config_.gamma) / (e_n_k_[k] + gamma_v);
        p += theta * phi;
      }
      objective += std::log(std::max(p, 1e-300));
    }
    for (size_t k = 0; k < k_count; ++k) {
      double r = rho_[d][k];
      if (r <= 1e-12) continue;
      double lw = gel_topics_[k].LogPdf(doc.gel_feature);
      if (config_.use_emulsion_likelihood) {
        lw += emulsion_topics_[k].LogPdf(doc.emulsion_feature);
      }
      objective += r * lw;
    }
  }
  return objective;
}

texrheo::Status VariationalJointTopicModel::Run(int max_iterations,
                                                double tolerance) {
  double previous = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < max_iterations; ++iter) {
    UpdateWordResponsibilities();
    UpdateDocResponsibilities();
    TEXRHEO_RETURN_IF_ERROR(UpdateGaussians());
    objective_ = ComputeObjective();
    ++iterations_run_;
    if (iter > 0 && std::fabs(objective_ - previous) <=
                        tolerance * (std::fabs(previous) + 1.0)) {
      break;
    }
    previous = objective_;
  }
  return Status::OK();
}

texrheo::StatusOr<TopicEstimates> VariationalJointTopicModel::Estimate()
    const {
  const auto& documents = docs_->documents;
  size_t k_count = static_cast<size_t>(config_.num_topics);
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  double alpha_sum = config_.alpha * static_cast<double>(k_count);

  TopicEstimates est;
  est.phi.assign(k_count, std::vector<double>(vocab_size_, 0.0));
  for (size_t k = 0; k < k_count; ++k) {
    for (size_t v = 0; v < vocab_size_; ++v) {
      est.phi[k][v] = (e_n_kv_[k][v] + config_.gamma) /
                      (e_n_k_[k] + gamma_v);
    }
  }
  est.gel_topics = gel_topics_;
  est.emulsion_topics = emulsion_topics_;
  est.theta.assign(documents.size(), std::vector<double>(k_count, 0.0));
  est.doc_topic.resize(documents.size());
  est.topic_recipe_count.assign(k_count, 0);
  for (size_t d = 0; d < documents.size(); ++d) {
    double n_d = static_cast<double>(documents[d].term_ids.size());
    int best = 0;
    double best_val = -1.0;
    for (size_t k = 0; k < k_count; ++k) {
      double val = (e_n_dk_[d][k] + rho_[d][k] + config_.alpha) /
                   (n_d + 1.0 + alpha_sum);
      est.theta[d][k] = val;
      if (val > best_val) {
        best_val = val;
        best = static_cast<int>(k);
      }
    }
    est.doc_topic[d] = best;
    ++est.topic_recipe_count[static_cast<size_t>(best)];
  }
  return est;
}

}  // namespace texrheo::core
