#ifndef TEXRHEO_CORE_JOINT_TOPIC_MODEL_H_
#define TEXRHEO_CORE_JOINT_TOPIC_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "core/sparse_gibbs.h"
#include "core/topic_gaussians.h"
#include "math/distributions.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "math/linalg.h"
#include "recipe/dataset.h"
#include "util/atomic_file.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace texrheo::core {

/// Hyperparameters and schedule of the joint topic model (paper Section
/// III.B, Fig. 1). Each topic k owns:
///   phi_k  ~ Dir(gamma)                    - texture-term distribution
///   (mu_k, Lambda_k) ~ NW(gel prior)       - gel-concentration Gaussian
///   (m_k,  L_k)      ~ NW(emulsion prior)  - emulsion Gaussian
/// Each recipe d draws theta_d ~ Dir(alpha); every texture word w_dn gets a
/// topic z_dn ~ Mult(theta_d), and the whole recipe's concentration vectors
/// get one topic y_d ~ Mult(theta_d).
struct JointTopicModelConfig {
  int num_topics = 10;
  double alpha = 0.3;   ///< Symmetric Dirichlet on theta_d.
  double gamma = 0.1;   ///< Symmetric Dirichlet on phi_k.

  /// Normal-Wishart hyperparameters. When `auto_prior` is true (default)
  /// mu0 / scale are derived from the data (empirical mean; scale set so
  /// E[Lambda] matches the empirical feature variance), which is the usual
  /// practice when the paper does not publish its hyperparameters.
  bool auto_prior = true;
  math::NormalWishartParams gel_prior;
  math::NormalWishartParams emulsion_prior;
  /// Pseudo-count strength used by the auto prior.
  double prior_beta = 0.5;
  double prior_nu_extra = 3.0;  ///< nu = dim + prior_nu_extra.

  int burn_in_sweeps = 60;
  int sweeps = 200;     ///< Total Gibbs sweeps (including burn-in).
  uint64_t seed = 1;

  /// When true, the symmetric alpha is re-estimated every
  /// `alpha_update_interval` sweeps (after burn-in) by Minka's fixed-point
  /// update on the current topic-count matrix. The paper fixes its
  /// hyperparameters; this is an optional extension.
  bool optimize_alpha = false;
  int alpha_update_interval = 20;

  /// When true, the per-recipe topics y are initialized from a Gaussian
  /// mixture fit on the gel features (k-means++-seeded EM) instead of
  /// uniformly at random. Cuts burn-in on well-separated corpora; the
  /// stationary distribution is unchanged.
  bool gmm_init = false;

  /// Eq. (3) as printed carries only the gel Gaussian even though the
  /// graphical model draws e_d from the y_d component too. The literal
  /// equation (false, default) reproduces the paper's Section V.B behaviour:
  /// topics keep within-topic emulsion diversity, which is what the
  /// Bavarois / Milk-jelly emulsion-KL analysis of Figs. 3-4 relies on.
  /// True adds the emulsion Gaussian to the y conditional (ablation) and
  /// yields emulsion-pure topics instead.
  bool use_emulsion_likelihood = false;

  /// Worker threads for the z/y sweeps. 1 (default) runs the bit-exact
  /// legacy serial chain; 0 resolves to the hardware concurrency; > 1 runs
  /// the AD-LDA style parallel engine, which shards documents across
  /// workers against a frozen snapshot of the topic-word counts and merges
  /// per-worker count deltas after each sweep. The parallel chain is only
  /// *statistically* equivalent to the serial one (same stationary
  /// distribution up to the standard AD-LDA approximation), never
  /// bit-identical; at a fixed (seed, num_threads) it is fully
  /// deterministic because every shard draws from its own SplitMix64-split
  /// RNG stream.
  int num_threads = 1;

  /// Sub-O(K) z sampling (SparseLDA/AliasLDA-style). When true, the
  /// per-token eq.-2 draw is decomposed into a sparse bucket over only the
  /// topics active in the document plus a dense stale bucket served from
  /// per-term alias tables rebuilt every `alias_rebuild_interval` sweeps,
  /// with `mh_steps` Metropolis-Hastings accept/reject steps against the
  /// exact conditional. The stationary distribution is *identical* to the
  /// dense sampler's (certified by the Geweke stale-alias leg and the
  /// moment-equivalence tests); the trajectory is not, because the RNG
  /// consumption pattern differs — hence false by default, keeping every
  /// pre-existing seed-pinned run bit-exact.
  bool sparse_sampler = false;
  /// Sweeps between alias-table rebuilds (the staleness knob R). Larger
  /// values amortize rebuild cost over more sweeps at the price of a more
  /// drifted proposal (lower MH acceptance); correctness is unaffected at
  /// any R >= 1 because the MH step corrects the drift exactly.
  int alias_rebuild_interval = 8;
  /// MH proposal/accept steps per token. Each step costs O(1) given the
  /// buckets; more steps track the exact conditional tighter per sweep.
  int mh_steps = 2;

  /// Sweeps between entries of the joint log-likelihood trace (>= 1). The
  /// likelihood pass is O(tokens) with two log() evaluations per token, so
  /// on large corpora it can rival the z sweep itself; trainers that only
  /// need a thinned trace can raise this. The pass is a pure read of the
  /// sampler state and draws no RNG, so the chain trajectory is identical
  /// at any interval — only the trace density (and the per-sweep
  /// non-finiteness guard it doubles as) changes.
  int likelihood_interval = 1;

  /// Crash-safe checkpointing. When `checkpoint_interval` > 0 and
  /// `checkpoint_dir` is non-empty, RunSweeps writes an atomic,
  /// checksummed snapshot of the full sampler state every
  /// `checkpoint_interval` completed sweeps and keeps only the newest
  /// `checkpoint_keep_last` files. A serial chain (num_threads == 1)
  /// resumed from such a checkpoint continues *bit-exactly*; a parallel
  /// chain continues deterministically at fixed (seed, num_threads).
  int checkpoint_interval = 0;
  std::string checkpoint_dir;
  int checkpoint_keep_last = 3;
};

/// Point estimates after Gibbs convergence (paper eq. 5).
struct TopicEstimates {
  /// phi[k][v]: P(term v | topic k).
  std::vector<std::vector<double>> phi;
  /// theta[d][k]: P(topic k | recipe d).
  std::vector<std::vector<double>> theta;
  /// Per-topic gel Gaussian (over -log-concentration features).
  std::vector<math::Gaussian> gel_topics;
  /// Per-topic emulsion Gaussian.
  std::vector<math::Gaussian> emulsion_topics;
  /// Hard assignment: argmax_k theta[d][k].
  std::vector<int> doc_topic;
  /// Number of recipes per topic under the hard assignment.
  std::vector<int> topic_recipe_count;
};

/// Joint topic model trained by Gibbs sampling (paper eqs. 2-4).
///
/// The texture-term component is collapsed (phi integrated out; eq. 2 uses
/// count ratios), while the Gaussian components are instantiated and
/// resampled from their Normal-Wishart posteriors each sweep (eq. 4), as in
/// the paper.
class JointTopicModel {
 public:
  /// Validates config and initializes state over `dataset` (which must
  /// outlive the model). Topics are seeded by random assignment.
  static texrheo::StatusOr<JointTopicModel> Create(
      const JointTopicModelConfig& config, const recipe::Dataset* dataset);

  JointTopicModel(JointTopicModel&&) = default;
  JointTopicModel& operator=(JointTopicModel&&) = default;

  /// Runs `n` full Gibbs sweeps (z for every token, y for every recipe,
  /// Gaussian parameter redraws).
  texrheo::Status RunSweeps(int n);

  /// Runs the configured schedule (config.sweeps).
  texrheo::Status Train() { return RunSweeps(config_.sweeps); }

  /// Complete-data log likelihood under current assignments; increases to a
  /// plateau as the chain mixes (used for convergence checks and tests).
  double LogJointLikelihood() const;

  /// Extracts eq.-5 point estimates from the current state.
  TopicEstimates Estimate() const;

  /// Mean gel feature vector of recipes currently assigned (y_d) to topic k;
  /// zero vector when the topic is empty.
  math::Vector TopicGelFeatureMean(int k) const;

  int num_topics() const { return config_.num_topics; }
  size_t num_documents() const { return docs_->documents.size(); }
  size_t vocab_size() const { return vocab_size_; }
  const JointTopicModelConfig& config() const { return config_; }
  int completed_sweeps() const { return completed_sweeps_; }
  const std::vector<double>& likelihood_trace() const {
    return likelihood_trace_;
  }

  /// Current per-recipe concentration-topic assignments y_d.
  const std::vector<int>& y() const { return y_; }

  /// Current per-token topic assignments z_[d][n].
  const std::vector<std::vector<int>>& z() const { return z_; }

  /// Current instantiated per-topic Gaussians (latent state of eq. 4).
  const std::vector<math::Gaussian>& gel_topics() const {
    return gel_topics_;
  }
  const std::vector<math::Gaussian>& emulsion_topics() const {
    return emulsion_topics_;
  }

  /// Rebuilds the topic-word count caches from the current assignments and
  /// the dataset's *current* token ids, then redraws the topic Gaussians
  /// from their Normal-Wishart posteriors. The sampler-correctness harness
  /// (Geweke successive-conditional chain) mutates the dataset's term ids
  /// and features between sweeps and calls this to re-anchor the chain;
  /// document count and per-document token counts must be unchanged.
  texrheo::Status ResyncWithData();

  /// Current symmetric alpha (changes only when optimize_alpha is set).
  double alpha() const { return config_.alpha; }

  /// One Minka fixed-point update of the symmetric alpha from the current
  /// document-topic counts (words + the y pseudo-count, matching eq. 5's
  /// theta). Returns the new alpha; exposed for tests.
  double UpdateAlpha();

  /// Infers the most likely concentration topic for an unseen (gel,
  /// emulsion) feature pair under the current Gaussians (prior-weighted by
  /// topic sizes). Used by the recipe-annotator example.
  int InferTopicForFeatures(const math::Vector& gel_feature,
                            const math::Vector& emulsion_feature) const;

  /// Folds an unseen document into the trained model: holds phi and the
  /// Gaussians fixed and Gibbs-samples the document's own z / y for
  /// `fold_in_sweeps`, then returns the eq.-5 theta estimate. This is the
  /// standard way to score or place recipes that were not in the training
  /// corpus.
  ///
  /// The read path is const and touches only frozen model state (count
  /// caches, instantiated Gaussians, config); all per-document scratch is
  /// local and the caller supplies the RNG, so any number of threads may
  /// fold in documents concurrently against one model — each with its own
  /// `rng` — as long as no thread is mutating the model (RunSweeps /
  /// Restore / Resync). The serving layer and the TSan-covered
  /// concurrent-query test rely on exactly this contract.
  texrheo::StatusOr<std::vector<double>> FoldInTheta(
      const recipe::Document& doc, int fold_in_sweeps, Rng& rng) const;

  /// Convenience overload drawing from the model's own master RNG stream
  /// (non-const: advances the stream; single-threaded callers only).
  texrheo::StatusOr<std::vector<double>> FoldInTheta(
      const recipe::Document& doc, int fold_in_sweeps = 30) {
    return FoldInTheta(doc, fold_in_sweeps, rng_);
  }

  /// Snapshot of the complete sampler state (assignments, counts, RNG
  /// streams, instantiated Gaussians, likelihood trace) for checkpointing.
  CheckpointState CaptureCheckpoint() const;

  /// Restores a CaptureCheckpoint snapshot. Refuses (FailedPrecondition)
  /// when the checkpoint's fingerprint does not match this model's
  /// configuration, and (InvalidArgument) when the stored count matrices
  /// disagree with a rebuild from the checkpoint's assignments and this
  /// model's dataset — i.e. the corpus changed since the checkpoint.
  texrheo::Status RestoreFromCheckpoint(const CheckpointState& state);

  /// Warm-starts from a checkpoint taken over a *prefix* of this model's
  /// corpus: hyperparameters must match exactly, but the checkpoint may
  /// cover fewer documents and a smaller vocabulary than the dataset —
  /// the streaming-refresh case, where the batch corpus and its term ids
  /// are unchanged, new documents are appended, and the vocabulary is
  /// extended append-only. Prefix documents resume from their
  /// checkpointed assignments; appended documents are initialized against
  /// the checkpointed topic Gaussians; counts are rebuilt at the new
  /// dimensions and the Gaussians redrawn. The chain is not bit-exact
  /// with any batch run (the corpus grew), but it is deterministic and
  /// starts from the mixed state instead of a cold one.
  texrheo::Status WarmStartFromCheckpoint(const CheckpointState& state);

  /// Loads the newest valid checkpoint in config.checkpoint_dir (skipping
  /// torn or corrupt files) and restores it. NotFound when no valid
  /// checkpoint exists.
  texrheo::Status Resume();

  /// Writes a checkpoint for the current state immediately (regardless of
  /// the interval) and applies the retention policy.
  texrheo::Status WriteCheckpointNow();

  /// OK when the sampler state is numerically healthy: finite likelihood,
  /// finite Gaussian parameters, sane alpha. Runs automatically after each
  /// sweep; a poisoned state stops RunSweeps with this Status *before* any
  /// checkpoint of it is written.
  texrheo::Status CheckNumericalHealth() const;

  /// Test seam: routes checkpoint writes through `ops` (fault injection).
  /// Pass nullptr to restore the real filesystem. Not owned.
  void set_checkpoint_file_ops(FileOps* ops) { checkpoint_file_ops_ = ops; }

  /// Test seam (sparse sampler): per-topic decomposition of the MH proposal
  /// for token (d, n), computed two ways by the *production* bucket code —
  /// `bucket_mass[k]` is the mass topic k actually receives from the
  /// sparse/extra/dense buckets as built, `ratio_mass[k]` is the per-topic
  /// proposal mass the acceptance ratio assumes (coef * w + alpha * q).
  /// Detailed balance requires the arrays to be bit-identical; the
  /// certification tier pins this on the old_k == y_d last-token corner
  /// (flagged by `last_token_of_self_topic`), where a miscounted extra
  /// y_d slot would double topic y_d's proposal mass.
  struct SparseProposalDebug {
    std::vector<double> bucket_mass;
    std::vector<double> ratio_mass;
    /// True when this token is the only one of its topic in the document
    /// and y_d equals that topic (the double-count hazard case).
    bool last_token_of_self_topic = false;
  };

  /// Builds the buckets for token (d, n) exactly as a sweep would (alias
  /// bank rebuilt if stale) and returns the decomposition above. Draws no
  /// RNG and leaves the chain state untouched apart from a possible
  /// scheduled alias rebuild. FailedPrecondition unless sparse_sampler is
  /// configured; OutOfRange for a bad token index.
  texrheo::StatusOr<SparseProposalDebug> DebugSparseProposal(size_t d,
                                                             size_t n);

  /// Attaches the trainer to an observability layer (either may be null;
  /// neither is owned and both must outlive the model). With `metrics` set,
  /// every sweep exports its timing breakdown (train.sweep_us,
  /// train.shard_sample_us, train.gaussian_update_us), progress counters
  /// (train.sweeps_completed, train.checkpoints_written), and state gauges
  /// (train.log_likelihood, train.alpha, train.alpha_drift). With `tracer`
  /// set, each sweep emits a hierarchical sweep -> shard_sample /
  /// gaussian_update span tree stamped by the tracer's injected clock.
  ///
  /// Instrumentation reads the sampler state but never writes it and never
  /// draws from any RNG stream: the chain trajectory is bit-identical with
  /// observability attached or not (enforced by sampler_exactness_test).
  void SetObservability(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

 private:
  JointTopicModel(const JointTopicModelConfig& config,
                  const recipe::Dataset* dataset);

  texrheo::Status InitializePriors();
  texrheo::Status InitializeAssignments();
  texrheo::Status ResampleGaussians();
  void SampleZ();
  texrheo::Status SampleY();
  /// Lazily builds the thread pool, shard plan, and per-shard RNG streams.
  void EnsureParallelEngine();
  void SampleZParallel();
  void SampleYParallel();
  /// Sparse + alias + MH z sweeps (see config.sparse_sampler). The serial
  /// variant mutates the global counts in place; the parallel variant runs
  /// the same per-token procedure against frozen globals + per-shard
  /// deltas, with the (read-only) stale bank shared across shards.
  void SampleZSparse();
  void SampleZSparseParallel();
  /// One MH-corrected draw for token (d, n). The effective counts passed
  /// in still *include* the token; the collapsed-Gibbs removal is applied
  /// virtually inside the draw (a -1 on old_k's term and document counts,
  /// plus `inv_denom_removed` = the caller's reciprocal of old_k's
  /// decremented topic total), so callers only write counts when the
  /// returned topic differs from old_k. Tallies accumulate proposal
  /// statistics. Returns the new topic.
  /// `term_counts`, when non-null, points at the [K] term-major count slice
  /// for term v (the serial sweep's n_vk_ mirror); null falls back to the
  /// column reads of n_kv_ (+ delta).
  /// `debug`, when non-null, captures the per-topic proposal decomposition
  /// (see SparseProposalDebug) and returns old_k before any MH step or RNG
  /// draw.
  int SparseTokenDraw(size_t d, size_t v, int old_k, Rng& rng,
                      const std::vector<std::vector<int>>* delta_n_kv,
                      const int* term_counts,
                      const std::vector<double>& inv_denom,
                      double inv_denom_removed,
                      std::vector<double>& sparse_w, uint64_t& proposals,
                      uint64_t& accepts, uint64_t& sparse_hits,
                      SparseProposalDebug* debug = nullptr) const;
  /// Rebuilds the stale alias bank when the schedule says so (first sweep
  /// or R sweeps since the last rebuild). No-op on the dense path.
  void MaybeRebuildStaleBank();
  /// Re-derives every document's active-topic list from n_dk_.
  void RebuildActiveLists();
  /// Repacks gel_soa_/emu_soa_ from the current instantiated Gaussians.
  void RebuildGaussianSoA();
  CheckpointFingerprint MakeFingerprint() const;
  /// Writes a checkpoint when the configured interval divides
  /// completed_sweeps_; no-op when checkpointing is not configured.
  texrheo::Status MaybeWriteCheckpoint();

  JointTopicModelConfig config_;
  const recipe::Dataset* docs_;
  size_t vocab_size_ = 0;
  /// config_.alpha as configured, before any optimize_alpha drift; part of
  /// the checkpoint fingerprint.
  double initial_alpha_ = 0.0;
  FileOps* checkpoint_file_ops_ = nullptr;  ///< Test seam; not owned.

  // Observability (see SetObservability). All null when detached; the
  // handles are owned by the registry. The timing clock is the tracer's
  // when one is attached (so ManualClock tests see deterministic
  // durations), the steady clock otherwise.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* obs_sweeps_ = nullptr;
  obs::Counter* obs_checkpoints_ = nullptr;
  obs::Gauge* obs_likelihood_ = nullptr;
  obs::Gauge* obs_alpha_ = nullptr;
  obs::Gauge* obs_alpha_drift_ = nullptr;
  obs::Counter* obs_alias_rebuilds_ = nullptr;
  obs::Counter* obs_sparse_hits_ = nullptr;
  obs::Gauge* obs_mh_accept_ = nullptr;
  LatencyHistogram* obs_sweep_us_ = nullptr;
  LatencyHistogram* obs_sample_us_ = nullptr;
  LatencyHistogram* obs_gaussian_us_ = nullptr;

  Rng rng_;
  // Parallel engine (populated on first parallel sweep; see num_threads).
  int resolved_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::pair<size_t, size_t>> shards_;
  std::vector<Rng> shard_rngs_;  ///< One SplitMix64-split stream per shard.
  // Latent state.
  std::vector<std::vector<int>> z_;  // z_[d][n]: topic of token n of doc d.
  std::vector<int> y_;               // y_[d]: topic of doc d's vectors.
  // Count caches.
  std::vector<std::vector<int>> n_dk_;  // words of topic k in doc d.
  std::vector<std::vector<int>> n_kv_;  // term v in topic k.
  std::vector<int> n_k_;                // words in topic k.
  std::vector<int> m_k_;                // docs whose y == k.
  // Gaussian components (instantiated, resampled each sweep).
  std::vector<math::Gaussian> gel_topics_;
  std::vector<math::Gaussian> emulsion_topics_;
  // SoA mirrors of the Gaussians for the batched eq.-3 log-density loop;
  // repacked by RebuildGaussianSoA whenever the Gaussians change. Read-only
  // between repacks, so const readers (FoldInTheta) may share them.
  TopicGaussiansSoA gel_soa_;
  TopicGaussiansSoA emu_soa_;
  // Sparse-sampler state (populated only when config_.sparse_sampler).
  std::vector<ActiveTopicList> active_;  ///< One per document.
  /// Term-major mirror of n_kv_ ([v * K + k]), maintained by the *serial*
  /// sparse z sweep only: every per-token count read and write for term v
  /// then lands in one contiguous K-slice instead of K scattered rows,
  /// which is where the sparse path's remaining per-token latency lives.
  /// Mirrors n_kv_ exactly while n_vk_synced_ holds; wholesale n_kv_
  /// reassignments (init, resume, refresh) just drop the flag and the next
  /// sparse sweep rebuilds the mirror in one pass.
  std::vector<int> n_vk_;
  bool n_vk_synced_ = false;
  StaleAliasBank stale_;
  std::vector<double> inv_denom_;  ///< Serial path's 1/(n_k + gamma V).
  // Per-sweep MH tallies (plain integers, no RNG, updated regardless of
  // whether metrics are attached — instrumentation stays trajectory-inert).
  uint64_t sweep_mh_proposals_ = 0;
  uint64_t sweep_mh_accepts_ = 0;
  uint64_t sweep_sparse_hits_ = 0;
  uint64_t sweep_alias_rebuilds_ = 0;

  int completed_sweeps_ = 0;
  std::vector<double> likelihood_trace_;
};

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_JOINT_TOPIC_MODEL_H_
