#include "core/topic_gaussians.h"

#include <cassert>

namespace texrheo::core {
namespace {

// Same constant as math::Gaussian::LogPdf uses; the log normalizer must be
// built from the identical double for the bit-exactness contract to hold.
constexpr double kLog2Pi = 1.8378770664093454836;

}  // namespace

TopicGaussiansSoA TopicGaussiansSoA::FromGaussians(
    const std::vector<math::Gaussian>& topics) {
  TopicGaussiansSoA soa;
  if (topics.empty()) return soa;
  soa.k_ = topics.size();
  soa.dim_ = topics.front().dim();
  soa.mean_.resize(soa.dim_ * soa.k_);
  soa.prec_.resize(soa.dim_ * soa.dim_ * soa.k_);
  soa.log_norm_.resize(soa.k_);
  for (size_t k = 0; k < soa.k_; ++k) {
    const math::Gaussian& g = topics[k];
    assert(g.dim() == soa.dim_);
    for (size_t i = 0; i < soa.dim_; ++i) {
      soa.mean_[i * soa.k_ + k] = g.mean()[i];
      for (size_t j = 0; j < soa.dim_; ++j) {
        soa.prec_[(i * soa.dim_ + j) * soa.k_ + k] = g.precision()(i, j);
      }
    }
    soa.log_norm_[k] = g.log_det_precision() -
                       static_cast<double>(soa.dim_) * kLog2Pi;
  }
  return soa;
}

void TopicGaussiansSoA::BatchLogPdf(const math::Vector& x, Scratch& scratch,
                                    double* out) const {
  assert(x.size() == dim_);
  const size_t k_count = k_;
  scratch.diff.resize(dim_ * k_count);
  scratch.row.resize(k_count);
  double* diff = scratch.diff.data();
  double* row = scratch.row.data();
  for (size_t j = 0; j < dim_; ++j) {
    const double xj = x[j];
    const double* mj = &mean_[j * k_count];
    double* dj = &diff[j * k_count];
    for (size_t k = 0; k < k_count; ++k) dj[k] = xj - mj[k];
  }
  for (size_t k = 0; k < k_count; ++k) out[k] = 0.0;
  // Quadratic form, row by row: for each topic, row_i = sum_j P_ij d_j and
  // quad = sum_i d_i row_i, accumulated in exactly the order the scalar
  // path (and math::Gaussian::LogPdf via Matrix::Multiply + Dot) uses.
  for (size_t i = 0; i < dim_; ++i) {
    for (size_t k = 0; k < k_count; ++k) row[k] = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      const double* pj = &prec_[(i * dim_ + j) * k_count];
      const double* dj = &diff[j * k_count];
      for (size_t k = 0; k < k_count; ++k) row[k] += pj[k] * dj[k];
    }
    const double* di = &diff[i * k_count];
    for (size_t k = 0; k < k_count; ++k) out[k] += di[k] * row[k];
  }
  for (size_t k = 0; k < k_count; ++k) {
    out[k] = 0.5 * (log_norm_[k] - out[k]);
  }
}

double TopicGaussiansSoA::LogPdfScalar(size_t k, const math::Vector& x) const {
  assert(k < k_ && x.size() == dim_);
  std::vector<double> d(dim_);
  for (size_t j = 0; j < dim_; ++j) d[j] = x[j] - mean_[j * k_ + k];
  double quad = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    double row = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      row += prec_[(i * dim_ + j) * k_ + k] * d[j];
    }
    quad += d[i] * row;
  }
  return 0.5 * (log_norm_[k] - quad);
}

}  // namespace texrheo::core
