#include "core/serialization.h"

#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace texrheo::core {
namespace {

constexpr char kMagic[] = "texrheo-model";
constexpr int kVersion = 1;

void AppendGaussian(std::ostringstream& out, const char* tag, size_t k,
                    const math::Gaussian& g) {
  out << tag << ' ' << k << ' ' << g.dim();
  for (size_t i = 0; i < g.dim(); ++i) {
    out << ' ' << FormatDouble(g.mean()[i], 12);
  }
  for (size_t r = 0; r < g.dim(); ++r) {
    for (size_t c = 0; c < g.dim(); ++c) {
      out << ' ' << FormatDouble(g.precision()(r, c), 12);
    }
  }
  out << '\n';
}

// Parses "<tag> k dim mean... precision..." tokens after the tag.
StatusOr<math::Gaussian> ParseGaussian(const std::vector<std::string>& tokens,
                                       size_t* topic_out) {
  if (tokens.size() < 3) {
    return Status::InvalidArgument("truncated gaussian line");
  }
  TEXRHEO_ASSIGN_OR_RETURN(int64_t k, ParseInt(tokens[1]));
  TEXRHEO_ASSIGN_OR_RETURN(int64_t dim64, ParseInt(tokens[2]));
  size_t dim = static_cast<size_t>(dim64);
  if (tokens.size() != 3 + dim + dim * dim) {
    return Status::InvalidArgument("gaussian line has wrong token count");
  }
  math::Vector mean(dim);
  for (size_t i = 0; i < dim; ++i) {
    TEXRHEO_ASSIGN_OR_RETURN(mean[i], ParseDouble(tokens[3 + i]));
  }
  math::Matrix precision(dim, dim);
  size_t offset = 3 + dim;
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < dim; ++c) {
      TEXRHEO_ASSIGN_OR_RETURN(precision(r, c),
                               ParseDouble(tokens[offset + r * dim + c]));
    }
  }
  *topic_out = static_cast<size_t>(k);
  return math::Gaussian::FromPrecision(std::move(mean), std::move(precision));
}

}  // namespace

ModelSnapshot MakeSnapshot(const TopicEstimates& estimates,
                           const text::Vocabulary& vocab) {
  ModelSnapshot snapshot;
  // Rebuild the vocabulary to detach it from the dataset.
  for (size_t id = 0; id < vocab.size(); ++id) {
    int32_t new_id =
        snapshot.vocab.Add(vocab.WordOf(static_cast<int32_t>(id)));
    (void)new_id;
  }
  snapshot.estimates.phi = estimates.phi;
  snapshot.estimates.gel_topics = estimates.gel_topics;
  snapshot.estimates.emulsion_topics = estimates.emulsion_topics;
  snapshot.estimates.topic_recipe_count = estimates.topic_recipe_count;
  return snapshot;
}

std::string SerializeModel(const ModelSnapshot& snapshot) {
  std::ostringstream out;
  out << kMagic << ' ' << kVersion << '\n';
  out << "vocab " << snapshot.vocab.size() << '\n';
  for (size_t id = 0; id < snapshot.vocab.size(); ++id) {
    out << snapshot.vocab.WordOf(static_cast<int32_t>(id)) << ' '
        << snapshot.vocab.CountOf(static_cast<int32_t>(id)) << '\n';
  }
  out << "topics " << snapshot.estimates.phi.size() << '\n';
  for (size_t k = 0; k < snapshot.estimates.phi.size(); ++k) {
    out << "phi " << k;
    for (double p : snapshot.estimates.phi[k]) {
      out << ' ' << FormatDouble(p, 12);
    }
    out << '\n';
  }
  for (size_t k = 0; k < snapshot.estimates.gel_topics.size(); ++k) {
    AppendGaussian(out, "gel_topic", k, snapshot.estimates.gel_topics[k]);
  }
  for (size_t k = 0; k < snapshot.estimates.emulsion_topics.size(); ++k) {
    AppendGaussian(out, "emulsion_topic", k,
                   snapshot.estimates.emulsion_topics[k]);
  }
  for (size_t k = 0; k < snapshot.estimates.topic_recipe_count.size(); ++k) {
    out << "recipe_count " << k << ' '
        << snapshot.estimates.topic_recipe_count[k] << '\n';
  }
  return out.str();
}

StatusOr<ModelSnapshot> DeserializeModel(const std::string& content) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty model file");
  }
  {
    std::vector<std::string> header = SplitWhitespace(line);
    if (header.size() != 2 || header[0] != kMagic) {
      return Status::InvalidArgument("not a texrheo model file");
    }
    TEXRHEO_ASSIGN_OR_RETURN(int64_t version, ParseInt(header[1]));
    if (version != kVersion) {
      return Status::InvalidArgument("unsupported model version " +
                                     std::to_string(version));
    }
  }

  ModelSnapshot snapshot;
  // vocab section.
  if (!std::getline(in, line)) return Status::InvalidArgument("missing vocab");
  std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.size() != 2 || tokens[0] != "vocab") {
    return Status::InvalidArgument("expected 'vocab <n>'");
  }
  TEXRHEO_ASSIGN_OR_RETURN(int64_t vocab_size, ParseInt(tokens[1]));
  for (int64_t i = 0; i < vocab_size; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated vocab section");
    }
    std::vector<std::string> wc = SplitWhitespace(line);
    if (wc.size() != 2) {
      return Status::InvalidArgument("malformed vocab line: " + line);
    }
    snapshot.vocab.Add(wc[0]);
  }

  // topics count.
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("missing topics");
  }
  tokens = SplitWhitespace(line);
  if (tokens.size() != 2 || tokens[0] != "topics") {
    return Status::InvalidArgument("expected 'topics <k>'");
  }
  TEXRHEO_ASSIGN_OR_RETURN(int64_t k_count, ParseInt(tokens[1]));
  snapshot.estimates.phi.assign(static_cast<size_t>(k_count), {});
  snapshot.estimates.topic_recipe_count.assign(static_cast<size_t>(k_count),
                                               0);
  std::vector<bool> have_gel(static_cast<size_t>(k_count), false);
  std::vector<bool> have_emulsion(static_cast<size_t>(k_count), false);
  snapshot.estimates.gel_topics.reserve(static_cast<size_t>(k_count));
  snapshot.estimates.emulsion_topics.reserve(static_cast<size_t>(k_count));

  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    tokens = SplitWhitespace(line);
    const std::string& tag = tokens[0];
    if (tag == "phi") {
      if (tokens.size() < 2) return Status::InvalidArgument("bad phi line");
      TEXRHEO_ASSIGN_OR_RETURN(int64_t k, ParseInt(tokens[1]));
      if (k < 0 || k >= k_count) {
        return Status::OutOfRange("phi topic index out of range");
      }
      std::vector<double> row;
      row.reserve(tokens.size() - 2);
      for (size_t i = 2; i < tokens.size(); ++i) {
        TEXRHEO_ASSIGN_OR_RETURN(double p, ParseDouble(tokens[i]));
        row.push_back(p);
      }
      if (static_cast<int64_t>(row.size()) != vocab_size) {
        return Status::InvalidArgument("phi row length != vocab size");
      }
      snapshot.estimates.phi[static_cast<size_t>(k)] = std::move(row);
    } else if (tag == "gel_topic" || tag == "emulsion_topic") {
      size_t k = 0;
      TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian g, ParseGaussian(tokens, &k));
      if (k >= static_cast<size_t>(k_count)) {
        return Status::OutOfRange("gaussian topic index out of range");
      }
      auto& list = tag[0] == 'g' ? snapshot.estimates.gel_topics
                                 : snapshot.estimates.emulsion_topics;
      auto& have = tag[0] == 'g' ? have_gel : have_emulsion;
      if (k != list.size() || have[k]) {
        return Status::InvalidArgument(
            "gaussians must appear once, in topic order");
      }
      list.push_back(std::move(g));
      have[k] = true;
    } else if (tag == "recipe_count") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument("bad recipe_count line");
      }
      TEXRHEO_ASSIGN_OR_RETURN(int64_t k, ParseInt(tokens[1]));
      TEXRHEO_ASSIGN_OR_RETURN(int64_t n, ParseInt(tokens[2]));
      if (k < 0 || k >= k_count) {
        return Status::OutOfRange("recipe_count topic out of range");
      }
      snapshot.estimates.topic_recipe_count[static_cast<size_t>(k)] =
          static_cast<int>(n);
    } else {
      return Status::InvalidArgument("unknown section: " + tag);
    }
  }

  if (snapshot.estimates.gel_topics.size() !=
          static_cast<size_t>(k_count) ||
      snapshot.estimates.emulsion_topics.size() !=
          static_cast<size_t>(k_count)) {
    return Status::InvalidArgument("missing topic gaussians");
  }
  return snapshot;
}

Status SaveModel(const std::string& path, const ModelSnapshot& snapshot) {
  return WriteStringToFile(path, SerializeModel(snapshot));
}

StatusOr<ModelSnapshot> LoadModel(const std::string& path) {
  TEXRHEO_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return DeserializeModel(content);
}

}  // namespace texrheo::core
