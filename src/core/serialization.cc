#include "core/serialization.h"

#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace texrheo::core {
namespace {

constexpr char kMagic[] = "texrheo-model";
constexpr int kVersion = 2;
constexpr char kEndSentinel[] = "end";

// "line <n> @ byte <m> (\"<excerpt>\"): " prefix for parse errors, pointing
// the user at the offending line. The byte offset (of the line start) is
// the same position shape the binary model index reports, so both formats
// can be diagnosed with one `dd`/hexdump incantation.
std::string LineContext(int line_no, size_t byte_offset,
                        const std::string& line) {
  constexpr size_t kExcerptLimit = 48;
  std::string excerpt = line.substr(0, kExcerptLimit);
  if (line.size() > kExcerptLimit) excerpt += "...";
  return "line " + std::to_string(line_no) + " @ byte " +
         std::to_string(byte_offset) + " (\"" + excerpt + "\"): ";
}

void AppendGaussian(std::ostringstream& out, const char* tag, size_t k,
                    const math::Gaussian& g) {
  out << tag << ' ' << k << ' ' << g.dim();
  for (size_t i = 0; i < g.dim(); ++i) {
    out << ' ' << FormatDouble(g.mean()[i], 12);
  }
  for (size_t r = 0; r < g.dim(); ++r) {
    for (size_t c = 0; c < g.dim(); ++c) {
      out << ' ' << FormatDouble(g.precision()(r, c), 12);
    }
  }
  out << '\n';
}

// Parses "<tag> k dim mean... precision..." tokens after the tag.
StatusOr<math::Gaussian> ParseGaussian(const std::vector<std::string>& tokens,
                                       size_t* topic_out) {
  if (tokens.size() < 3) {
    return Status::InvalidArgument("truncated gaussian line");
  }
  TEXRHEO_ASSIGN_OR_RETURN(int64_t k, ParseInt(tokens[1]));
  TEXRHEO_ASSIGN_OR_RETURN(int64_t dim64, ParseInt(tokens[2]));
  size_t dim = static_cast<size_t>(dim64);
  if (tokens.size() != 3 + dim + dim * dim) {
    return Status::InvalidArgument("gaussian line has wrong token count");
  }
  math::Vector mean(dim);
  for (size_t i = 0; i < dim; ++i) {
    TEXRHEO_ASSIGN_OR_RETURN(mean[i], ParseDouble(tokens[3 + i]));
  }
  math::Matrix precision(dim, dim);
  size_t offset = 3 + dim;
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < dim; ++c) {
      TEXRHEO_ASSIGN_OR_RETURN(precision(r, c),
                               ParseDouble(tokens[offset + r * dim + c]));
    }
  }
  *topic_out = static_cast<size_t>(k);
  return math::Gaussian::FromPrecision(std::move(mean), std::move(precision));
}

}  // namespace

ModelSnapshot MakeSnapshot(const TopicEstimates& estimates,
                           const text::Vocabulary& vocab) {
  ModelSnapshot snapshot;
  // Rebuild the vocabulary to detach it from the dataset, preserving the
  // corpus occurrence counts (they are part of the serialized model).
  for (size_t id = 0; id < vocab.size(); ++id) {
    snapshot.vocab.AddWithCount(vocab.WordOf(static_cast<int32_t>(id)),
                                vocab.CountOf(static_cast<int32_t>(id)));
  }
  snapshot.estimates.phi = estimates.phi;
  snapshot.estimates.gel_topics = estimates.gel_topics;
  snapshot.estimates.emulsion_topics = estimates.emulsion_topics;
  snapshot.estimates.topic_recipe_count = estimates.topic_recipe_count;
  return snapshot;
}

std::string SerializeModel(const ModelSnapshot& snapshot) {
  std::ostringstream out;
  out << kMagic << ' ' << kVersion << '\n';
  out << "vocab " << snapshot.vocab.size() << '\n';
  for (size_t id = 0; id < snapshot.vocab.size(); ++id) {
    out << snapshot.vocab.WordOf(static_cast<int32_t>(id)) << ' '
        << snapshot.vocab.CountOf(static_cast<int32_t>(id)) << '\n';
  }
  out << "topics " << snapshot.estimates.phi.size() << '\n';
  for (size_t k = 0; k < snapshot.estimates.phi.size(); ++k) {
    out << "phi " << k;
    for (double p : snapshot.estimates.phi[k]) {
      out << ' ' << FormatDouble(p, 12);
    }
    out << '\n';
  }
  for (size_t k = 0; k < snapshot.estimates.gel_topics.size(); ++k) {
    AppendGaussian(out, "gel_topic", k, snapshot.estimates.gel_topics[k]);
  }
  for (size_t k = 0; k < snapshot.estimates.emulsion_topics.size(); ++k) {
    AppendGaussian(out, "emulsion_topic", k,
                   snapshot.estimates.emulsion_topics[k]);
  }
  for (size_t k = 0; k < snapshot.estimates.topic_recipe_count.size(); ++k) {
    out << "recipe_count " << k << ' '
        << snapshot.estimates.topic_recipe_count[k] << '\n';
  }
  out << kEndSentinel << '\n';
  return out.str();
}

StatusOr<ModelSnapshot> DeserializeModel(const std::string& content) {
  if (content.empty()) {
    return Status::InvalidArgument("empty model file");
  }
  if (content.back() != '\n') {
    return Status::InvalidArgument(
        "model file does not end with a newline (truncated?)");
  }
  std::istringstream in(content);
  std::string line;
  int line_no = 0;
  size_t line_start = 0;  // Byte offset of the current line's first char.
  size_t consumed = 0;
  auto next_line = [&in, &line, &line_no, &line_start, &consumed]() {
    line_start = consumed;
    if (!std::getline(in, line)) return false;
    ++line_no;
    consumed += line.size() + 1;  // Every line ends in '\n' (checked above).
    return true;
  };
  auto parse_error = [&line_no, &line_start, &line](std::string what) {
    return Status::InvalidArgument(LineContext(line_no, line_start, line) +
                                   std::move(what));
  };
  auto with_context = [&line_no, &line_start, &line](const Status& status) {
    return Status(status.code(),
                  LineContext(line_no, line_start, line) + status.message());
  };

  if (!next_line()) {
    return Status::InvalidArgument("empty model file");
  }
  {
    std::vector<std::string> header = SplitWhitespace(line);
    if (header.size() != 2 || header[0] != kMagic) {
      return parse_error("not a texrheo model file");
    }
    auto version = ParseInt(header[1]);
    if (!version.ok()) {
      return with_context(version.status());
    }
    if (*version != kVersion) {
      return parse_error("unsupported model version " +
                         std::to_string(*version) + " (expected " +
                         std::to_string(kVersion) + ")");
    }
  }

  ModelSnapshot snapshot;
  // vocab section.
  if (!next_line()) {
    return Status::InvalidArgument("missing vocab section");
  }
  std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.size() != 2 || tokens[0] != "vocab") {
    return parse_error("expected 'vocab <n>'");
  }
  auto vocab_size_or = ParseInt(tokens[1]);
  if (!vocab_size_or.ok()) {
    return with_context(vocab_size_or.status());
  }
  int64_t vocab_size = *vocab_size_or;
  if (vocab_size < 0) {
    return parse_error("negative vocab size");
  }
  for (int64_t i = 0; i < vocab_size; ++i) {
    if (!next_line()) {
      return parse_error("truncated vocab section");
    }
    std::vector<std::string> wc = SplitWhitespace(line);
    if (wc.size() != 2) {
      return parse_error("malformed vocab line");
    }
    auto count_or = ParseInt(wc[1]);
    if (!count_or.ok()) return with_context(count_or.status());
    if (*count_or < 0) {
      return parse_error("negative vocab count");
    }
    // Preserve the stored count so re-serializing reproduces the input
    // byte-for-byte (the binary pack path depends on this fixed point).
    snapshot.vocab.AddWithCount(wc[0], *count_or);
  }

  // topics count.
  if (!next_line()) {
    return Status::InvalidArgument("missing topics section");
  }
  tokens = SplitWhitespace(line);
  if (tokens.size() != 2 || tokens[0] != "topics") {
    return parse_error("expected 'topics <k>'");
  }
  auto k_count_or = ParseInt(tokens[1]);
  if (!k_count_or.ok()) {
    return with_context(k_count_or.status());
  }
  int64_t k_count = *k_count_or;
  if (k_count < 0) {
    return parse_error("negative topic count");
  }
  snapshot.estimates.phi.assign(static_cast<size_t>(k_count), {});
  snapshot.estimates.topic_recipe_count.assign(static_cast<size_t>(k_count),
                                               0);
  std::vector<bool> have_gel(static_cast<size_t>(k_count), false);
  std::vector<bool> have_emulsion(static_cast<size_t>(k_count), false);
  snapshot.estimates.gel_topics.reserve(static_cast<size_t>(k_count));
  snapshot.estimates.emulsion_topics.reserve(static_cast<size_t>(k_count));

  bool saw_end = false;
  while (next_line()) {
    if (saw_end) {
      return parse_error("content after 'end' marker");
    }
    if (Trim(line).empty()) continue;
    tokens = SplitWhitespace(line);
    const std::string& tag = tokens[0];
    if (tag == kEndSentinel) {
      if (tokens.size() != 1) {
        return parse_error("malformed 'end' marker");
      }
      saw_end = true;
    } else if (tag == "phi") {
      if (tokens.size() < 2) {
        return parse_error("bad phi line");
      }
      auto k_or = ParseInt(tokens[1]);
      if (!k_or.ok()) return with_context(k_or.status());
      int64_t k = *k_or;
      if (k < 0 || k >= k_count) {
        return with_context(
            Status::OutOfRange("phi topic index out of range"));
      }
      std::vector<double> row;
      row.reserve(tokens.size() - 2);
      for (size_t i = 2; i < tokens.size(); ++i) {
        auto p = ParseDouble(tokens[i]);
        if (!p.ok()) return with_context(p.status());
        row.push_back(*p);
      }
      if (static_cast<int64_t>(row.size()) != vocab_size) {
        return parse_error("phi row length != vocab size");
      }
      snapshot.estimates.phi[static_cast<size_t>(k)] = std::move(row);
    } else if (tag == "gel_topic" || tag == "emulsion_topic") {
      size_t k = 0;
      auto g = ParseGaussian(tokens, &k);
      if (!g.ok()) return with_context(g.status());
      if (k >= static_cast<size_t>(k_count)) {
        return with_context(
            Status::OutOfRange("gaussian topic index out of range"));
      }
      auto& list = tag[0] == 'g' ? snapshot.estimates.gel_topics
                                 : snapshot.estimates.emulsion_topics;
      auto& have = tag[0] == 'g' ? have_gel : have_emulsion;
      if (k != list.size() || have[k]) {
        return parse_error("gaussians must appear once, in topic order");
      }
      list.push_back(std::move(g).value());
      have[k] = true;
    } else if (tag == "recipe_count") {
      if (tokens.size() != 3) {
        return parse_error("bad recipe_count line");
      }
      auto k_or = ParseInt(tokens[1]);
      if (!k_or.ok()) return with_context(k_or.status());
      auto n_or = ParseInt(tokens[2]);
      if (!n_or.ok()) return with_context(n_or.status());
      if (*k_or < 0 || *k_or >= k_count) {
        return with_context(
            Status::OutOfRange("recipe_count topic out of range"));
      }
      snapshot.estimates.topic_recipe_count[static_cast<size_t>(*k_or)] =
          static_cast<int>(*n_or);
    } else {
      return parse_error("unknown section: " + tag);
    }
  }

  if (!saw_end) {
    return Status::InvalidArgument(
        "missing 'end' marker after line " + std::to_string(line_no) +
        " @ byte " + std::to_string(line_start) + " (truncated model file)");
  }
  if (snapshot.estimates.gel_topics.size() !=
          static_cast<size_t>(k_count) ||
      snapshot.estimates.emulsion_topics.size() !=
          static_cast<size_t>(k_count)) {
    return Status::InvalidArgument("missing topic gaussians");
  }
  return snapshot;
}

Status SaveModel(const std::string& path, const ModelSnapshot& snapshot) {
  return SaveModel(path, snapshot, FileOps::Real());
}

Status SaveModel(const std::string& path, const ModelSnapshot& snapshot,
                 FileOps& ops) {
  return AtomicWriteFile(path, SerializeModel(snapshot), ops);
}

StatusOr<ModelSnapshot> LoadModel(const std::string& path) {
  TEXRHEO_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return DeserializeModel(content);
}

}  // namespace texrheo::core
