#ifndef TEXRHEO_CORE_SERIALIZATION_H_
#define TEXRHEO_CORE_SERIALIZATION_H_

#include <string>

#include "core/joint_topic_model.h"
#include "text/vocabulary.h"
#include "util/atomic_file.h"
#include "util/status.h"

namespace texrheo::core {

/// A trained model's distributable state: the texture-term vocabulary, the
/// per-topic term distributions, and the per-topic Gaussians. Everything a
/// downstream user needs to annotate new recipes or link new measurements
/// (per-document theta is derivable and intentionally not persisted).
struct ModelSnapshot {
  text::Vocabulary vocab;
  TopicEstimates estimates;  ///< theta / doc_topic left empty.

  /// Number of topics in the snapshot.
  int num_topics() const {
    return static_cast<int>(estimates.phi.size());
  }
};

/// Builds a snapshot from a trained model's estimates and the dataset
/// vocabulary (theta and per-document fields are stripped).
ModelSnapshot MakeSnapshot(const TopicEstimates& estimates,
                           const text::Vocabulary& vocab);

/// Serializes the snapshot to a line-oriented text format:
///   texrheo-model 2
///   vocab <V>            followed by V lines: <word> <count>
///   topics <K>
///   phi k v0 v1 ... (one line per topic)
///   gel_topic k <dim> <mean...> <precision row-major...>
///   emulsion_topic k <dim> <mean...> <precision row-major...>
///   recipe_count k <n>
///   end
/// The trailing `end` sentinel (and the required final newline) make every
/// strict prefix of a serialized model detectably truncated.
std::string SerializeModel(const ModelSnapshot& snapshot);

/// Parses a snapshot produced by SerializeModel; validates dimensions and
/// positive-definiteness of the stored precisions. Errors carry the
/// 1-based line number, the byte offset of the line start (the same
/// position shape the binary model format reports), and an excerpt of the
/// offending line. Parsing is a fixed point of serialization: vocabulary
/// counts are preserved, so serialize(parse(bytes)) == bytes for any valid
/// model file. The packed binary sibling of this format lives in
/// core/model_binary.h (`SaveModelBinary` conversion included there).
StatusOr<ModelSnapshot> DeserializeModel(const std::string& content);

/// Convenience file wrappers. SaveModel writes atomically (temp file +
/// fsync + rename), so a crash mid-save never clobbers an existing model;
/// the FileOps overload is the fault-injection seam for tests.
Status SaveModel(const std::string& path, const ModelSnapshot& snapshot);
Status SaveModel(const std::string& path, const ModelSnapshot& snapshot,
                 FileOps& ops);
StatusOr<ModelSnapshot> LoadModel(const std::string& path);

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_SERIALIZATION_H_
