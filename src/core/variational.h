#ifndef TEXRHEO_CORE_VARIATIONAL_H_
#define TEXRHEO_CORE_VARIATIONAL_H_

#include <vector>

#include "core/joint_topic_model.h"

namespace texrheo::core {

/// Deterministic CVB0-style variational inference for the same joint topic
/// model — the third inference algorithm in the library next to the paper's
/// Gibbs sampler and the collapsed (Student-t) sampler.
///
/// Instead of hard assignments it maintains responsibilities:
///   gamma[d][n][k] ~ q(z_dn = k)   for texture-term tokens,
///   rho[d][k]      ~ q(y_d = k)    for the concentration vectors,
/// updated with zero-order collapsed expectations (Asuncion et al. 2009
/// style) for the word side and responsibility-weighted Normal-Wishart
/// posterior means for the Gaussian side. Converges monotonically in its
/// objective proxy and needs no random numbers after initialization.
class VariationalJointTopicModel {
 public:
  /// Reuses JointTopicModelConfig: alpha/gamma/num_topics/priors/emulsion
  /// toggle mean the same thing; `sweeps` caps the iterations; `seed` only
  /// seeds the responsibility initialization.
  static texrheo::StatusOr<VariationalJointTopicModel> Create(
      const JointTopicModelConfig& config, const recipe::Dataset* dataset);

  VariationalJointTopicModel(VariationalJointTopicModel&&) = default;
  VariationalJointTopicModel& operator=(VariationalJointTopicModel&&) =
      default;

  /// Runs up to `max_iterations` full update passes, stopping early when
  /// the objective proxy improves by less than `tolerance` (relative).
  texrheo::Status Run(int max_iterations, double tolerance = 1e-5);

  /// Runs the configured schedule (config.sweeps iterations).
  texrheo::Status Train() { return Run(config_.sweeps); }

  /// Expected-count point estimates in the common TopicEstimates shape.
  texrheo::StatusOr<TopicEstimates> Estimate() const;

  /// Objective proxy (expected complete-data log likelihood); increases
  /// monotonically up to numerical noise.
  double Objective() const { return objective_; }
  int iterations_run() const { return iterations_run_; }

 private:
  VariationalJointTopicModel(const JointTopicModelConfig& config,
                             const recipe::Dataset* dataset);

  texrheo::Status Initialize();
  texrheo::Status UpdateGaussians();
  void UpdateWordResponsibilities();
  void UpdateDocResponsibilities();
  double ComputeObjective() const;

  JointTopicModelConfig config_;
  const recipe::Dataset* docs_;
  size_t vocab_size_ = 0;

  // Responsibilities.
  std::vector<std::vector<std::vector<double>>> gamma_;  // [d][n][k]
  std::vector<std::vector<double>> rho_;                 // [d][k]
  // Expected counts.
  std::vector<std::vector<double>> e_n_dk_;  // [d][k]
  std::vector<std::vector<double>> e_n_kv_;  // [k][v]
  std::vector<double> e_n_k_;                // [k]
  // Posterior-mean Gaussians per topic.
  std::vector<math::Gaussian> gel_topics_;
  std::vector<math::Gaussian> emulsion_topics_;

  double objective_ = 0.0;
  int iterations_run_ = 0;
};

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_VARIATIONAL_H_
