#ifndef TEXRHEO_CORE_LINKAGE_H_
#define TEXRHEO_CORE_LINKAGE_H_

#include <vector>

#include "core/joint_topic_model.h"
#include "recipe/features.h"
#include "rheology/empirical_data.h"
#include "util/status.h"

namespace texrheo::core {

/// How a food-science setting's single concentration vector is compared to
/// a topic's gel Gaussian (the paper says "Kullback-Leibler divergence"
/// without specifying how a point becomes a distribution).
enum class LinkageMethod {
  /// Wrap the setting in an isotropic Gaussian whose standard deviation is
  /// the measurement uncertainty of the published concentration (in -log
  /// space, i.e. a relative concentration error), then closed-form
  /// KL(setting || topic). Default. As the uncertainty shrinks this ranks
  /// topics like the negative log density, penalizing both mean distance
  /// and overly diffuse topics.
  kGaussianKL,
  /// Negative log density of the setting under the topic Gaussian.
  kNegLogDensity,
  /// Squared Mahalanobis distance of the setting under the topic Gaussian.
  kMahalanobis,
  /// Euclidean distance in feature space (sanity baseline).
  kEuclidean,
};

/// Options for the linkage computation.
struct LinkageOptions {
  LinkageMethod method = LinkageMethod::kGaussianKL;
  /// Std-dev of the wrapped setting Gaussian in -log-concentration space
  /// (~25% relative error on a lab-measured concentration).
  double measurement_sigma = 0.25;
};

/// One empirical setting linked to its most similar topic.
struct SettingLinkage {
  int setting_id = 0;     ///< Table I row id.
  int topic = 0;          ///< Most similar topic index.
  double divergence = 0;  ///< Divergence value at the optimum.
  std::vector<double> divergence_by_topic;  ///< For reporting/tests.
};

/// Links every empirical setting to its closest topic by comparing the
/// setting's -log gel-concentration vector to each topic's gel Gaussian
/// (paper Section III.C.4).
texrheo::StatusOr<std::vector<SettingLinkage>> LinkSettingsToTopics(
    const TopicEstimates& estimates,
    const std::vector<rheology::EmpiricalSetting>& settings,
    const recipe::FeatureConfig& feature_config,
    const LinkageOptions& options = LinkageOptions());

/// Links one raw gel concentration vector (e.g. a Table II(b) dish) to its
/// most similar topic; same semantics as LinkSettingsToTopics.
texrheo::StatusOr<SettingLinkage> LinkConcentrationToTopic(
    const TopicEstimates& estimates, const math::Vector& gel_concentration,
    const recipe::FeatureConfig& feature_config,
    const LinkageOptions& options = LinkageOptions());

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_LINKAGE_H_
