#include "core/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "util/crc32.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace texrheo::core {
namespace {

constexpr char kMagic[8] = {'T', 'X', 'R', 'C', 'K', 'P', 'T', '1'};
// v2: fingerprint grew the sparse-sampler knobs and the payload grew the
// stale alias-bank section. v1 readers no longer exist anywhere (no
// long-lived checkpoint files are shipped), so the version is bumped
// rather than branched on.
constexpr uint32_t kVersion = 2;
constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(uint32_t) +
                               sizeof(uint64_t);
constexpr char kFilePrefix[] = "ckpt-";
constexpr char kFileSuffix[] = ".ckpt";

// ---------------------------------------------------------------------------
// Payload writer: fixed-width native-endian scalars appended to a string.

template <typename T>
void Put(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

void PutF64(std::string& out, double v) { Put(out, v); }

void PutI32Vec(std::string& out, const std::vector<int32_t>& v) {
  Put<uint64_t>(out, v.size());
  for (int32_t x : v) Put(out, x);
}

void PutF64Vec(std::string& out, const std::vector<double>& v) {
  Put<uint64_t>(out, v.size());
  for (double x : v) PutF64(out, x);
}

void PutRngState(std::string& out, const Rng::State& s) {
  for (uint64_t w : s.words) Put(out, w);
  Put<uint8_t>(out, s.has_cached_gaussian ? 1 : 0);
  Put(out, s.cached_gaussian_bits);
}

void PutGaussian(std::string& out, const math::Gaussian& g) {
  Put<uint64_t>(out, g.dim());
  for (size_t i = 0; i < g.dim(); ++i) PutF64(out, g.mean()[i]);
  for (size_t r = 0; r < g.dim(); ++r) {
    for (size_t c = 0; c < g.dim(); ++c) PutF64(out, g.precision()(r, c));
  }
}

void PutTopicStats(std::string& out, const TopicStatsSnapshot& s) {
  Put(out, s.n);
  PutF64Vec(out, s.sum);
  PutF64Vec(out, s.sum_outer);
}

// ---------------------------------------------------------------------------
// Payload reader: bounds-checked; any overrun flips a sticky error.

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  T Take() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    if (failed_ || data_.size() - pos_ < sizeof(T)) {
      failed_ = true;
      return v;
    }
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Length-prefixed vector with an element-count sanity cap: a corrupt
  /// length field must not trigger a huge allocation before the bounds
  /// check catches it.
  template <typename T>
  std::vector<T> TakeVec() {
    uint64_t len = Take<uint64_t>();
    if (failed_ || len > (data_.size() - pos_) / sizeof(T)) {
      failed_ = true;
      return {};
    }
    std::vector<T> v(static_cast<size_t>(len));
    for (auto& x : v) x = Take<T>();
    return v;
  }

  Rng::State TakeRngState() {
    Rng::State s;
    for (auto& w : s.words) w = Take<uint64_t>();
    s.has_cached_gaussian = Take<uint8_t>() != 0;
    s.cached_gaussian_bits = Take<uint64_t>();
    return s;
  }

  bool failed() const { return failed_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

StatusOr<math::Gaussian> TakeGaussian(Reader& reader) {
  uint64_t dim = reader.Take<uint64_t>();
  if (reader.failed() || dim == 0 || dim > 1024) {
    return Status::InvalidArgument("checkpoint: bad gaussian dimension");
  }
  math::Vector mean(static_cast<size_t>(dim));
  for (size_t i = 0; i < dim; ++i) mean[i] = reader.Take<double>();
  math::Matrix precision(static_cast<size_t>(dim), static_cast<size_t>(dim));
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < dim; ++c) precision(r, c) = reader.Take<double>();
  }
  if (reader.failed()) {
    return Status::InvalidArgument("checkpoint: truncated gaussian");
  }
  return math::Gaussian::FromPrecision(std::move(mean), std::move(precision));
}

StatusOr<TopicStatsSnapshot> TakeTopicStats(Reader& reader) {
  TopicStatsSnapshot s;
  s.n = reader.Take<uint64_t>();
  s.sum = reader.TakeVec<double>();
  s.sum_outer = reader.TakeVec<double>();
  if (reader.failed() || s.sum_outer.size() != s.sum.size() * s.sum.size()) {
    return Status::InvalidArgument("checkpoint: malformed topic stats");
  }
  return s;
}

Status StructuralCheck(const CheckpointState& state) {
  const CheckpointFingerprint& fp = state.fingerprint;
  size_t k_count = static_cast<size_t>(fp.num_topics);
  size_t d_count = static_cast<size_t>(fp.num_documents);
  size_t v_count = static_cast<size_t>(fp.vocab_size);
  if (fp.num_topics < 1 || fp.alpha <= 0.0 || fp.gamma <= 0.0 ||
      fp.num_threads < 0) {
    return Status::InvalidArgument("checkpoint: invalid fingerprint");
  }
  if (state.completed_sweeps < 0) {
    return Status::InvalidArgument("checkpoint: negative sweep index");
  }
  if (state.y.size() != d_count || state.z.size() != d_count ||
      state.n_dk.size() != d_count) {
    return Status::InvalidArgument("checkpoint: document count mismatch");
  }
  if (state.n_kv.size() != k_count || state.n_k.size() != k_count ||
      state.m_k.size() != k_count) {
    return Status::InvalidArgument("checkpoint: topic count mismatch");
  }
  for (int32_t yk : state.y) {
    if (yk < 0 || yk >= fp.num_topics) {
      return Status::OutOfRange("checkpoint: y assignment out of range");
    }
  }
  for (const auto& row : state.z) {
    for (int32_t zk : row) {
      if (zk < 0 || zk >= fp.num_topics) {
        return Status::OutOfRange("checkpoint: z assignment out of range");
      }
    }
  }
  for (const auto& row : state.n_dk) {
    if (row.size() != k_count) {
      return Status::InvalidArgument("checkpoint: n_dk row size mismatch");
    }
  }
  for (const auto& row : state.n_kv) {
    if (row.size() != v_count) {
      return Status::InvalidArgument("checkpoint: n_kv row size mismatch");
    }
  }
  if (fp.sampler == SamplerKind::kJoint) {
    if (state.gel_topics.size() != k_count ||
        state.emulsion_topics.size() != k_count) {
      return Status::InvalidArgument("checkpoint: missing topic gaussians");
    }
  } else {
    if (state.gel_stats.size() != k_count ||
        state.emulsion_stats.size() != k_count) {
      return Status::InvalidArgument("checkpoint: missing topic statistics");
    }
  }
  if (fp.sparse_sampler &&
      (fp.alias_rebuild_interval < 1 || fp.mh_steps < 1)) {
    return Status::InvalidArgument(
        "checkpoint: invalid sparse-sampler fingerprint knobs");
  }
  if (!state.stale_n_k.empty()) {
    if (state.stale_n_k.size() != k_count ||
        state.stale_n_kv.size() != k_count) {
      return Status::InvalidArgument(
          "checkpoint: stale alias snapshot topic count mismatch");
    }
    for (const auto& row : state.stale_n_kv) {
      if (row.size() != v_count) {
        return Status::InvalidArgument(
            "checkpoint: stale alias snapshot row size mismatch");
      }
    }
    if (state.last_alias_rebuild_sweep < 0 ||
        state.last_alias_rebuild_sweep > state.completed_sweeps) {
      return Status::InvalidArgument(
          "checkpoint: stale alias rebuild epoch out of range");
    }
  }
  return Status::OK();
}

/// Parses "ckpt-<sweep>.ckpt"; returns -1 when the name does not match.
int SweepOfFileName(const std::string& name) {
  if (!StartsWith(name, kFilePrefix) || !EndsWith(name, kFileSuffix)) {
    return -1;
  }
  std::string_view digits(name);
  digits.remove_prefix(sizeof(kFilePrefix) - 1);
  digits.remove_suffix(sizeof(kFileSuffix) - 1);
  auto parsed = ParseInt(digits);
  if (!parsed.ok() || *parsed < 0) return -1;
  return static_cast<int>(*parsed);
}

}  // namespace

std::string CheckpointFingerprint::ToString() const {
  return StrFormat(
      "sampler=%d K=%d alpha=%.12g gamma=%.12g seed=%llu threads=%d "
      "optimize_alpha=%d emulsion=%d gmm_init=%d sparse=%d alias_R=%d "
      "mh_steps=%d docs=%llu vocab=%llu",
      static_cast<int>(sampler), num_topics, alpha, gamma,
      static_cast<unsigned long long>(seed), num_threads,
      optimize_alpha ? 1 : 0, use_emulsion_likelihood ? 1 : 0,
      gmm_init ? 1 : 0, sparse_sampler ? 1 : 0, alias_rebuild_interval,
      mh_steps, static_cast<unsigned long long>(num_documents),
      static_cast<unsigned long long>(vocab_size));
}

std::string EncodeCheckpoint(const CheckpointState& state) {
  std::string payload;
  const CheckpointFingerprint& fp = state.fingerprint;
  Put<int32_t>(payload, static_cast<int32_t>(fp.sampler));
  Put(payload, fp.num_topics);
  PutF64(payload, fp.alpha);
  PutF64(payload, fp.gamma);
  Put(payload, fp.seed);
  Put(payload, fp.num_threads);
  Put<uint8_t>(payload, fp.optimize_alpha ? 1 : 0);
  Put<uint8_t>(payload, fp.use_emulsion_likelihood ? 1 : 0);
  Put<uint8_t>(payload, fp.gmm_init ? 1 : 0);
  Put<uint8_t>(payload, fp.sparse_sampler ? 1 : 0);
  Put(payload, fp.alias_rebuild_interval);
  Put(payload, fp.mh_steps);
  Put(payload, fp.num_documents);
  Put(payload, fp.vocab_size);

  Put(payload, state.completed_sweeps);
  PutF64(payload, state.current_alpha);
  PutRngState(payload, state.master_rng);
  Put<uint64_t>(payload, state.shard_rngs.size());
  for (const auto& s : state.shard_rngs) PutRngState(payload, s);
  PutI32Vec(payload, state.y);
  Put<uint64_t>(payload, state.z.size());
  for (const auto& row : state.z) PutI32Vec(payload, row);
  Put<uint64_t>(payload, state.n_dk.size());
  for (const auto& row : state.n_dk) PutI32Vec(payload, row);
  Put<uint64_t>(payload, state.n_kv.size());
  for (const auto& row : state.n_kv) PutI32Vec(payload, row);
  PutI32Vec(payload, state.n_k);
  PutI32Vec(payload, state.m_k);

  Put<uint8_t>(payload, state.gel_topics.empty() ? 0 : 1);
  if (!state.gel_topics.empty()) {
    Put<uint64_t>(payload, state.gel_topics.size());
    for (const auto& g : state.gel_topics) PutGaussian(payload, g);
    Put<uint64_t>(payload, state.emulsion_topics.size());
    for (const auto& g : state.emulsion_topics) PutGaussian(payload, g);
  }
  PutF64Vec(payload, state.likelihood_trace);
  Put<uint8_t>(payload, state.gel_stats.empty() ? 0 : 1);
  if (!state.gel_stats.empty()) {
    Put<uint64_t>(payload, state.gel_stats.size());
    for (const auto& s : state.gel_stats) PutTopicStats(payload, s);
    Put<uint64_t>(payload, state.emulsion_stats.size());
    for (const auto& s : state.emulsion_stats) PutTopicStats(payload, s);
  }
  Put<uint8_t>(payload, state.stale_n_k.empty() ? 0 : 1);
  if (!state.stale_n_k.empty()) {
    Put(payload, state.last_alias_rebuild_sweep);
    Put<uint64_t>(payload, state.stale_n_kv.size());
    for (const auto& row : state.stale_n_kv) PutI32Vec(payload, row);
    PutI32Vec(payload, state.stale_n_k);
  }

  std::string frame;
  frame.reserve(kHeaderSize + payload.size() + sizeof(uint32_t));
  frame.append(kMagic, sizeof(kMagic));
  Put(frame, kVersion);
  Put<uint64_t>(frame, payload.size());
  frame += payload;
  Put(frame, Crc32(payload));
  return frame;
}

StatusOr<CheckpointState> DecodeCheckpoint(std::string_view bytes) {
  if (bytes.size() < kHeaderSize + sizeof(uint32_t)) {
    return Status::InvalidArgument("checkpoint: file shorter than header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("checkpoint: bad magic");
  }
  uint32_t version;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kVersion) {
    return Status::InvalidArgument("checkpoint: unsupported version " +
                                   std::to_string(version));
  }
  uint64_t payload_size;
  std::memcpy(&payload_size,
              bytes.data() + sizeof(kMagic) + sizeof(uint32_t),
              sizeof(payload_size));
  if (payload_size != bytes.size() - kHeaderSize - sizeof(uint32_t)) {
    return Status::InvalidArgument(
        "checkpoint: size mismatch (torn or truncated file)");
  }
  std::string_view payload = bytes.substr(kHeaderSize,
                                          static_cast<size_t>(payload_size));
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (Crc32(payload) != stored_crc) {
    return Status::InvalidArgument("checkpoint: CRC32 mismatch (corrupt file)");
  }

  Reader reader(payload);
  CheckpointState state;
  CheckpointFingerprint& fp = state.fingerprint;
  int32_t sampler = reader.Take<int32_t>();
  if (sampler != static_cast<int32_t>(SamplerKind::kJoint) &&
      sampler != static_cast<int32_t>(SamplerKind::kCollapsed)) {
    return Status::InvalidArgument("checkpoint: unknown sampler kind");
  }
  fp.sampler = static_cast<SamplerKind>(sampler);
  fp.num_topics = reader.Take<int32_t>();
  fp.alpha = reader.Take<double>();
  fp.gamma = reader.Take<double>();
  fp.seed = reader.Take<uint64_t>();
  fp.num_threads = reader.Take<int32_t>();
  fp.optimize_alpha = reader.Take<uint8_t>() != 0;
  fp.use_emulsion_likelihood = reader.Take<uint8_t>() != 0;
  fp.gmm_init = reader.Take<uint8_t>() != 0;
  fp.sparse_sampler = reader.Take<uint8_t>() != 0;
  fp.alias_rebuild_interval = reader.Take<int32_t>();
  fp.mh_steps = reader.Take<int32_t>();
  fp.num_documents = reader.Take<uint64_t>();
  fp.vocab_size = reader.Take<uint64_t>();

  state.completed_sweeps = reader.Take<int32_t>();
  state.current_alpha = reader.Take<double>();
  state.master_rng = reader.TakeRngState();
  uint64_t shard_count = reader.Take<uint64_t>();
  if (reader.failed() || shard_count > 1u << 20) {
    return Status::InvalidArgument("checkpoint: bad shard count");
  }
  state.shard_rngs.reserve(static_cast<size_t>(shard_count));
  for (uint64_t s = 0; s < shard_count; ++s) {
    state.shard_rngs.push_back(reader.TakeRngState());
  }
  state.y = reader.TakeVec<int32_t>();
  uint64_t z_rows = reader.Take<uint64_t>();
  if (reader.failed() || z_rows != state.y.size()) {
    return Status::InvalidArgument("checkpoint: z/y row count mismatch");
  }
  state.z.reserve(static_cast<size_t>(z_rows));
  for (uint64_t d = 0; d < z_rows; ++d) {
    state.z.push_back(reader.TakeVec<int32_t>());
  }
  uint64_t n_dk_rows = reader.Take<uint64_t>();
  if (reader.failed() || n_dk_rows != state.y.size()) {
    return Status::InvalidArgument("checkpoint: n_dk row count mismatch");
  }
  for (uint64_t d = 0; d < n_dk_rows; ++d) {
    state.n_dk.push_back(reader.TakeVec<int32_t>());
  }
  uint64_t n_kv_rows = reader.Take<uint64_t>();
  if (reader.failed() || n_kv_rows > 1u << 20) {
    return Status::InvalidArgument("checkpoint: bad n_kv row count");
  }
  for (uint64_t k = 0; k < n_kv_rows; ++k) {
    state.n_kv.push_back(reader.TakeVec<int32_t>());
  }
  state.n_k = reader.TakeVec<int32_t>();
  state.m_k = reader.TakeVec<int32_t>();

  if (reader.Take<uint8_t>() != 0) {
    uint64_t gel_count = reader.Take<uint64_t>();
    if (reader.failed() || gel_count > 1u << 20) {
      return Status::InvalidArgument("checkpoint: bad gaussian count");
    }
    for (uint64_t k = 0; k < gel_count; ++k) {
      TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian g, TakeGaussian(reader));
      state.gel_topics.push_back(std::move(g));
    }
    uint64_t emu_count = reader.Take<uint64_t>();
    if (reader.failed() || emu_count != gel_count) {
      return Status::InvalidArgument("checkpoint: gaussian count mismatch");
    }
    for (uint64_t k = 0; k < emu_count; ++k) {
      TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian g, TakeGaussian(reader));
      state.emulsion_topics.push_back(std::move(g));
    }
  }
  state.likelihood_trace = reader.TakeVec<double>();
  if (reader.Take<uint8_t>() != 0) {
    uint64_t gel_count = reader.Take<uint64_t>();
    if (reader.failed() || gel_count > 1u << 20) {
      return Status::InvalidArgument("checkpoint: bad stats count");
    }
    for (uint64_t k = 0; k < gel_count; ++k) {
      TEXRHEO_ASSIGN_OR_RETURN(TopicStatsSnapshot s, TakeTopicStats(reader));
      state.gel_stats.push_back(std::move(s));
    }
    uint64_t emu_count = reader.Take<uint64_t>();
    if (reader.failed() || emu_count != gel_count) {
      return Status::InvalidArgument("checkpoint: stats count mismatch");
    }
    for (uint64_t k = 0; k < emu_count; ++k) {
      TEXRHEO_ASSIGN_OR_RETURN(TopicStatsSnapshot s, TakeTopicStats(reader));
      state.emulsion_stats.push_back(std::move(s));
    }
  }
  if (reader.Take<uint8_t>() != 0) {
    state.last_alias_rebuild_sweep = reader.Take<int32_t>();
    uint64_t stale_rows = reader.Take<uint64_t>();
    if (reader.failed() || stale_rows > 1u << 20) {
      return Status::InvalidArgument(
          "checkpoint: bad stale snapshot row count");
    }
    for (uint64_t k = 0; k < stale_rows; ++k) {
      state.stale_n_kv.push_back(reader.TakeVec<int32_t>());
    }
    state.stale_n_k = reader.TakeVec<int32_t>();
    if (reader.failed() || state.stale_n_k.size() != stale_rows) {
      return Status::InvalidArgument(
          "checkpoint: malformed stale alias snapshot");
    }
  }

  if (reader.failed()) {
    return Status::InvalidArgument("checkpoint: truncated payload");
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("checkpoint: trailing bytes in payload");
  }
  TEXRHEO_RETURN_IF_ERROR(StructuralCheck(state));
  return state;
}

Status WriteCheckpointFile(const std::string& path,
                           const CheckpointState& state, FileOps& ops) {
  return AtomicWriteFile(path, EncodeCheckpoint(state), ops);
}

StatusOr<CheckpointState> ReadCheckpointFile(const std::string& path) {
  TEXRHEO_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeCheckpoint(bytes);
}

std::string CheckpointFileName(int sweep) {
  return StrFormat("%s%09d%s", kFilePrefix, sweep, kFileSuffix);
}

std::vector<std::string> ListCheckpointFiles(const std::string& dir) {
  std::vector<std::pair<int, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    int sweep = SweepOfFileName(name);
    if (sweep < 0) continue;
    found.emplace_back(sweep, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [sweep, path] : found) paths.push_back(std::move(path));
  return paths;
}

StatusOr<CheckpointState> LoadLatestValidCheckpoint(const std::string& dir,
                                                    std::string* path_out) {
  for (const std::string& path : ListCheckpointFiles(dir)) {
    auto state = ReadCheckpointFile(path);
    if (state.ok()) {
      if (path_out != nullptr) *path_out = path;
      return state;
    }
    // Torn / corrupt / unreadable: fall through to the next-newest file.
  }
  return Status::NotFound("no valid checkpoint in " + dir);
}

Status ValidateCheckpointAgainstDataset(const CheckpointState& state,
                                        const recipe::Dataset& dataset) {
  const auto& documents = dataset.documents;
  size_t k_count = static_cast<size_t>(state.fingerprint.num_topics);
  if (documents.size() != state.z.size() ||
      documents.size() != static_cast<size_t>(state.fingerprint.num_documents)) {
    return Status::InvalidArgument(
        "checkpoint document count disagrees with dataset "
        "(wrong or modified corpus)");
  }
  size_t vocab = dataset.term_vocab.size();
  if (vocab != static_cast<size_t>(state.fingerprint.vocab_size)) {
    return Status::InvalidArgument(
        "checkpoint vocabulary size disagrees with dataset "
        "(wrong or modified corpus)");
  }
  std::vector<std::vector<int32_t>> n_dk(
      documents.size(), std::vector<int32_t>(k_count, 0));
  std::vector<std::vector<int32_t>> n_kv(k_count,
                                         std::vector<int32_t>(vocab, 0));
  std::vector<int32_t> n_k(k_count, 0);
  std::vector<int32_t> m_k(k_count, 0);
  for (size_t d = 0; d < documents.size(); ++d) {
    const auto& doc = documents[d];
    if (doc.term_ids.size() != state.z[d].size()) {
      return Status::InvalidArgument(
          "checkpoint token count disagrees with dataset at document " +
          std::to_string(d) + " (wrong or modified corpus)");
    }
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      if (doc.term_ids[n] < 0 ||
          static_cast<size_t>(doc.term_ids[n]) >= vocab) {
        return Status::OutOfRange("dataset term id outside vocabulary");
      }
      size_t k = static_cast<size_t>(state.z[d][n]);
      ++n_dk[d][k];
      ++n_kv[k][static_cast<size_t>(doc.term_ids[n])];
      ++n_k[k];
    }
    ++m_k[static_cast<size_t>(state.y[d])];
  }
  if (n_dk != state.n_dk || n_kv != state.n_kv || n_k != state.n_k ||
      m_k != state.m_k) {
    return Status::InvalidArgument(
        "checkpoint count matrices disagree with a rebuild from its "
        "assignments over this dataset (wrong or modified corpus)");
  }
  return Status::OK();
}

Status PruneCheckpoints(const std::string& dir, int keep_last, FileOps& ops) {
  std::vector<std::string> files = ListCheckpointFiles(dir);
  size_t keep = static_cast<size_t>(std::max(keep_last, 1));
  Status first_error = Status::OK();
  for (size_t i = keep; i < files.size(); ++i) {
    Status removed = ops.Remove(files[i]);
    if (!removed.ok() && first_error.ok()) first_error = removed;
  }
  return first_error;
}

}  // namespace texrheo::core
