#ifndef TEXRHEO_CORE_COLLAPSED_SAMPLER_H_
#define TEXRHEO_CORE_COLLAPSED_SAMPLER_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/joint_topic_model.h"
#include "math/student_t.h"
#include "util/thread_pool.h"

namespace texrheo::core {

/// Collapsed Gibbs sampler for the same joint topic model: instead of
/// instantiating (mu_k, Lambda_k) and redrawing them each sweep (the
/// paper's eq. 4), the Gaussian parameters are integrated out analytically
/// and y_d is sampled from the multivariate Student-t posterior predictive
/// of each topic's Normal-Wishart posterior (Rao-Blackwellized variant;
/// mixes faster on small corpora at a higher per-step cost).
///
/// Accepts the same configuration as JointTopicModel; the
/// `use_emulsion_likelihood` switch behaves identically.
class CollapsedJointTopicModel {
 public:
  static texrheo::StatusOr<CollapsedJointTopicModel> Create(
      const JointTopicModelConfig& config, const recipe::Dataset* dataset);

  CollapsedJointTopicModel(CollapsedJointTopicModel&&) = default;
  CollapsedJointTopicModel& operator=(CollapsedJointTopicModel&&) = default;

  texrheo::Status RunSweeps(int n);
  texrheo::Status Train() { return RunSweeps(config_.sweeps); }

  /// Point estimates in the same shape as JointTopicModel::Estimate();
  /// topic Gaussians are the Normal-Wishart posterior means.
  texrheo::StatusOr<TopicEstimates> Estimate() const;

  /// Collapsed predictive log likelihood of the concentration vectors plus
  /// the token likelihood (monitoring quantity; increases as the chain
  /// mixes).
  texrheo::StatusOr<double> PredictiveLogLikelihood() const;

  const std::vector<int>& y() const { return y_; }
  const std::vector<std::vector<int>>& z() const { return z_; }
  int num_topics() const { return config_.num_topics; }
  int completed_sweeps() const { return completed_sweeps_; }

  /// Rebuilds the count caches and per-topic sufficient statistics from the
  /// current assignments and the dataset's *current* tokens/features. Used
  /// by the Geweke harness, which resamples the data between sweeps;
  /// document count and per-document token counts must be unchanged.
  texrheo::Status ResyncWithData();

  /// Snapshot of the complete sampler state. The per-topic sufficient
  /// statistics are captured verbatim (including accumulated round-off from
  /// incremental removes) so a serial chain resumes bit-exactly.
  CheckpointState CaptureCheckpoint() const;

  /// Restores a CaptureCheckpoint snapshot; same fingerprint and corpus
  /// validation contract as JointTopicModel::RestoreFromCheckpoint.
  texrheo::Status RestoreFromCheckpoint(const CheckpointState& state);

  /// Loads the newest valid checkpoint in config.checkpoint_dir and
  /// restores it; NotFound when no valid checkpoint exists.
  texrheo::Status Resume();

  /// Writes a checkpoint immediately and applies the retention policy.
  texrheo::Status WriteCheckpointNow();

  /// OK when the per-topic sufficient statistics are finite and consistent
  /// with the y assignments. Runs after every sweep, before any checkpoint.
  texrheo::Status CheckNumericalHealth() const;

  /// Test seam: routes checkpoint writes through `ops` (fault injection).
  void set_checkpoint_file_ops(FileOps* ops) { checkpoint_file_ops_ = ops; }

 private:
  /// Incremental per-topic sufficient statistics of one vector family.
  struct TopicStats {
    size_t n = 0;
    math::Vector sum;
    math::Matrix sum_outer;

    explicit TopicStats(size_t dim) : sum(dim), sum_outer(dim, dim) {}
    void Add(const math::Vector& x);
    void Remove(const math::Vector& x);
    math::Vector Mean() const;
    math::Matrix Scatter() const;
  };

  CollapsedJointTopicModel(const JointTopicModelConfig& config,
                           const recipe::Dataset* dataset);

  texrheo::Status Initialize();
  void SampleZ();
  texrheo::Status SampleY();
  /// Lazily builds the thread pool, shard plan, and per-shard RNG streams.
  void EnsureParallelEngine();
  void SampleZParallel();
  texrheo::Status SampleYParallel();
  /// Recomputes gel_stats_/emulsion_stats_ from scratch off the current y_
  /// (the deterministic reduction after a parallel y sweep; also clears
  /// incremental-remove round-off).
  void RebuildTopicStats();
  /// Posterior predictive of topic k for the gel (or emulsion) family,
  /// given the current sufficient statistics.
  texrheo::StatusOr<math::StudentT> Predictive(int k, bool use_gel) const;
  CheckpointFingerprint MakeFingerprint() const;
  texrheo::Status MaybeWriteCheckpoint();

  JointTopicModelConfig config_;
  const recipe::Dataset* docs_;
  size_t vocab_size_ = 0;
  FileOps* checkpoint_file_ops_ = nullptr;  ///< Test seam; not owned.
  Rng rng_;
  // Parallel engine (populated on first parallel sweep; see num_threads).
  int resolved_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::pair<size_t, size_t>> shards_;
  std::vector<Rng> shard_rngs_;

  std::vector<std::vector<int>> z_;
  std::vector<int> y_;
  std::vector<std::vector<int>> n_dk_;
  std::vector<std::vector<int>> n_kv_;
  std::vector<int> n_k_;
  std::vector<TopicStats> gel_stats_;
  std::vector<TopicStats> emulsion_stats_;
  int completed_sweeps_ = 0;
};

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_COLLAPSED_SAMPLER_H_
