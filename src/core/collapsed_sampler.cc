#include "core/collapsed_sampler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <filesystem>

#include "core/parallel_gibbs.h"
#include "math/running_stats.h"
#include "math/special.h"

namespace texrheo::core {
namespace {

/// Posterior predictive from explicit sufficient statistics (shared by the
/// serial member Predictive and the per-worker local-stats path).
texrheo::StatusOr<math::StudentT> PredictiveFromStats(
    const math::NormalWishartParams& prior, size_t n, const math::Vector& mean,
    const math::Matrix& scatter) {
  return math::StudentT::PosteriorPredictive(prior.Posterior(n, mean, scatter));
}

}  // namespace

void CollapsedJointTopicModel::TopicStats::Add(const math::Vector& x) {
  ++n;
  sum += x;
  sum_outer += math::Matrix::Outer(x, x);
}

void CollapsedJointTopicModel::TopicStats::Remove(const math::Vector& x) {
  assert(n > 0);
  --n;
  sum -= x;
  sum_outer -= math::Matrix::Outer(x, x);
}

math::Vector CollapsedJointTopicModel::TopicStats::Mean() const {
  math::Vector m = sum;
  if (n > 0) m *= 1.0 / static_cast<double>(n);
  return m;
}

math::Matrix CollapsedJointTopicModel::TopicStats::Scatter() const {
  math::Matrix s = sum_outer;
  if (n > 0) {
    math::Vector m = Mean();
    s -= static_cast<double>(n) * math::Matrix::Outer(m, m);
  }
  // Symmetrize and clip round-off from incremental removes.
  for (size_t r = 0; r < s.rows(); ++r) {
    for (size_t c = r + 1; c < s.cols(); ++c) {
      double avg = 0.5 * (s(r, c) + s(c, r));
      s(r, c) = avg;
      s(c, r) = avg;
    }
    if (s(r, r) < 0.0) s(r, r) = 0.0;
  }
  return s;
}

CollapsedJointTopicModel::CollapsedJointTopicModel(
    const JointTopicModelConfig& config, const recipe::Dataset* dataset)
    : config_(config), docs_(dataset), rng_(config.seed) {}

texrheo::StatusOr<CollapsedJointTopicModel> CollapsedJointTopicModel::Create(
    const JointTopicModelConfig& config, const recipe::Dataset* dataset) {
  if (dataset == nullptr || dataset->documents.empty()) {
    return Status::InvalidArgument("collapsed model: empty dataset");
  }
  if (config.num_topics < 1 || config.alpha <= 0.0 || config.gamma <= 0.0 ||
      config.num_threads < 0) {
    return Status::InvalidArgument("collapsed model: invalid config");
  }
  CollapsedJointTopicModel model(config, dataset);
  TEXRHEO_RETURN_IF_ERROR(model.Initialize());
  return model;
}

texrheo::Status CollapsedJointTopicModel::Initialize() {
  const auto& documents = docs_->documents;
  vocab_size_ = docs_->term_vocab.size();
  size_t gel_dim = documents.front().gel_feature.size();
  size_t emu_dim = documents.front().emulsion_feature.size();

  if (config_.auto_prior) {
    // Same empirical prior as the non-collapsed sampler.
    math::RunningMoments gel_moments(gel_dim), emu_moments(emu_dim);
    for (const auto& doc : documents) {
      gel_moments.Add(doc.gel_feature);
      emu_moments.Add(doc.emulsion_feature);
    }
    auto make_prior = [this](const math::RunningMoments& m) {
      math::NormalWishartParams prior;
      size_t dim = m.dim();
      prior.mu0 = m.Mean();
      prior.beta = config_.prior_beta;
      prior.nu = static_cast<double>(dim) + config_.prior_nu_extra;
      prior.scale = math::Matrix(dim, dim);
      math::Matrix cov = m.Covariance();
      for (size_t i = 0; i < dim; ++i) {
        prior.scale(i, i) = 1.0 / (std::max(cov(i, i), 1e-3) * prior.nu);
      }
      return prior;
    };
    config_.gel_prior = make_prior(gel_moments);
    config_.emulsion_prior = make_prior(emu_moments);
  }
  TEXRHEO_RETURN_IF_ERROR(config_.gel_prior.Validate());
  TEXRHEO_RETURN_IF_ERROR(config_.emulsion_prior.Validate());

  size_t d_count = documents.size();
  int k_count = config_.num_topics;
  z_.resize(d_count);
  y_.resize(d_count);
  n_dk_.assign(d_count, std::vector<int>(k_count, 0));
  n_kv_.assign(static_cast<size_t>(k_count),
               std::vector<int>(vocab_size_, 0));
  n_k_.assign(static_cast<size_t>(k_count), 0);
  gel_stats_.assign(static_cast<size_t>(k_count), TopicStats(gel_dim));
  emulsion_stats_.assign(static_cast<size_t>(k_count), TopicStats(emu_dim));

  for (size_t d = 0; d < d_count; ++d) {
    const auto& doc = documents[d];
    z_[d].resize(doc.term_ids.size());
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      int k = static_cast<int>(rng_.NextUint(static_cast<uint64_t>(k_count)));
      z_[d][n] = k;
      ++n_dk_[d][static_cast<size_t>(k)];
      ++n_kv_[static_cast<size_t>(k)][static_cast<size_t>(doc.term_ids[n])];
      ++n_k_[static_cast<size_t>(k)];
    }
    int k = static_cast<int>(rng_.NextUint(static_cast<uint64_t>(k_count)));
    y_[d] = k;
    gel_stats_[static_cast<size_t>(k)].Add(doc.gel_feature);
    emulsion_stats_[static_cast<size_t>(k)].Add(doc.emulsion_feature);
  }
  return Status::OK();
}

texrheo::StatusOr<math::StudentT> CollapsedJointTopicModel::Predictive(
    int k, bool use_gel) const {
  const TopicStats& stats = use_gel ? gel_stats_[static_cast<size_t>(k)]
                                    : emulsion_stats_[static_cast<size_t>(k)];
  const math::NormalWishartParams& prior =
      use_gel ? config_.gel_prior : config_.emulsion_prior;
  return PredictiveFromStats(prior, stats.n, stats.Mean(), stats.Scatter());
}

void CollapsedJointTopicModel::SampleZ() {
  const auto& documents = docs_->documents;
  int k_count = config_.num_topics;
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  std::vector<double> weights(static_cast<size_t>(k_count));
  for (size_t d = 0; d < documents.size(); ++d) {
    const auto& doc = documents[d];
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t v = static_cast<size_t>(doc.term_ids[n]);
      int old_k = z_[d][n];
      --n_dk_[d][static_cast<size_t>(old_k)];
      --n_kv_[static_cast<size_t>(old_k)][v];
      --n_k_[static_cast<size_t>(old_k)];
      for (int k = 0; k < k_count; ++k) {
        size_t ks = static_cast<size_t>(k);
        weights[ks] = (static_cast<double>(n_dk_[d][ks]) +
                       (y_[d] == k ? 1.0 : 0.0) + config_.alpha) *
                      (static_cast<double>(n_kv_[ks][v]) + config_.gamma) /
                      (static_cast<double>(n_k_[ks]) + gamma_v);
      }
      int new_k = static_cast<int>(rng_.NextCategorical(weights));
      z_[d][n] = new_k;
      ++n_dk_[d][static_cast<size_t>(new_k)];
      ++n_kv_[static_cast<size_t>(new_k)][v];
      ++n_k_[static_cast<size_t>(new_k)];
    }
  }
}

texrheo::Status CollapsedJointTopicModel::SampleY() {
  const auto& documents = docs_->documents;
  int k_count = config_.num_topics;
  std::vector<double> log_w(static_cast<size_t>(k_count));
  std::vector<double> weights(static_cast<size_t>(k_count));
  for (size_t d = 0; d < documents.size(); ++d) {
    const auto& doc = documents[d];
    int old_k = y_[d];
    gel_stats_[static_cast<size_t>(old_k)].Remove(doc.gel_feature);
    emulsion_stats_[static_cast<size_t>(old_k)].Remove(doc.emulsion_feature);

    for (int k = 0; k < k_count; ++k) {
      size_t ks = static_cast<size_t>(k);
      double lw =
          std::log(static_cast<double>(n_dk_[d][ks]) + config_.alpha);
      TEXRHEO_ASSIGN_OR_RETURN(math::StudentT gel_pred,
                               Predictive(k, /*use_gel=*/true));
      lw += gel_pred.LogPdf(doc.gel_feature);
      if (config_.use_emulsion_likelihood) {
        TEXRHEO_ASSIGN_OR_RETURN(math::StudentT emu_pred,
                                 Predictive(k, /*use_gel=*/false));
        lw += emu_pred.LogPdf(doc.emulsion_feature);
      }
      log_w[ks] = lw;
    }
    double norm = math::LogSumExp(log_w.data(), log_w.size());
    if (!std::isfinite(norm)) {
      gel_stats_[static_cast<size_t>(old_k)].Add(doc.gel_feature);
      emulsion_stats_[static_cast<size_t>(old_k)].Add(doc.emulsion_feature);
      return Status::Internal(
          "numerical health: non-finite topic weights for document " +
          std::to_string(d));
    }
    for (int k = 0; k < k_count; ++k) {
      weights[static_cast<size_t>(k)] =
          std::exp(log_w[static_cast<size_t>(k)] - norm);
    }
    int new_k = static_cast<int>(rng_.NextCategorical(weights));
    y_[d] = new_k;
    gel_stats_[static_cast<size_t>(new_k)].Add(doc.gel_feature);
    emulsion_stats_[static_cast<size_t>(new_k)].Add(doc.emulsion_feature);
  }
  return Status::OK();
}

void CollapsedJointTopicModel::EnsureParallelEngine() {
  if (pool_ != nullptr) return;
  resolved_threads_ = ResolveNumThreads(config_.num_threads);
  pool_ = std::make_unique<ThreadPool>(resolved_threads_);
  shards_ = PlanShards(docs_->documents, resolved_threads_);
  shard_rngs_.clear();
  shard_rngs_.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_rngs_.push_back(Rng::ForStream(config_.seed, s + 1));
  }
}

void CollapsedJointTopicModel::SampleZParallel() {
  const auto& documents = docs_->documents;
  int k_count = config_.num_topics;
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  int num_shards = static_cast<int>(shards_.size());
  std::vector<TopicCountDelta> deltas(
      static_cast<size_t>(num_shards), TopicCountDelta(k_count, vocab_size_));

  // Same AD-LDA sharding as JointTopicModel::SampleZParallel: frozen global
  // counts plus per-worker deltas, merged in shard order afterwards.
  pool_->ParallelFor(num_shards, [&](int s) {
    size_t lo = shards_[static_cast<size_t>(s)].first;
    size_t hi = shards_[static_cast<size_t>(s)].second;
    Rng& rng = shard_rngs_[static_cast<size_t>(s)];
    TopicCountDelta& delta = deltas[static_cast<size_t>(s)];
    std::vector<double> weights(static_cast<size_t>(k_count));
    for (size_t d = lo; d < hi; ++d) {
      const auto& doc = documents[d];
      for (size_t n = 0; n < doc.term_ids.size(); ++n) {
        size_t v = static_cast<size_t>(doc.term_ids[n]);
        int old_k = z_[d][n];
        --n_dk_[d][static_cast<size_t>(old_k)];
        --delta.n_kv[static_cast<size_t>(old_k)][v];
        --delta.n_k[static_cast<size_t>(old_k)];
        for (int k = 0; k < k_count; ++k) {
          size_t ks = static_cast<size_t>(k);
          weights[ks] =
              (static_cast<double>(n_dk_[d][ks]) +
               (y_[d] == k ? 1.0 : 0.0) + config_.alpha) *
              (static_cast<double>(n_kv_[ks][v] + delta.n_kv[ks][v]) +
               config_.gamma) /
              (static_cast<double>(n_k_[ks] + delta.n_k[ks]) + gamma_v);
        }
        int new_k = static_cast<int>(rng.NextCategorical(weights));
        z_[d][n] = new_k;
        ++n_dk_[d][static_cast<size_t>(new_k)];
        ++delta.n_kv[static_cast<size_t>(new_k)][v];
        ++delta.n_k[static_cast<size_t>(new_k)];
      }
    }
  });
  MergeTopicCountDeltas(deltas, n_kv_, n_k_);
}

texrheo::Status CollapsedJointTopicModel::SampleYParallel() {
  // The collapsed y conditionals couple documents through the per-topic
  // sufficient statistics, so each worker sweeps against a private copy of
  // the sweep-start statistics (stale with respect to the other shards, the
  // same approximation AD-LDA makes for word counts). The global statistics
  // are then rebuilt from scratch off the final y_, which is both the
  // deterministic reduction and a round-off reset.
  const auto& documents = docs_->documents;
  int k_count = config_.num_topics;
  int num_shards = static_cast<int>(shards_.size());
  std::vector<texrheo::Status> shard_status(
      static_cast<size_t>(num_shards), Status::OK());

  pool_->ParallelFor(num_shards, [&](int s) {
    size_t lo = shards_[static_cast<size_t>(s)].first;
    size_t hi = shards_[static_cast<size_t>(s)].second;
    if (lo == hi) return;
    Rng& rng = shard_rngs_[static_cast<size_t>(s)];
    std::vector<TopicStats> gel_local = gel_stats_;
    std::vector<TopicStats> emu_local = emulsion_stats_;
    std::vector<double> log_w(static_cast<size_t>(k_count));
    std::vector<double> weights(static_cast<size_t>(k_count));
    for (size_t d = lo; d < hi; ++d) {
      const auto& doc = documents[d];
      int old_k = y_[d];
      gel_local[static_cast<size_t>(old_k)].Remove(doc.gel_feature);
      emu_local[static_cast<size_t>(old_k)].Remove(doc.emulsion_feature);
      for (int k = 0; k < k_count; ++k) {
        size_t ks = static_cast<size_t>(k);
        double lw =
            std::log(static_cast<double>(n_dk_[d][ks]) + config_.alpha);
        auto gel_pred = PredictiveFromStats(
            config_.gel_prior, gel_local[ks].n, gel_local[ks].Mean(),
            gel_local[ks].Scatter());
        if (!gel_pred.ok()) {
          shard_status[static_cast<size_t>(s)] = gel_pred.status();
          return;
        }
        lw += gel_pred->LogPdf(doc.gel_feature);
        if (config_.use_emulsion_likelihood) {
          auto emu_pred = PredictiveFromStats(
              config_.emulsion_prior, emu_local[ks].n, emu_local[ks].Mean(),
              emu_local[ks].Scatter());
          if (!emu_pred.ok()) {
            shard_status[static_cast<size_t>(s)] = emu_pred.status();
            return;
          }
          lw += emu_pred->LogPdf(doc.emulsion_feature);
        }
        log_w[ks] = lw;
      }
      double norm = math::LogSumExp(log_w.data(), log_w.size());
      if (!std::isfinite(norm)) {
        shard_status[static_cast<size_t>(s)] = Status::Internal(
            "numerical health: non-finite topic weights for document " +
            std::to_string(d));
        return;
      }
      for (int k = 0; k < k_count; ++k) {
        weights[static_cast<size_t>(k)] =
            std::exp(log_w[static_cast<size_t>(k)] - norm);
      }
      int new_k = static_cast<int>(rng.NextCategorical(weights));
      y_[d] = new_k;
      gel_local[static_cast<size_t>(new_k)].Add(doc.gel_feature);
      emu_local[static_cast<size_t>(new_k)].Add(doc.emulsion_feature);
    }
  });
  for (const auto& status : shard_status) {
    TEXRHEO_RETURN_IF_ERROR(status);
  }
  RebuildTopicStats();
  return Status::OK();
}

void CollapsedJointTopicModel::RebuildTopicStats() {
  const auto& documents = docs_->documents;
  size_t gel_dim = documents.front().gel_feature.size();
  size_t emu_dim = documents.front().emulsion_feature.size();
  gel_stats_.assign(static_cast<size_t>(config_.num_topics),
                    TopicStats(gel_dim));
  emulsion_stats_.assign(static_cast<size_t>(config_.num_topics),
                         TopicStats(emu_dim));
  for (size_t d = 0; d < documents.size(); ++d) {
    gel_stats_[static_cast<size_t>(y_[d])].Add(documents[d].gel_feature);
    emulsion_stats_[static_cast<size_t>(y_[d])].Add(
        documents[d].emulsion_feature);
  }
}

texrheo::Status CollapsedJointTopicModel::ResyncWithData() {
  const auto& documents = docs_->documents;
  if (documents.size() != z_.size()) {
    return Status::InvalidArgument("resync: document count changed");
  }
  for (auto& row : n_kv_) std::fill(row.begin(), row.end(), 0);
  std::fill(n_k_.begin(), n_k_.end(), 0);
  for (size_t d = 0; d < documents.size(); ++d) {
    const auto& doc = documents[d];
    if (doc.term_ids.size() != z_[d].size()) {
      return Status::InvalidArgument("resync: token count changed");
    }
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      if (doc.term_ids[n] < 0 ||
          static_cast<size_t>(doc.term_ids[n]) >= vocab_size_) {
        return Status::OutOfRange("resync: term id outside vocab");
      }
      ++n_kv_[static_cast<size_t>(z_[d][n])]
             [static_cast<size_t>(doc.term_ids[n])];
      ++n_k_[static_cast<size_t>(z_[d][n])];
    }
  }
  RebuildTopicStats();
  return Status::OK();
}

texrheo::Status CollapsedJointTopicModel::RunSweeps(int n) {
  bool parallel = false;
  if (config_.num_threads != 1) {
    EnsureParallelEngine();
    parallel = resolved_threads_ > 1;
  }
  for (int sweep = 0; sweep < n; ++sweep) {
    if (parallel) {
      SampleZParallel();
      TEXRHEO_RETURN_IF_ERROR(SampleYParallel());
    } else {
      SampleZ();
      TEXRHEO_RETURN_IF_ERROR(SampleY());
    }
    ++completed_sweeps_;
    // Health guard runs before the checkpoint hook so a numerically
    // poisoned state is never persisted.
    TEXRHEO_RETURN_IF_ERROR(CheckNumericalHealth());
    TEXRHEO_RETURN_IF_ERROR(MaybeWriteCheckpoint());
  }
  return Status::OK();
}

texrheo::Status CollapsedJointTopicModel::CheckNumericalHealth() const {
  size_t total = 0;
  for (size_t k = 0; k < gel_stats_.size(); ++k) {
    const TopicStats* families[] = {&gel_stats_[k], &emulsion_stats_[k]};
    for (const TopicStats* stats : families) {
      for (size_t i = 0; i < stats->sum.size(); ++i) {
        if (!std::isfinite(stats->sum[i])) {
          return Status::Internal(
              "numerical health: non-finite statistics in topic " +
              std::to_string(k));
        }
      }
      for (size_t r = 0; r < stats->sum_outer.rows(); ++r) {
        for (size_t c = 0; c < stats->sum_outer.cols(); ++c) {
          if (!std::isfinite(stats->sum_outer(r, c))) {
            return Status::Internal(
                "numerical health: non-finite scatter in topic " +
                std::to_string(k));
          }
        }
      }
    }
    if (gel_stats_[k].n != emulsion_stats_[k].n) {
      return Status::Internal(
          "numerical health: gel/emulsion member counts diverged in topic " +
          std::to_string(k));
    }
    total += gel_stats_[k].n;
  }
  if (total != y_.size()) {
    return Status::Internal(
        "numerical health: topic member counts do not sum to the corpus");
  }
  return Status::OK();
}

CheckpointFingerprint CollapsedJointTopicModel::MakeFingerprint() const {
  CheckpointFingerprint fp;
  fp.sampler = SamplerKind::kCollapsed;
  fp.num_topics = config_.num_topics;
  fp.alpha = config_.alpha;
  fp.gamma = config_.gamma;
  fp.seed = config_.seed;
  fp.num_threads = config_.num_threads;
  fp.optimize_alpha = config_.optimize_alpha;
  fp.use_emulsion_likelihood = config_.use_emulsion_likelihood;
  fp.gmm_init = config_.gmm_init;
  fp.num_documents = docs_->documents.size();
  fp.vocab_size = vocab_size_;
  return fp;
}

CheckpointState CollapsedJointTopicModel::CaptureCheckpoint() const {
  CheckpointState state;
  state.fingerprint = MakeFingerprint();
  state.completed_sweeps = completed_sweeps_;
  state.current_alpha = config_.alpha;
  state.master_rng = rng_.SaveState();
  state.shard_rngs.reserve(shard_rngs_.size());
  for (const Rng& r : shard_rngs_) state.shard_rngs.push_back(r.SaveState());
  state.y = ToCheckpointInts(y_);
  state.z = ToCheckpointRows(z_);
  state.n_dk = ToCheckpointRows(n_dk_);
  state.n_kv = ToCheckpointRows(n_kv_);
  state.n_k = ToCheckpointInts(n_k_);
  // The collapsed sampler has no explicit m_k; it lives in the per-topic
  // statistics. Stored anyway so the corpus cross-check covers y.
  state.m_k.reserve(gel_stats_.size());
  for (const TopicStats& stats : gel_stats_) {
    state.m_k.push_back(static_cast<int32_t>(stats.n));
  }
  auto snapshot = [](const TopicStats& stats) {
    TopicStatsSnapshot snap;
    snap.n = static_cast<uint64_t>(stats.n);
    snap.sum.assign(stats.sum.data().begin(), stats.sum.data().end());
    size_t dim = stats.sum_outer.rows();
    snap.sum_outer.reserve(dim * dim);
    for (size_t r = 0; r < dim; ++r) {
      for (size_t c = 0; c < dim; ++c) {
        snap.sum_outer.push_back(stats.sum_outer(r, c));
      }
    }
    return snap;
  };
  for (const TopicStats& stats : gel_stats_) {
    state.gel_stats.push_back(snapshot(stats));
  }
  for (const TopicStats& stats : emulsion_stats_) {
    state.emulsion_stats.push_back(snapshot(stats));
  }
  return state;
}

texrheo::Status CollapsedJointTopicModel::RestoreFromCheckpoint(
    const CheckpointState& state) {
  CheckpointFingerprint expected = MakeFingerprint();
  if (!(state.fingerprint == expected)) {
    return Status::FailedPrecondition(
        "checkpoint fingerprint mismatch\n  checkpoint: " +
        state.fingerprint.ToString() + "\n  model:      " +
        expected.ToString());
  }
  TEXRHEO_RETURN_IF_ERROR(ValidateCheckpointAgainstDataset(state, *docs_));
  const auto& documents = docs_->documents;
  size_t k_count = static_cast<size_t>(config_.num_topics);
  size_t gel_dim = documents.front().gel_feature.size();
  size_t emu_dim = documents.front().emulsion_feature.size();
  if (state.gel_stats.size() != k_count ||
      state.emulsion_stats.size() != k_count) {
    return Status::InvalidArgument(
        "checkpoint is missing per-topic sufficient statistics");
  }
  for (size_t k = 0; k < k_count; ++k) {
    if (state.gel_stats[k].sum.size() != gel_dim ||
        state.emulsion_stats[k].sum.size() != emu_dim) {
      return Status::InvalidArgument(
          "checkpoint statistics dimension disagrees with dataset features");
    }
    if (state.gel_stats[k].n != static_cast<uint64_t>(state.m_k[k])) {
      return Status::InvalidArgument(
          "checkpoint statistics member counts disagree with y assignments");
    }
  }
  if (!state.shard_rngs.empty()) {
    size_t planned = PlanShards(documents,
                                ResolveNumThreads(config_.num_threads))
                         .size();
    if (planned != state.shard_rngs.size()) {
      return Status::FailedPrecondition(
          "checkpoint shard count differs from this machine's plan "
          "(hardware concurrency changed?)");
    }
  }
  // All validation happens above this line so a rejected checkpoint never
  // leaves the model partially restored.
  y_ = FromCheckpointInts(state.y);
  z_ = FromCheckpointRows(state.z);
  n_dk_ = FromCheckpointRows(state.n_dk);
  n_kv_ = FromCheckpointRows(state.n_kv);
  n_k_ = FromCheckpointInts(state.n_k);
  auto unsnapshot = [](const TopicStatsSnapshot& snap, size_t dim) {
    TopicStats stats(dim);
    stats.n = static_cast<size_t>(snap.n);
    for (size_t i = 0; i < dim; ++i) stats.sum[i] = snap.sum[i];
    for (size_t r = 0; r < dim; ++r) {
      for (size_t c = 0; c < dim; ++c) {
        stats.sum_outer(r, c) = snap.sum_outer[r * dim + c];
      }
    }
    return stats;
  };
  gel_stats_.clear();
  emulsion_stats_.clear();
  for (size_t k = 0; k < k_count; ++k) {
    gel_stats_.push_back(unsnapshot(state.gel_stats[k], gel_dim));
    emulsion_stats_.push_back(unsnapshot(state.emulsion_stats[k], emu_dim));
  }
  completed_sweeps_ = state.completed_sweeps;
  rng_.RestoreState(state.master_rng);
  pool_.reset();
  shards_.clear();
  shard_rngs_.clear();
  if (!state.shard_rngs.empty()) {
    EnsureParallelEngine();
    for (size_t s = 0; s < shard_rngs_.size(); ++s) {
      shard_rngs_[s].RestoreState(state.shard_rngs[s]);
    }
  }
  return Status::OK();
}

texrheo::Status CollapsedJointTopicModel::Resume() {
  if (config_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition("resume: checkpoint_dir not configured");
  }
  TEXRHEO_ASSIGN_OR_RETURN(CheckpointState state,
                           LoadLatestValidCheckpoint(config_.checkpoint_dir));
  return RestoreFromCheckpoint(state);
}

texrheo::Status CollapsedJointTopicModel::WriteCheckpointNow() {
  if (config_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition(
        "checkpoint: checkpoint_dir not configured");
  }
  FileOps& ops =
      checkpoint_file_ops_ != nullptr ? *checkpoint_file_ops_ : FileOps::Real();
  std::error_code ec;
  std::filesystem::create_directories(config_.checkpoint_dir, ec);
  std::string path =
      (std::filesystem::path(config_.checkpoint_dir) /
       CheckpointFileName(completed_sweeps_))
          .string();
  TEXRHEO_RETURN_IF_ERROR(WriteCheckpointFile(path, CaptureCheckpoint(), ops));
  return PruneCheckpoints(config_.checkpoint_dir, config_.checkpoint_keep_last,
                          ops);
}

texrheo::Status CollapsedJointTopicModel::MaybeWriteCheckpoint() {
  if (config_.checkpoint_interval <= 0 || config_.checkpoint_dir.empty()) {
    return Status::OK();
  }
  if (completed_sweeps_ % config_.checkpoint_interval != 0) {
    return Status::OK();
  }
  return WriteCheckpointNow();
}

texrheo::StatusOr<TopicEstimates> CollapsedJointTopicModel::Estimate() const {
  const auto& documents = docs_->documents;
  int k_count = config_.num_topics;
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  double alpha_sum = config_.alpha * static_cast<double>(k_count);

  TopicEstimates est;
  est.phi.assign(static_cast<size_t>(k_count),
                 std::vector<double>(vocab_size_, 0.0));
  for (int k = 0; k < k_count; ++k) {
    size_t ks = static_cast<size_t>(k);
    for (size_t v = 0; v < vocab_size_; ++v) {
      est.phi[ks][v] = (static_cast<double>(n_kv_[ks][v]) + config_.gamma) /
                       (static_cast<double>(n_k_[ks]) + gamma_v);
    }
    math::NormalWishartParams gel_post = config_.gel_prior.Posterior(
        gel_stats_[ks].n, gel_stats_[ks].Mean(), gel_stats_[ks].Scatter());
    math::NormalWishartParams emu_post = config_.emulsion_prior.Posterior(
        emulsion_stats_[ks].n, emulsion_stats_[ks].Mean(),
        emulsion_stats_[ks].Scatter());
    TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian g,
                             math::NormalWishartMean(gel_post));
    TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian e,
                             math::NormalWishartMean(emu_post));
    est.gel_topics.push_back(std::move(g));
    est.emulsion_topics.push_back(std::move(e));
  }

  est.theta.assign(documents.size(),
                   std::vector<double>(static_cast<size_t>(k_count), 0.0));
  est.doc_topic.resize(documents.size());
  est.topic_recipe_count.assign(static_cast<size_t>(k_count), 0);
  for (size_t d = 0; d < documents.size(); ++d) {
    double n_d = static_cast<double>(documents[d].term_ids.size());
    int best = 0;
    double best_val = -1.0;
    for (int k = 0; k < k_count; ++k) {
      size_t ks = static_cast<size_t>(k);
      double val = (static_cast<double>(n_dk_[d][ks]) +
                    (y_[d] == k ? 1.0 : 0.0) + config_.alpha) /
                   (n_d + 1.0 + alpha_sum);
      est.theta[d][ks] = val;
      if (val > best_val) {
        best_val = val;
        best = k;
      }
    }
    est.doc_topic[d] = best;
    ++est.topic_recipe_count[static_cast<size_t>(best)];
  }
  return est;
}

texrheo::StatusOr<double> CollapsedJointTopicModel::PredictiveLogLikelihood()
    const {
  const auto& documents = docs_->documents;
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  double ll = 0.0;
  // Precompute per-topic predictives once.
  std::vector<math::StudentT> gel_pred, emu_pred;
  for (int k = 0; k < config_.num_topics; ++k) {
    TEXRHEO_ASSIGN_OR_RETURN(math::StudentT g, Predictive(k, true));
    gel_pred.push_back(std::move(g));
    if (config_.use_emulsion_likelihood) {
      TEXRHEO_ASSIGN_OR_RETURN(math::StudentT e, Predictive(k, false));
      emu_pred.push_back(std::move(e));
    }
  }
  for (size_t d = 0; d < documents.size(); ++d) {
    const auto& doc = documents[d];
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t k = static_cast<size_t>(z_[d][n]);
      size_t v = static_cast<size_t>(doc.term_ids[n]);
      ll += std::log((static_cast<double>(n_kv_[k][v]) + config_.gamma) /
                     (static_cast<double>(n_k_[k]) + gamma_v));
    }
    size_t yk = static_cast<size_t>(y_[d]);
    ll += gel_pred[yk].LogPdf(doc.gel_feature);
    if (config_.use_emulsion_likelihood) {
      ll += emu_pred[yk].LogPdf(doc.emulsion_feature);
    }
  }
  return ll;
}

}  // namespace texrheo::core
