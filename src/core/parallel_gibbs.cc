#include "core/parallel_gibbs.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace texrheo::core {

int ResolveNumThreads(int configured) {
  if (configured == 0) return ThreadPool::HardwareConcurrency();
  return std::max(configured, 1);
}

std::vector<std::pair<size_t, size_t>> PlanShards(
    const std::vector<recipe::Document>& docs, int num_shards) {
  size_t shards = static_cast<size_t>(std::max(num_shards, 1));
  std::vector<std::pair<size_t, size_t>> ranges(shards, {0, 0});
  size_t total_work = 0;
  for (const auto& doc : docs) total_work += doc.term_ids.size() + 1;

  size_t d = 0;
  size_t work_done = 0;
  for (size_t s = 0; s < shards; ++s) {
    size_t begin = d;
    // Cumulative-work target keeps rounding drift from starving the tail.
    size_t target = total_work * (s + 1) / shards;
    while (d < docs.size() && (work_done < target || s + 1 == shards)) {
      work_done += docs[d].term_ids.size() + 1;
      ++d;
    }
    ranges[s] = {begin, d};
  }
  return ranges;
}

void MergeTopicCountDeltas(const std::vector<TopicCountDelta>& deltas,
                           std::vector<std::vector<int>>& n_kv,
                           std::vector<int>& n_k) {
  for (const TopicCountDelta& delta : deltas) {
    for (size_t k = 0; k < n_k.size(); ++k) {
      n_k[k] += delta.n_k[k];
      const std::vector<int>& src = delta.n_kv[k];
      std::vector<int>& dst = n_kv[k];
      for (size_t v = 0; v < dst.size(); ++v) dst[v] += src[v];
    }
  }
}

void EffectiveInvDenominators(const std::vector<int>& n_k,
                              const TopicCountDelta* delta, double gamma_v,
                              std::vector<double>& out) {
  out.resize(n_k.size());
  if (delta == nullptr) {
    for (size_t k = 0; k < n_k.size(); ++k) {
      out[k] = 1.0 / (static_cast<double>(n_k[k]) + gamma_v);
    }
  } else {
    for (size_t k = 0; k < n_k.size(); ++k) {
      out[k] =
          1.0 / (static_cast<double>(n_k[k] + delta->n_k[k]) + gamma_v);
    }
  }
}

}  // namespace texrheo::core
