#ifndef TEXRHEO_CORE_LDA_BASELINE_H_
#define TEXRHEO_CORE_LDA_BASELINE_H_

#include <cstdint>
#include <vector>

#include "math/distributions.h"
#include "recipe/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace texrheo::core {

/// Configuration of the conventional-LDA baseline (texture terms only; the
/// "single type of data" model the paper contrasts against).
struct LdaConfig {
  int num_topics = 10;
  double alpha = 0.5;
  double gamma = 0.1;
  int sweeps = 200;
  uint64_t seed = 1;
};

/// Collapsed-Gibbs LDA over the texture-term sequences of a dataset,
/// ignoring all concentration information.
class LdaModel {
 public:
  static texrheo::StatusOr<LdaModel> Create(const LdaConfig& config,
                                            const recipe::Dataset* dataset);

  texrheo::Status RunSweeps(int n);
  texrheo::Status Train() { return RunSweeps(config_.sweeps); }

  /// phi[k][v] point estimate.
  std::vector<std::vector<double>> Phi() const;
  /// theta[d][k] point estimate.
  std::vector<std::vector<double>> Theta() const;
  /// argmax_k theta[d][k] per document.
  std::vector<int> DocTopics() const;

  /// Token log likelihood under current counts (convergence monitor).
  double LogLikelihood() const;

  int num_topics() const { return config_.num_topics; }

 private:
  LdaModel(const LdaConfig& config, const recipe::Dataset* dataset);

  LdaConfig config_;
  const recipe::Dataset* docs_;
  size_t vocab_size_ = 0;
  Rng rng_;
  std::vector<std::vector<int>> z_;
  std::vector<std::vector<int>> n_dk_;
  std::vector<std::vector<int>> n_kv_;
  std::vector<int> n_k_;
};

/// Fits one Gaussian per topic over the gel (or emulsion) features of the
/// documents hard-assigned to it — the post-hoc step a decoupled
/// "LDA then look at concentrations" pipeline needs before it can be linked
/// to empirical settings. Empty topics get the prior's mean Gaussian.
texrheo::StatusOr<std::vector<math::Gaussian>> FitPostHocGaussians(
    const recipe::Dataset& dataset, const std::vector<int>& doc_topic,
    int num_topics, bool use_gel, const math::NormalWishartParams& prior);

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_LDA_BASELINE_H_
