#include "core/linkage.h"

#include <cmath>
#include <limits>
#include <string>

namespace texrheo::core {
namespace {

/// Ensures a computed divergence is usable for ranking. A degenerate or
/// near-singular topic covariance (collapsed topic, overflowed precision)
/// yields Inf or NaN here; NaN in particular poisons every comparison and
/// would silently scramble the ranking, so it becomes a clean Status
/// instead.
texrheo::StatusOr<double> CheckedScore(double score, const char* method) {
  if (!std::isfinite(score)) {
    return Status::FailedPrecondition(
        std::string("degenerate topic Gaussian: non-finite ") + method +
        " divergence");
  }
  return score;
}

texrheo::StatusOr<double> Divergence(const math::Vector& feature,
                                     const math::Gaussian& topic,
                                     const LinkageOptions& options) {
  if (feature.size() != topic.mean().size()) {
    return Status::InvalidArgument(
        "linkage: feature dimension does not match topic Gaussian");
  }
  switch (options.method) {
    case LinkageMethod::kGaussianKL: {
      if (options.measurement_sigma <= 0.0) {
        return Status::InvalidArgument("measurement_sigma must be positive");
      }
      // Closed-form KL(N(f, sigma^2 I) || topic). Re-factorizing the topic
      // precision through the jitter ladder (instead of trusting the
      // log-det cached at construction) is what turns a numerically
      // stressed topic into a Status rather than a NaN ordering.
      auto chol = math::CholeskyWithJitter(topic.precision());
      if (!chol.ok()) {
        return Status::FailedPrecondition(
            "degenerate topic covariance: precision not factorizable (" +
            chol.status().message() + ")");
      }
      double sigma2 = options.measurement_sigma * options.measurement_sigma;
      double d = static_cast<double>(feature.size());
      double trace_term = sigma2 * topic.precision().Trace();
      double quad = math::QuadraticForm(topic.precision(), feature,
                                        topic.mean());
      double log_det_term = -d * std::log(sigma2) - chol->LogDet();
      return CheckedScore(0.5 * (trace_term + quad - d + log_det_term),
                          "Gaussian-KL");
    }
    case LinkageMethod::kNegLogDensity:
      return CheckedScore(-topic.LogPdf(feature), "neg-log-density");
    case LinkageMethod::kMahalanobis:
      return CheckedScore(
          math::QuadraticForm(topic.precision(), feature, topic.mean()),
          "Mahalanobis");
    case LinkageMethod::kEuclidean: {
      math::Vector d = feature;
      d -= topic.mean();
      return CheckedScore(d.Norm(), "Euclidean");
    }
  }
  return Status::Internal("unhandled linkage method");
}

}  // namespace

texrheo::StatusOr<std::vector<SettingLinkage>> LinkSettingsToTopics(
    const TopicEstimates& estimates,
    const std::vector<rheology::EmpiricalSetting>& settings,
    const recipe::FeatureConfig& feature_config,
    const LinkageOptions& options) {
  std::vector<SettingLinkage> out;
  out.reserve(settings.size());
  for (const auto& setting : settings) {
    math::Vector feature = recipe::ToFeature(setting.gel, feature_config);
    SettingLinkage link;
    link.setting_id = setting.id;
    link.divergence = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < estimates.gel_topics.size(); ++k) {
      TEXRHEO_ASSIGN_OR_RETURN(
          double div,
          Divergence(feature, estimates.gel_topics[k], options));
      link.divergence_by_topic.push_back(div);
      if (div < link.divergence) {
        link.divergence = div;
        link.topic = static_cast<int>(k);
      }
    }
    out.push_back(std::move(link));
  }
  return out;
}

texrheo::StatusOr<SettingLinkage> LinkConcentrationToTopic(
    const TopicEstimates& estimates, const math::Vector& gel_concentration,
    const recipe::FeatureConfig& feature_config,
    const LinkageOptions& options) {
  rheology::EmpiricalSetting setting;
  setting.id = -1;
  setting.gel = gel_concentration;
  TEXRHEO_ASSIGN_OR_RETURN(
      std::vector<SettingLinkage> links,
      LinkSettingsToTopics(estimates, {setting}, feature_config, options));
  return links.front();
}

}  // namespace texrheo::core
