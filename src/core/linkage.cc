#include "core/linkage.h"

#include <cmath>
#include <limits>

namespace texrheo::core {
namespace {

texrheo::StatusOr<double> Divergence(const math::Vector& feature,
                                     const math::Gaussian& topic,
                                     const LinkageOptions& options) {
  switch (options.method) {
    case LinkageMethod::kGaussianKL: {
      if (options.measurement_sigma <= 0.0) {
        return Status::InvalidArgument("measurement_sigma must be positive");
      }
      double precision =
          1.0 / (options.measurement_sigma * options.measurement_sigma);
      TEXRHEO_ASSIGN_OR_RETURN(
          math::Gaussian wrapped,
          math::Gaussian::FromPrecision(
              feature, math::Matrix::Identity(feature.size(), precision)));
      return math::GaussianKL(wrapped, topic);
    }
    case LinkageMethod::kNegLogDensity:
      return -topic.LogPdf(feature);
    case LinkageMethod::kMahalanobis:
      return math::QuadraticForm(topic.precision(), feature, topic.mean());
    case LinkageMethod::kEuclidean: {
      math::Vector d = feature;
      d -= topic.mean();
      return d.Norm();
    }
  }
  return Status::Internal("unhandled linkage method");
}

}  // namespace

texrheo::StatusOr<std::vector<SettingLinkage>> LinkSettingsToTopics(
    const TopicEstimates& estimates,
    const std::vector<rheology::EmpiricalSetting>& settings,
    const recipe::FeatureConfig& feature_config,
    const LinkageOptions& options) {
  std::vector<SettingLinkage> out;
  out.reserve(settings.size());
  for (const auto& setting : settings) {
    math::Vector feature = recipe::ToFeature(setting.gel, feature_config);
    SettingLinkage link;
    link.setting_id = setting.id;
    link.divergence = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < estimates.gel_topics.size(); ++k) {
      TEXRHEO_ASSIGN_OR_RETURN(
          double div,
          Divergence(feature, estimates.gel_topics[k], options));
      link.divergence_by_topic.push_back(div);
      if (div < link.divergence) {
        link.divergence = div;
        link.topic = static_cast<int>(k);
      }
    }
    out.push_back(std::move(link));
  }
  return out;
}

texrheo::StatusOr<SettingLinkage> LinkConcentrationToTopic(
    const TopicEstimates& estimates, const math::Vector& gel_concentration,
    const recipe::FeatureConfig& feature_config,
    const LinkageOptions& options) {
  rheology::EmpiricalSetting setting;
  setting.id = -1;
  setting.gel = gel_concentration;
  TEXRHEO_ASSIGN_OR_RETURN(
      std::vector<SettingLinkage> links,
      LinkSettingsToTopics(estimates, {setting}, feature_config, options));
  return links.front();
}

}  // namespace texrheo::core
