#include "core/joint_topic_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <filesystem>
#include <limits>

#include "core/gmm_baseline.h"
#include "core/parallel_gibbs.h"
#include "math/running_stats.h"
#include "math/special.h"

namespace texrheo::core {
namespace {

using recipe::Document;

// Empirical diagonal Normal-Wishart prior: mu0 at the data mean, scale set
// so the prior-expected precision E[Lambda] = nu * S matches the empirical
// per-dimension precision.
math::NormalWishartParams AutoPrior(
    const std::vector<Document>& docs, bool use_gel, double beta,
    double nu_extra) {
  size_t dim = use_gel ? docs.front().gel_feature.size()
                       : docs.front().emulsion_feature.size();
  math::RunningMoments moments(dim);
  for (const Document& d : docs) {
    moments.Add(use_gel ? d.gel_feature : d.emulsion_feature);
  }
  math::Matrix cov = moments.Covariance();
  math::NormalWishartParams prior;
  prior.mu0 = moments.Mean();
  prior.beta = beta;
  prior.nu = static_cast<double>(dim) + nu_extra;
  prior.scale = math::Matrix(dim, dim);
  for (size_t i = 0; i < dim; ++i) {
    double var = std::max(cov(i, i), 1e-3);
    prior.scale(i, i) = 1.0 / (var * prior.nu);
  }
  return prior;
}

bool GaussianIsFinite(const math::Gaussian& g) {
  for (size_t i = 0; i < g.dim(); ++i) {
    if (!std::isfinite(g.mean()[i])) return false;
  }
  for (size_t r = 0; r < g.dim(); ++r) {
    for (size_t c = 0; c < g.dim(); ++c) {
      if (!std::isfinite(g.precision()(r, c))) return false;
    }
  }
  return true;
}

}  // namespace

JointTopicModel::JointTopicModel(const JointTopicModelConfig& config,
                                 const recipe::Dataset* dataset)
    : config_(config),
      docs_(dataset),
      initial_alpha_(config.alpha),
      rng_(config.seed) {}

texrheo::StatusOr<JointTopicModel> JointTopicModel::Create(
    const JointTopicModelConfig& config, const recipe::Dataset* dataset) {
  if (dataset == nullptr || dataset->documents.empty()) {
    return Status::InvalidArgument("joint topic model: empty dataset");
  }
  if (config.num_topics < 1) {
    return Status::InvalidArgument("joint topic model: num_topics < 1");
  }
  if (config.alpha <= 0.0 || config.gamma <= 0.0) {
    return Status::InvalidArgument(
        "joint topic model: alpha and gamma must be positive");
  }
  if (config.num_threads < 0) {
    return Status::InvalidArgument(
        "joint topic model: num_threads must be >= 0");
  }
  if (config.sparse_sampler &&
      (config.alias_rebuild_interval < 1 || config.mh_steps < 1)) {
    return Status::InvalidArgument(
        "joint topic model: sparse sampler requires "
        "alias_rebuild_interval >= 1 and mh_steps >= 1");
  }
  if (config.likelihood_interval < 1) {
    return Status::InvalidArgument(
        "joint topic model: likelihood_interval must be >= 1");
  }
  JointTopicModel model(config, dataset);
  model.vocab_size_ = dataset->term_vocab.size();
  TEXRHEO_RETURN_IF_ERROR(model.InitializePriors());
  TEXRHEO_RETURN_IF_ERROR(model.InitializeAssignments());
  return model;
}

texrheo::Status JointTopicModel::InitializePriors() {
  const auto& documents = docs_->documents;
  if (config_.auto_prior) {
    config_.gel_prior = AutoPrior(documents, /*use_gel=*/true,
                                  config_.prior_beta, config_.prior_nu_extra);
    config_.emulsion_prior =
        AutoPrior(documents, /*use_gel=*/false, config_.prior_beta,
                  config_.prior_nu_extra);
  }
  TEXRHEO_RETURN_IF_ERROR(config_.gel_prior.Validate());
  TEXRHEO_RETURN_IF_ERROR(config_.emulsion_prior.Validate());
  return Status::OK();
}

texrheo::Status JointTopicModel::InitializeAssignments() {
  const auto& documents = docs_->documents;
  size_t d_count = documents.size();
  int k_count = config_.num_topics;

  z_.resize(d_count);
  y_.resize(d_count);
  n_dk_.assign(d_count, std::vector<int>(k_count, 0));
  n_kv_.assign(static_cast<size_t>(k_count),
               std::vector<int>(vocab_size_, 0));
  n_vk_synced_ = false;
  n_k_.assign(static_cast<size_t>(k_count), 0);
  m_k_.assign(static_cast<size_t>(k_count), 0);

  for (size_t d = 0; d < d_count; ++d) {
    const Document& doc = documents[d];
    z_[d].resize(doc.term_ids.size());
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      int k = static_cast<int>(rng_.NextUint(static_cast<uint64_t>(k_count)));
      z_[d][n] = k;
      ++n_dk_[d][static_cast<size_t>(k)];
      ++n_kv_[static_cast<size_t>(k)][static_cast<size_t>(doc.term_ids[n])];
      ++n_k_[static_cast<size_t>(k)];
    }
    int k = static_cast<int>(rng_.NextUint(static_cast<uint64_t>(k_count)));
    y_[d] = k;
    ++m_k_[static_cast<size_t>(k)];
  }
  if (config_.gmm_init) {
    // Replace the uniform y initialization with GMM hard assignments on
    // the gel features (burn-in accelerator; see config comment).
    std::vector<math::Vector> points;
    points.reserve(d_count);
    for (const auto& doc : documents) points.push_back(doc.gel_feature);
    GmmConfig gmm_config;
    gmm_config.num_components = k_count;
    gmm_config.seed = config_.seed + 1;
    auto gmm = GaussianMixture::Fit(gmm_config, points);
    if (gmm.ok()) {
      std::vector<int> assignments = gmm->HardAssignments(points);
      m_k_.assign(static_cast<size_t>(k_count), 0);
      for (size_t d = 0; d < d_count; ++d) {
        y_[d] = assignments[d];
        ++m_k_[static_cast<size_t>(y_[d])];
      }
    }
  }
  if (config_.sparse_sampler) RebuildActiveLists();
  return ResampleGaussians();
}

texrheo::Status JointTopicModel::ResampleGaussians() {
  const auto& documents = docs_->documents;
  size_t gel_dim = documents.front().gel_feature.size();
  size_t emu_dim = documents.front().emulsion_feature.size();

  std::vector<math::Gaussian> new_gel, new_emu;
  new_gel.reserve(static_cast<size_t>(config_.num_topics));
  new_emu.reserve(static_cast<size_t>(config_.num_topics));

  for (int k = 0; k < config_.num_topics; ++k) {
    math::RunningMoments gel_moments(gel_dim);
    math::RunningMoments emu_moments(emu_dim);
    for (size_t d = 0; d < documents.size(); ++d) {
      if (y_[d] != k) continue;
      gel_moments.Add(documents[d].gel_feature);
      emu_moments.Add(documents[d].emulsion_feature);
    }
    math::NormalWishartParams gel_post = config_.gel_prior.Posterior(
        gel_moments.count(), gel_moments.Mean(), gel_moments.Scatter());
    math::NormalWishartParams emu_post = config_.emulsion_prior.Posterior(
        emu_moments.count(), emu_moments.Mean(), emu_moments.Scatter());
    TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian g,
                             math::NormalWishartSample(rng_, gel_post));
    TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian e,
                             math::NormalWishartSample(rng_, emu_post));
    new_gel.push_back(std::move(g));
    new_emu.push_back(std::move(e));
  }
  gel_topics_ = std::move(new_gel);
  emulsion_topics_ = std::move(new_emu);
  RebuildGaussianSoA();
  return Status::OK();
}

void JointTopicModel::RebuildGaussianSoA() {
  gel_soa_ = TopicGaussiansSoA::FromGaussians(gel_topics_);
  emu_soa_ = TopicGaussiansSoA::FromGaussians(emulsion_topics_);
}

void JointTopicModel::RebuildActiveLists() {
  active_.resize(n_dk_.size());
  for (size_t d = 0; d < n_dk_.size(); ++d) active_[d].Reset(n_dk_[d]);
}

void JointTopicModel::MaybeRebuildStaleBank() {
  if (!config_.sparse_sampler) return;
  if (stale_.built() && completed_sweeps_ - stale_.last_rebuild_sweep() <
                            config_.alias_rebuild_interval) {
    return;
  }
  stale_.Rebuild(n_kv_, n_k_, config_.gamma,
                 config_.gamma * static_cast<double>(vocab_size_),
                 completed_sweeps_);
  ++sweep_alias_rebuilds_;
}

void JointTopicModel::SampleZ() {
  const auto& documents = docs_->documents;
  int k_count = config_.num_topics;
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  std::vector<double> weights(static_cast<size_t>(k_count));

  for (size_t d = 0; d < documents.size(); ++d) {
    const Document& doc = documents[d];
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t v = static_cast<size_t>(doc.term_ids[n]);
      int old_k = z_[d][n];
      --n_dk_[d][static_cast<size_t>(old_k)];
      --n_kv_[static_cast<size_t>(old_k)][v];
      --n_k_[static_cast<size_t>(old_k)];
      // Paper eq. (2): (N_dk^{-dn} + M_dk + alpha) *
      //                (N_kw^{-dn} + gamma) / (N_k^{-dn} + gamma V).
      for (int k = 0; k < k_count; ++k) {
        size_t ks = static_cast<size_t>(k);
        double doc_part = static_cast<double>(n_dk_[d][ks]) +
                          (y_[d] == k ? 1.0 : 0.0) + config_.alpha;
        double word_part =
            (static_cast<double>(n_kv_[ks][v]) + config_.gamma) /
            (static_cast<double>(n_k_[ks]) + gamma_v);
        weights[ks] = doc_part * word_part;
      }
      int new_k = static_cast<int>(rng_.NextCategorical(weights));
      z_[d][n] = new_k;
      ++n_dk_[d][static_cast<size_t>(new_k)];
      ++n_kv_[static_cast<size_t>(new_k)][v];
      ++n_k_[static_cast<size_t>(new_k)];
    }
  }
}

int JointTopicModel::SparseTokenDraw(
    size_t d, size_t v, int old_k, Rng& rng,
    const std::vector<std::vector<int>>* delta_n_kv, const int* term_counts,
    const std::vector<double>& inv_denom, double inv_denom_removed,
    std::vector<double>& sparse_w, uint64_t& proposals, uint64_t& accepts,
    uint64_t& sparse_hits, SparseProposalDebug* debug) const {
  const double alpha = config_.alpha;
  const double gamma = config_.gamma;
  const ActiveTopicList& active = active_[d];
  const std::vector<int>& topics = active.topics();
  const std::vector<int>& doc_counts = n_dk_[d];
  const int y_d = y_[d];
  // Exact smoothed term weight of topic k under the collapsed-Gibbs
  // "token removed" state: (n_kv^- + gamma) / (n_k^- + gamma V). The
  // caller passes counts with the token still included; the removal is
  // applied here as a -1 on old_k's term count plus the caller-computed
  // reciprocal of old_k's decremented topic total, so topics that keep
  // their token need no count writes at all.
  auto term_weight = [&](int k) {
    size_t ks = static_cast<size_t>(k);
    int nkv = term_counts != nullptr ? term_counts[ks] : n_kv_[ks][v];
    if (delta_n_kv != nullptr) nkv += (*delta_n_kv)[ks][v];
    if (k == old_k) {
      return (static_cast<double>(nkv) - 1.0 + gamma) * inv_denom_removed;
    }
    return (static_cast<double>(nkv) + gamma) * inv_denom[ks];
  };
  // Document-topic coefficient under the removed state:
  // n_dk^- + I[y_d = k].
  auto doc_coef = [&](int k) {
    return static_cast<double>(doc_counts[static_cast<size_t>(k)]) -
           (k == old_k ? 1.0 : 0.0) + (k == y_d ? 1.0 : 0.0);
  };

  // Sparse bucket: s(k) = (n_dk^- + I[y_d = k]) * w(k) over the document's
  // active topics, plus one extra slot for y_d when its *physical* count is
  // zero — membership in the active list is keyed on physical counts, so
  // that is exactly when its indicator mass is invisible to the loop below.
  // A physical count of zero implies y_d != old_k (old_k's physical count
  // still includes this token), so the removed state never matters for the
  // gate. In particular, when y_d == old_k and this is its last token, the
  // active-list slot already carries the indicator (coefficient 0 - 1 + 1 =
  // 1); gating on the removed count would add a second slot for the same
  // topic and give it proposal mass the acceptance ratio's per-topic mass
  // (coef * w + alpha * q, counted once) does not see — violating detailed
  // balance exactly in that corner. For old_k != y_d on its last token the
  // active slot has coefficient zero and is inert, as intended.
  double sparse_total = 0.0;
  const size_t active_count = topics.size();
  for (size_t i = 0; i < active_count; ++i) {
    const int k = topics[i];
    const double w = doc_coef(k) * term_weight(k);
    sparse_w[i] = w;
    sparse_total += w;
  }
  size_t bucket_count = active_count;
  int extra_k = -1;
  if (doc_counts[static_cast<size_t>(y_d)] == 0) {
    extra_k = y_d;
    const double w = term_weight(y_d);
    sparse_w[bucket_count++] = w;
    sparse_total += w;
  }
  // Dense bucket: alpha * q_stale(k, v) served by the alias table; only its
  // total mass is needed up front.
  const double dense_total = alpha * stale_.q_total(v);

  if (debug != nullptr) {
    // Test seam: report the proposal mass each topic actually receives from
    // the buckets just built, next to the per-topic mass the acceptance
    // ratio recomputes (coef * w + alpha * q). Detailed balance of the
    // independence-MH step requires the two to be identical arrays. Draws
    // no RNG and returns before any MH step.
    const size_t k_count = static_cast<size_t>(config_.num_topics);
    debug->bucket_mass.assign(k_count, 0.0);
    debug->ratio_mass.assign(k_count, 0.0);
    for (size_t i = 0; i < active_count; ++i) {
      debug->bucket_mass[static_cast<size_t>(topics[i])] += sparse_w[i];
    }
    if (extra_k >= 0) {
      debug->bucket_mass[static_cast<size_t>(extra_k)] +=
          sparse_w[active_count];
    }
    for (size_t k = 0; k < k_count; ++k) {
      const int ki = static_cast<int>(k);
      debug->bucket_mass[k] += alpha * stale_.q(v, k);
      debug->ratio_mass[k] =
          doc_coef(ki) * term_weight(ki) + alpha * stale_.q(v, k);
    }
    debug->last_token_of_self_topic =
        old_k == y_d && doc_counts[static_cast<size_t>(old_k)] == 1;
    return old_k;
  }

  // Independence-MH: the proposal prop(k) = s(k) + alpha q_stale(k, v) is
  // fixed for the whole token (counts minus the token do not change between
  // steps), so each accept/reject targets the exact eq.-2 conditional
  // p(k) = (n_dk^- + I[y_d = k] + alpha) * w(k) with ratio
  // (p(t) prop(cur)) / (p(cur) prop(t)); the shared normalizer cancels.
  int cur = old_k;
  for (int step = 0; step < config_.mh_steps; ++step) {
    ++proposals;
    const double u = rng.NextDouble() * (sparse_total + dense_total);
    int prop;
    if (u < sparse_total) {
      ++sparse_hits;
      size_t i = 0;
      double acc = sparse_w[0];
      while (u > acc && i + 1 < bucket_count) {
        ++i;
        acc += sparse_w[i];
      }
      prop = i < active_count ? topics[i] : extra_k;
    } else {
      prop = stale_.SampleStale(v, rng);
    }
    if (prop == cur) {
      ++accepts;
      continue;
    }
    const size_t ps = static_cast<size_t>(prop);
    const size_t cs = static_cast<size_t>(cur);
    const double w_prop = term_weight(prop);
    const double w_cur = term_weight(cur);
    const double coef_prop = doc_coef(prop);
    const double coef_cur = doc_coef(cur);
    const double p_prop = (coef_prop + alpha) * w_prop;
    const double p_cur = (coef_cur + alpha) * w_cur;
    const double mass_prop = coef_prop * w_prop + alpha * stale_.q(v, ps);
    const double mass_cur = coef_cur * w_cur + alpha * stale_.q(v, cs);
    const double ratio = (p_prop * mass_cur) / (p_cur * mass_prop);
    if (ratio >= 1.0 || rng.NextDouble() < ratio) {
      cur = prop;
      ++accepts;
    }
  }
  return cur;
}

texrheo::StatusOr<JointTopicModel::SparseProposalDebug>
JointTopicModel::DebugSparseProposal(size_t d, size_t n) {
  if (!config_.sparse_sampler) {
    return texrheo::Status::FailedPrecondition(
        "DebugSparseProposal requires config.sparse_sampler");
  }
  if (d >= z_.size() || n >= z_[d].size()) {
    return texrheo::Status::OutOfRange("token index out of range");
  }
  MaybeRebuildStaleBank();
  const double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  EffectiveInvDenominators(n_k_, nullptr, gamma_v, inv_denom_);
  const size_t v = static_cast<size_t>(docs_->documents[d].term_ids[n]);
  const int old_k = z_[d][n];
  const double inv_removed =
      1.0 /
      (static_cast<double>(n_k_[static_cast<size_t>(old_k)]) - 1.0 + gamma_v);
  std::vector<double> sparse_w(static_cast<size_t>(config_.num_topics) + 1);
  SparseProposalDebug debug;
  uint64_t proposals = 0;
  uint64_t accepts = 0;
  uint64_t hits = 0;
  SparseTokenDraw(d, v, old_k, rng_, nullptr, /*term_counts=*/nullptr,
                  inv_denom_, inv_removed, sparse_w, proposals, accepts, hits,
                  &debug);
  return debug;
}

void JointTopicModel::SampleZSparse() {
  const auto& documents = docs_->documents;
  const size_t k_count = static_cast<size_t>(config_.num_topics);
  const double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  EffectiveInvDenominators(n_k_, nullptr, gamma_v, inv_denom_);
  std::vector<double> sparse_w(k_count + 1);
  if (!n_vk_synced_) {
    n_vk_.assign(vocab_size_ * k_count, 0);
    for (size_t k = 0; k < k_count; ++k) {
      const std::vector<int>& row = n_kv_[k];
      for (size_t v = 0; v < vocab_size_; ++v) {
        n_vk_[v * k_count + k] = row[v];
      }
    }
    n_vk_synced_ = true;
  }

  for (size_t d = 0; d < documents.size(); ++d) {
    const Document& doc = documents[d];
    ActiveTopicList& active = active_[d];
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      const size_t v = static_cast<size_t>(doc.term_ids[n]);
      // Hide the next token's lookups (its q slice and its term-major
      // count slice) behind this token's work. Pure cache hints: the draw
      // itself is untouched.
      if (n + 1 < doc.term_ids.size()) {
        const size_t vn = static_cast<size_t>(doc.term_ids[n + 1]);
        stale_.PrefetchTerm(vn);
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&n_vk_[vn * k_count]);
        __builtin_prefetch(&n_vk_[vn * k_count + k_count - 1]);
#endif
      }
      const int old_k = z_[d][n];
      const size_t ok = static_cast<size_t>(old_k);
      int* term_counts = &n_vk_[v * k_count];
      // Lazy-update discipline: the counts stay physically intact and the
      // draw sees the collapsed-Gibbs "token removed" state through the
      // old_k override inside SparseTokenDraw. Most tokens keep their
      // topic after burn-in, and for those this turns six scattered count
      // writes (which dirty the multi-megabyte n_kv / n_vk matrices every
      // sweep) into zero memory traffic.
      const double inv_removed =
          1.0 / (static_cast<double>(n_k_[ok]) - 1.0 + gamma_v);
      const int new_k =
          SparseTokenDraw(d, v, old_k, rng_, nullptr, term_counts,
                          inv_denom_, inv_removed, sparse_w,
                          sweep_mh_proposals_, sweep_mh_accepts_,
                          sweep_sparse_hits_);
      if (new_k != old_k) {
        const size_t nk = static_cast<size_t>(new_k);
        --n_dk_[d][ok];
        if (n_dk_[d][ok] == 0) active.OnDecrement(old_k);
        --n_kv_[ok][v];
        --term_counts[ok];
        --n_k_[ok];
        inv_denom_[ok] = 1.0 / (static_cast<double>(n_k_[ok]) + gamma_v);
        z_[d][n] = new_k;
        ++n_dk_[d][nk];
        if (n_dk_[d][nk] == 1) active.OnIncrement(new_k);
        ++n_kv_[nk][v];
        ++term_counts[nk];
        ++n_k_[nk];
        inv_denom_[nk] = 1.0 / (static_cast<double>(n_k_[nk]) + gamma_v);
      }
    }
  }
}

void JointTopicModel::SampleZSparseParallel() {
  const auto& documents = docs_->documents;
  const int k_count = config_.num_topics;
  const double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  const int num_shards = static_cast<int>(shards_.size());
  std::vector<TopicCountDelta> deltas(
      static_cast<size_t>(num_shards), TopicCountDelta(k_count, vocab_size_));
  std::vector<uint64_t> proposals(static_cast<size_t>(num_shards), 0);
  std::vector<uint64_t> accepts(static_cast<size_t>(num_shards), 0);
  std::vector<uint64_t> hits(static_cast<size_t>(num_shards), 0);

  // Same AD-LDA discipline as SampleZParallel: frozen globals + per-shard
  // deltas. The stale bank is read-only for the whole sweep (rebuilds only
  // happen serially between sweeps) and active lists / n_dk_ rows belong to
  // the shard owning the document, so no synchronization is needed.
  pool_->ParallelFor(num_shards, [&](int s) {
    const size_t lo = shards_[static_cast<size_t>(s)].first;
    const size_t hi = shards_[static_cast<size_t>(s)].second;
    Rng& rng = shard_rngs_[static_cast<size_t>(s)];
    TopicCountDelta& delta = deltas[static_cast<size_t>(s)];
    std::vector<double> inv_denom;
    EffectiveInvDenominators(n_k_, &delta, gamma_v, inv_denom);
    std::vector<double> sparse_w(static_cast<size_t>(k_count) + 1);
    for (size_t d = lo; d < hi; ++d) {
      const Document& doc = documents[d];
      ActiveTopicList& active = active_[d];
      for (size_t n = 0; n < doc.term_ids.size(); ++n) {
        const size_t v = static_cast<size_t>(doc.term_ids[n]);
        // Same one-token-ahead cache hints as the serial sweep.
        if (n + 1 < doc.term_ids.size()) {
          const size_t vn = static_cast<size_t>(doc.term_ids[n + 1]);
          stale_.PrefetchTerm(vn);
#if defined(__GNUC__) || defined(__clang__)
          for (const int k : active.topics()) {
            __builtin_prefetch(&n_kv_[static_cast<size_t>(k)][vn]);
          }
#endif
        }
        const int old_k = z_[d][n];
        const size_t ok = static_cast<size_t>(old_k);
        // Same lazy-update discipline as the serial sweep: shard-local
        // deltas are only touched when the token actually moves.
        const double inv_removed =
            1.0 / (static_cast<double>(n_k_[ok] + delta.n_k[ok]) - 1.0 +
                   gamma_v);
        const int new_k = SparseTokenDraw(
            d, v, old_k, rng, &delta.n_kv, /*term_counts=*/nullptr,
            inv_denom, inv_removed, sparse_w,
            proposals[static_cast<size_t>(s)],
            accepts[static_cast<size_t>(s)], hits[static_cast<size_t>(s)]);
        if (new_k != old_k) {
          const size_t nk = static_cast<size_t>(new_k);
          --n_dk_[d][ok];
          if (n_dk_[d][ok] == 0) active.OnDecrement(old_k);
          --delta.n_kv[ok][v];
          --delta.n_k[ok];
          inv_denom[ok] =
              1.0 / (static_cast<double>(n_k_[ok] + delta.n_k[ok]) + gamma_v);
          z_[d][n] = new_k;
          ++n_dk_[d][nk];
          if (n_dk_[d][nk] == 1) active.OnIncrement(new_k);
          ++delta.n_kv[nk][v];
          ++delta.n_k[nk];
          inv_denom[nk] =
              1.0 / (static_cast<double>(n_k_[nk] + delta.n_k[nk]) + gamma_v);
        }
      }
    }
  });
  MergeTopicCountDeltas(deltas, n_kv_, n_k_);
  n_vk_synced_ = false;
  for (int s = 0; s < num_shards; ++s) {
    sweep_mh_proposals_ += proposals[static_cast<size_t>(s)];
    sweep_mh_accepts_ += accepts[static_cast<size_t>(s)];
    sweep_sparse_hits_ += hits[static_cast<size_t>(s)];
  }
}

texrheo::Status JointTopicModel::SampleY() {
  const auto& documents = docs_->documents;
  int k_count = config_.num_topics;
  std::vector<double> log_w(static_cast<size_t>(k_count));
  std::vector<double> weights(static_cast<size_t>(k_count));
  std::vector<double> gel_lp(static_cast<size_t>(k_count));
  std::vector<double> emu_lp(static_cast<size_t>(k_count));
  TopicGaussiansSoA::Scratch scratch;

  for (size_t d = 0; d < documents.size(); ++d) {
    const Document& doc = documents[d];
    --m_k_[static_cast<size_t>(y_[d])];
    // Paper eq. (3): (N_dk + M_dk^{-d} + alpha_k) x N(g_d | mu_k, Lambda_k)
    // (x N(e_d | m_k, L_k) per the graphical model). The doc's own vector
    // is excluded, so M_dk^{-d} = 0. Densities come from the batched SoA
    // evaluator, which is bit-identical to per-topic Gaussian::LogPdf.
    gel_soa_.BatchLogPdf(doc.gel_feature, scratch, gel_lp.data());
    if (config_.use_emulsion_likelihood) {
      emu_soa_.BatchLogPdf(doc.emulsion_feature, scratch, emu_lp.data());
    }
    for (int k = 0; k < k_count; ++k) {
      size_t ks = static_cast<size_t>(k);
      double lw =
          std::log(static_cast<double>(n_dk_[d][ks]) + config_.alpha);
      lw += gel_lp[ks];
      if (config_.use_emulsion_likelihood) {
        lw += emu_lp[ks];
      }
      log_w[ks] = lw;
    }
    double norm = math::LogSumExp(log_w.data(), log_w.size());
    if (!std::isfinite(norm)) {
      ++m_k_[static_cast<size_t>(y_[d])];  // State stays consistent.
      return Status::Internal(
          "numerical health: non-finite topic weights for document " +
          std::to_string(d));
    }
    for (int k = 0; k < k_count; ++k) {
      weights[static_cast<size_t>(k)] =
          std::exp(log_w[static_cast<size_t>(k)] - norm);
    }
    int new_k = static_cast<int>(rng_.NextCategorical(weights));
    y_[d] = new_k;
    ++m_k_[static_cast<size_t>(new_k)];
  }
  return Status::OK();
}

void JointTopicModel::EnsureParallelEngine() {
  if (pool_ != nullptr) return;
  resolved_threads_ = ResolveNumThreads(config_.num_threads);
  pool_ = std::make_unique<ThreadPool>(resolved_threads_);
  shards_ = PlanShards(docs_->documents, resolved_threads_);
  shard_rngs_.clear();
  shard_rngs_.reserve(shards_.size());
  // Stream 0 is implicitly the master rng_ (init + Gaussian redraws); the
  // shards take streams 1..S so their draws never collide with it.
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_rngs_.push_back(Rng::ForStream(config_.seed, s + 1));
  }
}

void JointTopicModel::SampleZParallel() {
  const auto& documents = docs_->documents;
  int k_count = config_.num_topics;
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  int num_shards = static_cast<int>(shards_.size());
  std::vector<TopicCountDelta> deltas(
      static_cast<size_t>(num_shards), TopicCountDelta(k_count, vocab_size_));

  // AD-LDA sweep: every worker reads the frozen global n_kv_/n_k_ plus its
  // own delta; n_dk_/z_ rows are touched only by the shard owning the
  // document, so the sweep is race-free without any locking.
  pool_->ParallelFor(num_shards, [&](int s) {
    size_t lo = shards_[static_cast<size_t>(s)].first;
    size_t hi = shards_[static_cast<size_t>(s)].second;
    Rng& rng = shard_rngs_[static_cast<size_t>(s)];
    TopicCountDelta& delta = deltas[static_cast<size_t>(s)];
    std::vector<double> weights(static_cast<size_t>(k_count));
    for (size_t d = lo; d < hi; ++d) {
      const Document& doc = documents[d];
      for (size_t n = 0; n < doc.term_ids.size(); ++n) {
        size_t v = static_cast<size_t>(doc.term_ids[n]);
        int old_k = z_[d][n];
        --n_dk_[d][static_cast<size_t>(old_k)];
        --delta.n_kv[static_cast<size_t>(old_k)][v];
        --delta.n_k[static_cast<size_t>(old_k)];
        for (int k = 0; k < k_count; ++k) {
          size_t ks = static_cast<size_t>(k);
          double doc_part = static_cast<double>(n_dk_[d][ks]) +
                            (y_[d] == k ? 1.0 : 0.0) + config_.alpha;
          double word_part =
              (static_cast<double>(n_kv_[ks][v] + delta.n_kv[ks][v]) +
               config_.gamma) /
              (static_cast<double>(n_k_[ks] + delta.n_k[ks]) + gamma_v);
          weights[ks] = doc_part * word_part;
        }
        int new_k = static_cast<int>(rng.NextCategorical(weights));
        z_[d][n] = new_k;
        ++n_dk_[d][static_cast<size_t>(new_k)];
        ++delta.n_kv[static_cast<size_t>(new_k)][v];
        ++delta.n_k[static_cast<size_t>(new_k)];
      }
    }
  });
  MergeTopicCountDeltas(deltas, n_kv_, n_k_);
}

void JointTopicModel::SampleYParallel() {
  // Unlike z, the y conditionals (eq. 3) depend only on the document's own
  // counts and the frozen Gaussians, so this phase parallelizes *exactly*:
  // every worker samples the same conditionals a serial scan would.
  const auto& documents = docs_->documents;
  int k_count = config_.num_topics;
  pool_->ParallelFor(static_cast<int>(shards_.size()), [&](int s) {
    size_t lo = shards_[static_cast<size_t>(s)].first;
    size_t hi = shards_[static_cast<size_t>(s)].second;
    Rng& rng = shard_rngs_[static_cast<size_t>(s)];
    std::vector<double> log_w(static_cast<size_t>(k_count));
    std::vector<double> weights(static_cast<size_t>(k_count));
    std::vector<double> gel_lp(static_cast<size_t>(k_count));
    std::vector<double> emu_lp(static_cast<size_t>(k_count));
    TopicGaussiansSoA::Scratch scratch;
    for (size_t d = lo; d < hi; ++d) {
      const Document& doc = documents[d];
      gel_soa_.BatchLogPdf(doc.gel_feature, scratch, gel_lp.data());
      if (config_.use_emulsion_likelihood) {
        emu_soa_.BatchLogPdf(doc.emulsion_feature, scratch, emu_lp.data());
      }
      for (int k = 0; k < k_count; ++k) {
        size_t ks = static_cast<size_t>(k);
        double lw =
            std::log(static_cast<double>(n_dk_[d][ks]) + config_.alpha);
        lw += gel_lp[ks];
        if (config_.use_emulsion_likelihood) {
          lw += emu_lp[ks];
        }
        log_w[ks] = lw;
      }
      double norm = math::LogSumExp(log_w.data(), log_w.size());
      if (!std::isfinite(norm)) {
        // Poisoned weights: keep y_[d]; the post-sweep health guard turns
        // this into a Status before anything is checkpointed.
        continue;
      }
      for (int k = 0; k < k_count; ++k) {
        weights[static_cast<size_t>(k)] =
            std::exp(log_w[static_cast<size_t>(k)] - norm);
      }
      y_[d] = static_cast<int>(rng.NextCategorical(weights));
    }
  });
  m_k_.assign(static_cast<size_t>(k_count), 0);
  for (size_t d = 0; d < documents.size(); ++d) {
    ++m_k_[static_cast<size_t>(y_[d])];
  }
}

texrheo::Status JointTopicModel::ResyncWithData() {
  const auto& documents = docs_->documents;
  if (documents.size() != z_.size()) {
    return Status::InvalidArgument("resync: document count changed");
  }
  for (auto& row : n_kv_) std::fill(row.begin(), row.end(), 0);
  std::fill(n_k_.begin(), n_k_.end(), 0);
  for (size_t d = 0; d < documents.size(); ++d) {
    const Document& doc = documents[d];
    if (doc.term_ids.size() != z_[d].size()) {
      return Status::InvalidArgument("resync: token count changed");
    }
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      if (doc.term_ids[n] < 0 ||
          static_cast<size_t>(doc.term_ids[n]) >= vocab_size_) {
        return Status::OutOfRange("resync: term id outside vocab");
      }
      ++n_kv_[static_cast<size_t>(z_[d][n])]
             [static_cast<size_t>(doc.term_ids[n])];
      ++n_k_[static_cast<size_t>(z_[d][n])];
    }
  }
  n_vk_synced_ = false;
  // The instantiated Gaussians are conditioned on the old features; redraw
  // them so the next sweep's y conditionals see p(mu, Lambda | y, new data).
  return ResampleGaussians();
}

void JointTopicModel::SetObservability(obs::MetricsRegistry* metrics,
                                       obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  if (metrics_ == nullptr) {
    obs_sweeps_ = obs_checkpoints_ = nullptr;
    obs_likelihood_ = obs_alpha_ = obs_alpha_drift_ = nullptr;
    obs_alias_rebuilds_ = obs_sparse_hits_ = nullptr;
    obs_mh_accept_ = nullptr;
    obs_sweep_us_ = obs_sample_us_ = obs_gaussian_us_ = nullptr;
    return;
  }
  obs_sweeps_ = metrics_->RegisterCounter("train.sweeps_completed");
  obs_checkpoints_ = metrics_->RegisterCounter("train.checkpoints_written");
  obs_likelihood_ = metrics_->RegisterGauge("train.log_likelihood");
  obs_alpha_ = metrics_->RegisterGauge("train.alpha");
  obs_alpha_drift_ = metrics_->RegisterGauge("train.alpha_drift");
  obs_alias_rebuilds_ = metrics_->RegisterCounter("train.alias_rebuilds");
  obs_sparse_hits_ = metrics_->RegisterCounter("train.sparse_bucket_hits");
  obs_mh_accept_ = metrics_->RegisterGauge("train.mh_accept_rate");
  obs_sweep_us_ = metrics_->RegisterHistogram("train.sweep_us");
  obs_sample_us_ = metrics_->RegisterHistogram("train.shard_sample_us");
  obs_gaussian_us_ = metrics_->RegisterHistogram("train.gaussian_update_us");
}

texrheo::Status JointTopicModel::RunSweeps(int n) {
  bool parallel = false;
  if (config_.num_threads != 1) {
    EnsureParallelEngine();
    parallel = resolved_threads_ > 1;
  }
  // Observability never touches the sampler: when detached, the sweep loop
  // takes zero clock reads; when attached, it adds a handful of clock reads
  // and relaxed increments per sweep (benchmarked < 2% in
  // BM_InstrumentedSweep) and no RNG draws either way.
  const bool observed = metrics_ != nullptr || tracer_ != nullptr;
  const obs::Clock* clock =
      tracer_ != nullptr ? &tracer_->clock() : &obs::Clock::Steady();
  for (int sweep = 0; sweep < n; ++sweep) {
    obs::TraceSpan sweep_span;
    if (tracer_ != nullptr) sweep_span = tracer_->StartSpan("sweep");
    // The tallies feed the sparse-sampler metrics; they are plain integer
    // updates with no RNG draws, so maintaining them unconditionally keeps
    // instrumentation trajectory-inert.
    sweep_mh_proposals_ = sweep_mh_accepts_ = 0;
    sweep_sparse_hits_ = sweep_alias_rebuilds_ = 0;
    MaybeRebuildStaleBank();
    const int64_t t_start = observed ? clock->NowMicros() : 0;
    {
      obs::TraceSpan sample_span;
      if (tracer_ != nullptr) sample_span = sweep_span.StartChild("shard_sample");
      if (parallel) {
        if (config_.sparse_sampler) {
          SampleZSparseParallel();
        } else {
          SampleZParallel();
        }
        SampleYParallel();
      } else {
        if (config_.sparse_sampler) {
          SampleZSparse();
        } else {
          SampleZ();
        }
        TEXRHEO_RETURN_IF_ERROR(SampleY());
      }
    }
    const int64_t t_sampled = observed ? clock->NowMicros() : 0;
    {
      obs::TraceSpan gaussian_span;
      if (tracer_ != nullptr) {
        gaussian_span = sweep_span.StartChild("gaussian_update");
      }
      TEXRHEO_RETURN_IF_ERROR(ResampleGaussians());
    }
    const int64_t t_gaussians = observed ? clock->NowMicros() : 0;
    ++completed_sweeps_;
    if (config_.optimize_alpha &&
        completed_sweeps_ > config_.burn_in_sweeps &&
        completed_sweeps_ % config_.alpha_update_interval == 0) {
      UpdateAlpha();
    }
    // Health guard runs before the checkpoint hook so a numerically
    // poisoned state is never persisted.
    TEXRHEO_RETURN_IF_ERROR(CheckNumericalHealth());
    // The likelihood pass reads state without touching the RNG, so thinning
    // it leaves the chain trajectory bit-identical.
    const bool trace_due =
        completed_sweeps_ % config_.likelihood_interval == 0;
    double ll = 0.0;
    if (trace_due) {
      ll = LogJointLikelihood();
      if (!std::isfinite(ll)) {
        return Status::Internal(
            "numerical health: log joint likelihood became non-finite at "
            "sweep " + std::to_string(completed_sweeps_));
      }
      likelihood_trace_.push_back(ll);
    }
    if (metrics_ != nullptr) {
      obs_sweeps_->Increment();
      if (trace_due) obs_likelihood_->Set(ll);
      obs_alpha_->Set(config_.alpha);
      obs_alpha_drift_->Set(config_.alpha - initial_alpha_);
      if (config_.sparse_sampler) {
        if (sweep_alias_rebuilds_ > 0) {
          obs_alias_rebuilds_->Increment(sweep_alias_rebuilds_);
        }
        if (sweep_sparse_hits_ > 0) {
          obs_sparse_hits_->Increment(sweep_sparse_hits_);
        }
        if (sweep_mh_proposals_ > 0) {
          obs_mh_accept_->Set(static_cast<double>(sweep_mh_accepts_) /
                              static_cast<double>(sweep_mh_proposals_));
        }
      }
      obs_sample_us_->Record(t_sampled - t_start);
      obs_gaussian_us_->Record(t_gaussians - t_sampled);
      obs_sweep_us_->Record(clock->NowMicros() - t_start);
    }
    TEXRHEO_RETURN_IF_ERROR(MaybeWriteCheckpoint());
  }
  return Status::OK();
}

texrheo::Status JointTopicModel::CheckNumericalHealth() const {
  if (!std::isfinite(config_.alpha) || config_.alpha <= 0.0) {
    return Status::Internal(
        "numerical health: alpha is no longer positive and finite");
  }
  for (size_t k = 0; k < gel_topics_.size(); ++k) {
    if (!GaussianIsFinite(gel_topics_[k]) ||
        !GaussianIsFinite(emulsion_topics_[k])) {
      return Status::Internal(
          "numerical health: non-finite Gaussian parameters in topic " +
          std::to_string(k));
    }
  }
  return Status::OK();
}

CheckpointFingerprint JointTopicModel::MakeFingerprint() const {
  CheckpointFingerprint fp;
  fp.sampler = SamplerKind::kJoint;
  fp.num_topics = config_.num_topics;
  fp.alpha = initial_alpha_;
  fp.gamma = config_.gamma;
  fp.seed = config_.seed;
  fp.num_threads = config_.num_threads;
  fp.optimize_alpha = config_.optimize_alpha;
  fp.use_emulsion_likelihood = config_.use_emulsion_likelihood;
  fp.gmm_init = config_.gmm_init;
  fp.sparse_sampler = config_.sparse_sampler;
  if (config_.sparse_sampler) {
    // The knobs shape the RNG consumption pattern, so they pin the resume;
    // on the dense path they are inert and stay at the struct defaults.
    fp.alias_rebuild_interval = config_.alias_rebuild_interval;
    fp.mh_steps = config_.mh_steps;
  }
  fp.num_documents = docs_->documents.size();
  fp.vocab_size = vocab_size_;
  return fp;
}

CheckpointState JointTopicModel::CaptureCheckpoint() const {
  CheckpointState state;
  state.fingerprint = MakeFingerprint();
  state.completed_sweeps = completed_sweeps_;
  state.current_alpha = config_.alpha;
  state.master_rng = rng_.SaveState();
  state.shard_rngs.reserve(shard_rngs_.size());
  for (const Rng& r : shard_rngs_) state.shard_rngs.push_back(r.SaveState());
  state.y = ToCheckpointInts(y_);
  state.z = ToCheckpointRows(z_);
  state.n_dk = ToCheckpointRows(n_dk_);
  state.n_kv = ToCheckpointRows(n_kv_);
  state.n_k = ToCheckpointInts(n_k_);
  state.m_k = ToCheckpointInts(m_k_);
  state.gel_topics = gel_topics_;
  state.emulsion_topics = emulsion_topics_;
  state.likelihood_trace = likelihood_trace_;
  if (config_.sparse_sampler && stale_.built()) {
    state.last_alias_rebuild_sweep = stale_.last_rebuild_sweep();
    state.stale_n_kv = ToCheckpointRows(stale_.stale_n_kv());
    state.stale_n_k = ToCheckpointInts(stale_.stale_n_k());
  }
  return state;
}

texrheo::Status JointTopicModel::RestoreFromCheckpoint(
    const CheckpointState& state) {
  CheckpointFingerprint expected = MakeFingerprint();
  if (!(state.fingerprint == expected)) {
    return Status::FailedPrecondition(
        "checkpoint fingerprint mismatch\n  checkpoint: " +
        state.fingerprint.ToString() + "\n  model:      " +
        expected.ToString());
  }
  TEXRHEO_RETURN_IF_ERROR(ValidateCheckpointAgainstDataset(state, *docs_));
  size_t k_count = static_cast<size_t>(config_.num_topics);
  if (state.gel_topics.size() != k_count ||
      state.emulsion_topics.size() != k_count) {
    return Status::InvalidArgument(
        "checkpoint is missing instantiated topic Gaussians");
  }
  if (config_.sparse_sampler && !state.stale_n_k.empty()) {
    if (state.stale_n_kv.size() != k_count ||
        state.stale_n_k.size() != k_count) {
      return Status::InvalidArgument(
          "checkpoint stale alias snapshot has the wrong topic count");
    }
    for (const auto& row : state.stale_n_kv) {
      if (row.size() != vocab_size_) {
        return Status::InvalidArgument(
            "checkpoint stale alias snapshot has the wrong vocabulary size");
      }
    }
    if (state.last_alias_rebuild_sweep < 0 ||
        state.last_alias_rebuild_sweep > state.completed_sweeps) {
      return Status::InvalidArgument(
          "checkpoint stale alias rebuild epoch out of range");
    }
  }
  // All validation happens above this line so a rejected checkpoint never
  // leaves the model partially restored.
  if (!state.shard_rngs.empty()) {
    size_t planned = PlanShards(docs_->documents,
                                ResolveNumThreads(config_.num_threads))
                         .size();
    if (planned != state.shard_rngs.size()) {
      return Status::FailedPrecondition(
          "checkpoint shard count differs from this machine's plan "
          "(hardware concurrency changed?)");
    }
  }
  y_ = FromCheckpointInts(state.y);
  z_ = FromCheckpointRows(state.z);
  n_dk_ = FromCheckpointRows(state.n_dk);
  n_kv_ = FromCheckpointRows(state.n_kv);
  n_vk_synced_ = false;
  n_k_ = FromCheckpointInts(state.n_k);
  m_k_ = FromCheckpointInts(state.m_k);
  gel_topics_ = state.gel_topics;
  emulsion_topics_ = state.emulsion_topics;
  RebuildGaussianSoA();
  likelihood_trace_ = state.likelihood_trace;
  completed_sweeps_ = state.completed_sweeps;
  config_.alpha = state.current_alpha;
  rng_.RestoreState(state.master_rng);
  if (config_.sparse_sampler) {
    RebuildActiveLists();
    if (!state.stale_n_k.empty()) {
      // Rebuild() is deterministic in the snapshot counts, so this
      // reconstructs the exact proposal tables the crashed run was using,
      // and replaying the rebuild schedule from last_alias_rebuild_sweep
      // keeps the resumed chain bit-exact even when the checkpoint landed
      // between rebuilds.
      stale_.Rebuild(FromCheckpointRows(state.stale_n_kv),
                     FromCheckpointInts(state.stale_n_k), config_.gamma,
                     config_.gamma * static_cast<double>(vocab_size_),
                     state.last_alias_rebuild_sweep);
    } else {
      stale_.Clear();
    }
  }
  pool_.reset();
  shards_.clear();
  shard_rngs_.clear();
  if (!state.shard_rngs.empty()) {
    EnsureParallelEngine();
    for (size_t s = 0; s < shard_rngs_.size(); ++s) {
      shard_rngs_[s].RestoreState(state.shard_rngs[s]);
    }
  }
  return Status::OK();
}

texrheo::Status JointTopicModel::WarmStartFromCheckpoint(
    const CheckpointState& state) {
  const auto& documents = docs_->documents;
  size_t old_docs = static_cast<size_t>(state.fingerprint.num_documents);
  size_t old_vocab = static_cast<size_t>(state.fingerprint.vocab_size);
  if (old_docs > documents.size() || old_vocab > vocab_size_) {
    return Status::FailedPrecondition(
        "warm start: checkpoint covers more documents or terms than the "
        "corpus (not a prefix)");
  }
  // Hyperparameters must agree exactly; only the corpus is allowed to grow.
  CheckpointFingerprint expected = MakeFingerprint();
  CheckpointFingerprint relaxed = state.fingerprint;
  relaxed.num_documents = expected.num_documents;
  relaxed.vocab_size = expected.vocab_size;
  if (!(relaxed == expected)) {
    return Status::FailedPrecondition(
        "warm start: hyperparameter mismatch\n  checkpoint: " +
        state.fingerprint.ToString() + "\n  model:      " +
        expected.ToString());
  }
  size_t k_count = static_cast<size_t>(config_.num_topics);
  if (state.z.size() != old_docs || state.y.size() != old_docs) {
    return Status::InvalidArgument(
        "warm start: assignment count disagrees with checkpoint fingerprint");
  }
  if (state.gel_topics.size() != k_count ||
      state.emulsion_topics.size() != k_count) {
    return Status::InvalidArgument(
        "warm start: checkpoint is missing instantiated topic Gaussians");
  }
  // Prefix stability: every checkpointed document must still have the same
  // token count, and its term ids must fit the checkpoint's vocabulary.
  // Old ids changing (a re-sorted vocabulary) would silently rebuild the
  // counts against the wrong terms.
  for (size_t d = 0; d < old_docs; ++d) {
    const Document& doc = documents[d];
    if (state.z[d].size() != doc.term_ids.size()) {
      return Status::InvalidArgument(
          "warm start: document " + std::to_string(d) +
          " changed since the checkpoint (the old corpus must be stable)");
    }
    for (int32_t v : doc.term_ids) {
      if (v < 0 || static_cast<size_t>(v) >= vocab_size_) {
        return Status::InvalidArgument(
            "warm start: term id out of range in document " +
            std::to_string(d));
      }
    }
  }
  // All validation happens above this line (restore-or-reject contract,
  // same as RestoreFromCheckpoint).
  rng_.RestoreState(state.master_rng);
  gel_topics_ = state.gel_topics;
  emulsion_topics_ = state.emulsion_topics;
  config_.alpha = state.current_alpha;
  completed_sweeps_ = state.completed_sweeps;
  likelihood_trace_ = state.likelihood_trace;

  z_.assign(documents.size(), {});
  y_.assign(documents.size(), 0);
  m_k_.assign(k_count, 0);
  for (size_t d = 0; d < old_docs; ++d) {
    z_[d].assign(state.z[d].begin(), state.z[d].end());
    y_[d] = state.y[d];
    ++m_k_[static_cast<size_t>(y_[d])];
  }
  // Appended documents: tokens start uniform (one fresh sweep re-places
  // them against the mixed counts), but y comes from the checkpointed
  // Gaussians so each new recipe lands in the topic that already explains
  // its composition.
  for (size_t d = old_docs; d < documents.size(); ++d) {
    const Document& doc = documents[d];
    z_[d].resize(doc.term_ids.size());
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      z_[d][n] = static_cast<int>(
          rng_.NextUint(static_cast<uint64_t>(config_.num_topics)));
    }
    y_[d] = InferTopicForFeatures(doc.gel_feature, doc.emulsion_feature);
    ++m_k_[static_cast<size_t>(y_[d])];
  }
  // Rebuild the count caches at the grown dimensions.
  n_dk_.assign(documents.size(), std::vector<int>(config_.num_topics, 0));
  n_kv_.assign(k_count, std::vector<int>(vocab_size_, 0));
  n_vk_synced_ = false;
  n_k_.assign(k_count, 0);
  for (size_t d = 0; d < documents.size(); ++d) {
    const Document& doc = documents[d];
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t k = static_cast<size_t>(z_[d][n]);
      ++n_dk_[d][k];
      ++n_kv_[k][static_cast<size_t>(doc.term_ids[n])];
      ++n_k_[k];
    }
  }
  // The document count changed, so any checkpointed shard plan is stale;
  // the parallel engine replans (and re-splits its RNG streams) lazily.
  pool_.reset();
  shards_.clear();
  shard_rngs_.clear();
  if (config_.sparse_sampler) {
    RebuildActiveLists();
    // The corpus (and possibly the vocabulary) grew, so the checkpointed
    // proposal snapshot no longer matches the count dimensions; dropping
    // it forces a fresh rebuild on the first warm sweep.
    stale_.Clear();
  }
  return ResampleGaussians();
}

texrheo::Status JointTopicModel::Resume() {
  if (config_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition("resume: checkpoint_dir not configured");
  }
  TEXRHEO_ASSIGN_OR_RETURN(CheckpointState state,
                           LoadLatestValidCheckpoint(config_.checkpoint_dir));
  return RestoreFromCheckpoint(state);
}

texrheo::Status JointTopicModel::WriteCheckpointNow() {
  if (config_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition(
        "checkpoint: checkpoint_dir not configured");
  }
  FileOps& ops =
      checkpoint_file_ops_ != nullptr ? *checkpoint_file_ops_ : FileOps::Real();
  std::error_code ec;
  std::filesystem::create_directories(config_.checkpoint_dir, ec);
  std::string path =
      (std::filesystem::path(config_.checkpoint_dir) /
       CheckpointFileName(completed_sweeps_))
          .string();
  TEXRHEO_RETURN_IF_ERROR(WriteCheckpointFile(path, CaptureCheckpoint(), ops));
  if (obs_checkpoints_ != nullptr) obs_checkpoints_->Increment();
  return PruneCheckpoints(config_.checkpoint_dir, config_.checkpoint_keep_last,
                          ops);
}

texrheo::Status JointTopicModel::MaybeWriteCheckpoint() {
  if (config_.checkpoint_interval <= 0 || config_.checkpoint_dir.empty()) {
    return Status::OK();
  }
  if (completed_sweeps_ % config_.checkpoint_interval != 0) {
    return Status::OK();
  }
  return WriteCheckpointNow();
}

double JointTopicModel::UpdateAlpha() {
  // Minka's fixed-point update for a symmetric Dirichlet:
  //   alpha <- alpha * sum_{d,k} [Psi(n_dk + alpha) - Psi(alpha)]
  //                  / (K sum_d [Psi(n_d + K alpha) - Psi(K alpha)]).
  // Counts follow eq. 5's theta: word counts plus the y_d pseudo-count.
  const auto& documents = docs_->documents;
  double k_count = static_cast<double>(config_.num_topics);
  double alpha = config_.alpha;
  double numerator = 0.0;
  double denominator = 0.0;
  for (size_t d = 0; d < documents.size(); ++d) {
    double n_d = static_cast<double>(documents[d].term_ids.size()) + 1.0;
    for (int k = 0; k < config_.num_topics; ++k) {
      double n_dk = static_cast<double>(n_dk_[d][static_cast<size_t>(k)]) +
                    (y_[d] == k ? 1.0 : 0.0);
      numerator += math::Digamma(n_dk + alpha) - math::Digamma(alpha);
    }
    denominator += math::Digamma(n_d + k_count * alpha) -
                   math::Digamma(k_count * alpha);
  }
  if (denominator > 0.0 && numerator > 0.0) {
    double updated = alpha * numerator / (k_count * denominator);
    // Guard the fixed point against degenerate steps.
    config_.alpha = std::clamp(updated, 1e-4, 10.0);
  }
  return config_.alpha;
}

double JointTopicModel::LogJointLikelihood() const {
  const auto& documents = docs_->documents;
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  double alpha_sum =
      config_.alpha * static_cast<double>(config_.num_topics);
  double ll = 0.0;
  for (size_t d = 0; d < documents.size(); ++d) {
    const Document& doc = documents[d];
    double n_d = static_cast<double>(doc.term_ids.size());
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t k = static_cast<size_t>(z_[d][n]);
      size_t v = static_cast<size_t>(doc.term_ids[n]);
      double phi = (static_cast<double>(n_kv_[k][v]) + config_.gamma) /
                   (static_cast<double>(n_k_[k]) + gamma_v);
      double theta =
          (static_cast<double>(n_dk_[d][k]) + (y_[d] == z_[d][n] ? 1.0 : 0.0) +
           config_.alpha) /
          (n_d + 1.0 + alpha_sum);
      ll += std::log(phi) + std::log(theta);
    }
    size_t yk = static_cast<size_t>(y_[d]);
    ll += gel_topics_[yk].LogPdf(doc.gel_feature);
    if (config_.use_emulsion_likelihood) {
      ll += emulsion_topics_[yk].LogPdf(doc.emulsion_feature);
    }
  }
  return ll;
}

TopicEstimates JointTopicModel::Estimate() const {
  const auto& documents = docs_->documents;
  int k_count = config_.num_topics;
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  double alpha_sum = config_.alpha * static_cast<double>(k_count);

  TopicEstimates est;
  est.phi.assign(static_cast<size_t>(k_count),
                 std::vector<double>(vocab_size_, 0.0));
  for (int k = 0; k < k_count; ++k) {
    size_t ks = static_cast<size_t>(k);
    for (size_t v = 0; v < vocab_size_; ++v) {
      est.phi[ks][v] = (static_cast<double>(n_kv_[ks][v]) + config_.gamma) /
                       (static_cast<double>(n_k_[ks]) + gamma_v);
    }
  }
  est.theta.assign(documents.size(),
                   std::vector<double>(static_cast<size_t>(k_count), 0.0));
  est.doc_topic.resize(documents.size());
  est.topic_recipe_count.assign(static_cast<size_t>(k_count), 0);
  for (size_t d = 0; d < documents.size(); ++d) {
    double n_d = static_cast<double>(documents[d].term_ids.size());
    int best = 0;
    double best_val = -1.0;
    for (int k = 0; k < k_count; ++k) {
      size_t ks = static_cast<size_t>(k);
      // Eq. (5): theta_dk = (N_dk + M_dk) / (N_d + M_d + sum alpha).
      double val = (static_cast<double>(n_dk_[d][ks]) +
                    (y_[d] == k ? 1.0 : 0.0) + config_.alpha) /
                   (n_d + 1.0 + alpha_sum);
      est.theta[d][ks] = val;
      if (val > best_val) {
        best_val = val;
        best = k;
      }
    }
    est.doc_topic[d] = best;
    ++est.topic_recipe_count[static_cast<size_t>(best)];
  }
  // For reporting and linkage, replace the last Gibbs *sample* of each
  // Gaussian with the Normal-Wishart posterior mean given the current
  // assignments: the chain needs samples, but tables built from a single
  // sample are needlessly noisy (exp(-mu) amplifies mean noise badly).
  size_t gel_dim = documents.front().gel_feature.size();
  size_t emu_dim = documents.front().emulsion_feature.size();
  for (int k = 0; k < k_count; ++k) {
    math::RunningMoments gel_moments(gel_dim);
    math::RunningMoments emu_moments(emu_dim);
    for (size_t d = 0; d < documents.size(); ++d) {
      if (y_[d] != k) continue;
      gel_moments.Add(documents[d].gel_feature);
      emu_moments.Add(documents[d].emulsion_feature);
    }
    auto gel_mean = math::NormalWishartMean(config_.gel_prior.Posterior(
        gel_moments.count(), gel_moments.Mean(), gel_moments.Scatter()));
    auto emu_mean = math::NormalWishartMean(config_.emulsion_prior.Posterior(
        emu_moments.count(), emu_moments.Mean(), emu_moments.Scatter()));
    est.gel_topics.push_back(gel_mean.ok() ? std::move(gel_mean).value()
                                           : gel_topics_[static_cast<size_t>(k)]);
    est.emulsion_topics.push_back(
        emu_mean.ok() ? std::move(emu_mean).value()
                      : emulsion_topics_[static_cast<size_t>(k)]);
  }
  return est;
}

math::Vector JointTopicModel::TopicGelFeatureMean(int k) const {
  const auto& documents = docs_->documents;
  math::Vector mean(documents.front().gel_feature.size());
  int count = 0;
  for (size_t d = 0; d < documents.size(); ++d) {
    if (y_[d] != k) continue;
    mean += documents[d].gel_feature;
    ++count;
  }
  if (count > 0) mean *= 1.0 / static_cast<double>(count);
  return mean;
}

texrheo::StatusOr<std::vector<double>> JointTopicModel::FoldInTheta(
    const recipe::Document& doc, int fold_in_sweeps, Rng& rng) const {
  if (fold_in_sweeps < 1) {
    return Status::InvalidArgument("fold-in: sweeps must be >= 1");
  }
  int k_count = config_.num_topics;
  double gamma_v = config_.gamma * static_cast<double>(vocab_size_);
  for (int32_t term : doc.term_ids) {
    if (term < 0 || static_cast<size_t>(term) >= vocab_size_) {
      return Status::OutOfRange("fold-in: term id outside training vocab");
    }
  }

  // Local assignment state; the global counts stay frozen (standard
  // fold-in: corpus statistics are treated as the posterior).
  std::vector<int> local_z(doc.term_ids.size());
  std::vector<int> local_n_k(static_cast<size_t>(k_count), 0);
  for (size_t n = 0; n < doc.term_ids.size(); ++n) {
    int k = static_cast<int>(rng.NextUint(static_cast<uint64_t>(k_count)));
    local_z[n] = k;
    ++local_n_k[static_cast<size_t>(k)];
  }
  int local_y =
      static_cast<int>(rng.NextUint(static_cast<uint64_t>(k_count)));

  std::vector<double> weights(static_cast<size_t>(k_count));
  std::vector<double> log_w(static_cast<size_t>(k_count));
  // The Gaussians are frozen during fold-in, so their log-densities are
  // constant across sweeps: evaluate the batch once and reuse (bit-exact
  // with re-evaluating per sweep, since the values never change).
  std::vector<double> gel_lp(static_cast<size_t>(k_count));
  std::vector<double> emu_lp(static_cast<size_t>(k_count));
  {
    TopicGaussiansSoA::Scratch scratch;
    gel_soa_.BatchLogPdf(doc.gel_feature, scratch, gel_lp.data());
    if (config_.use_emulsion_likelihood) {
      emu_soa_.BatchLogPdf(doc.emulsion_feature, scratch, emu_lp.data());
    }
  }
  for (int sweep = 0; sweep < fold_in_sweeps; ++sweep) {
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t v = static_cast<size_t>(doc.term_ids[n]);
      --local_n_k[static_cast<size_t>(local_z[n])];
      for (int k = 0; k < k_count; ++k) {
        size_t ks = static_cast<size_t>(k);
        weights[ks] =
            (static_cast<double>(local_n_k[ks]) +
             (local_y == k ? 1.0 : 0.0) + config_.alpha) *
            (static_cast<double>(n_kv_[ks][v]) + config_.gamma) /
            (static_cast<double>(n_k_[ks]) + gamma_v);
      }
      local_z[n] = static_cast<int>(rng.NextCategorical(weights));
      ++local_n_k[static_cast<size_t>(local_z[n])];
    }
    for (int k = 0; k < k_count; ++k) {
      size_t ks = static_cast<size_t>(k);
      double lw = std::log(static_cast<double>(local_n_k[ks]) +
                           config_.alpha);
      lw += gel_lp[ks];
      if (config_.use_emulsion_likelihood) {
        lw += emu_lp[ks];
      }
      log_w[ks] = lw;
    }
    double norm = math::LogSumExp(log_w.data(), log_w.size());
    for (int k = 0; k < k_count; ++k) {
      weights[static_cast<size_t>(k)] =
          std::exp(log_w[static_cast<size_t>(k)] - norm);
    }
    local_y = static_cast<int>(rng.NextCategorical(weights));
  }

  double n_d = static_cast<double>(doc.term_ids.size());
  double alpha_sum = config_.alpha * static_cast<double>(k_count);
  std::vector<double> theta(static_cast<size_t>(k_count));
  for (int k = 0; k < k_count; ++k) {
    size_t ks = static_cast<size_t>(k);
    theta[ks] = (static_cast<double>(local_n_k[ks]) +
                 (local_y == k ? 1.0 : 0.0) + config_.alpha) /
                (n_d + 1.0 + alpha_sum);
  }
  return theta;
}

int JointTopicModel::InferTopicForFeatures(
    const math::Vector& gel_feature,
    const math::Vector& emulsion_feature) const {
  int best = 0;
  double best_lw = -std::numeric_limits<double>::infinity();
  for (int k = 0; k < config_.num_topics; ++k) {
    size_t ks = static_cast<size_t>(k);
    double lw = std::log(static_cast<double>(m_k_[ks]) + config_.alpha) +
                gel_topics_[ks].LogPdf(gel_feature);
    if (config_.use_emulsion_likelihood) {
      lw += emulsion_topics_[ks].LogPdf(emulsion_feature);
    }
    if (lw > best_lw) {
      best_lw = lw;
      best = k;
    }
  }
  return best;
}

}  // namespace texrheo::core
