#ifndef TEXRHEO_CORE_PARALLEL_GIBBS_H_
#define TEXRHEO_CORE_PARALLEL_GIBBS_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "recipe/dataset.h"

namespace texrheo::core {

/// Pieces of the parallel Gibbs engine shared by JointTopicModel and
/// CollapsedJointTopicModel (AD-LDA style document sharding: each worker
/// sweeps a contiguous document range against a frozen snapshot of the
/// global topic-word counts, accumulating its own counterfactual deltas,
/// which are merged in shard order once the sweep finishes).

/// Resolves the config knob: 0 means "hardware concurrency", anything else
/// is taken literally (clamped to >= 1).
int ResolveNumThreads(int configured);

/// Contiguous, token-balanced document shards: shard s covers documents
/// [ranges[s].first, ranges[s].second). Balancing works on token counts (+1
/// per document for the y draw) so one long-document shard does not
/// serialize the sweep. Always returns exactly `num_shards` ranges; trailing
/// ranges may be empty when there are fewer documents than shards.
std::vector<std::pair<size_t, size_t>> PlanShards(
    const std::vector<recipe::Document>& docs, int num_shards);

/// Per-worker counterfactual deltas against the frozen global topic-word
/// counts. Within a shard, effective counts are global + delta, which stays
/// non-negative because a worker only removes tokens that the frozen global
/// counts still contain.
struct TopicCountDelta {
  std::vector<std::vector<int>> n_kv;  ///< [k][v] topic-term delta.
  std::vector<int> n_k;                ///< [k] topic-total delta.

  TopicCountDelta(int num_topics, size_t vocab_size)
      : n_kv(static_cast<size_t>(num_topics),
             std::vector<int>(vocab_size, 0)),
        n_k(static_cast<size_t>(num_topics), 0) {}
};

/// Merges worker deltas into the global counts in shard order (the
/// deterministic reduction; integer addition makes the result order-free,
/// but a fixed order keeps replay byte-for-byte auditable).
void MergeTopicCountDeltas(const std::vector<TopicCountDelta>& deltas,
                           std::vector<std::vector<int>>& n_kv,
                           std::vector<int>& n_k);

/// out[k] = 1.0 / (n_k[k] + delta->n_k[k] + gamma_v), with `delta` nullable
/// for the serial sampler. The sparse z-sampler keeps this cache to turn the
/// per-topic division in the eq.-2 conditional into a multiply; each entry
/// is a pure function of the current counts (recomputed from scratch on
/// every flip, never incrementally adjusted), so a resumed run rebuilds the
/// identical cache and stays bit-exact with the uninterrupted one.
void EffectiveInvDenominators(const std::vector<int>& n_k,
                              const TopicCountDelta* delta, double gamma_v,
                              std::vector<double>& out);

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_PARALLEL_GIBBS_H_
