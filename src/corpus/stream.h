#ifndef TEXRHEO_CORPUS_STREAM_H_
#define TEXRHEO_CORPUS_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "recipe/recipe.h"
#include "rheology/gel_model.h"
#include "text/texture_dictionary.h"
#include "util/rng.h"

namespace texrheo::corpus {

/// Knobs of the drifting recipe stream. The batch corpus is stationary by
/// construction; a live recipe site is not. Three drift mechanisms model
/// what the ingestion pipeline must absorb between refreshes:
///
///  * template unlock — new dish families ("sparkling jelly"...) start
///    being posted after a point in the stream, shifting the topic mix;
///  * seasonal shift — per-template posting rates oscillate over the year
///    (mizu-yokan peaks in summer, panna cotta around the holidays);
///  * vocabulary churn — writers coin morphological variants of texture
///    terms ("purupuru" -> "purupuru-n") that are not yet in the served
///    vocabulary, exercising the stale-vocab path in the query engine.
struct RecipeStreamConfig {
  uint64_t seed = 20240601;
  /// Generation knobs shared with the batch corpus (num_recipes ignored —
  /// a stream has no length).
  CorpusGenConfig gen;
  /// One late-era template unlocks every this many stream positions
  /// (0 disables template drift).
  size_t template_unlock_interval = 400;
  /// Period, in stream positions, of the seasonal posting-rate cycle
  /// (0 disables seasonality).
  size_t season_period = 1000;
  /// Peak-to-mean amplitude of the seasonal cycle, in [0, 1).
  double season_amplitude = 0.5;
  /// One churned term variant activates every this many positions
  /// (0 disables vocabulary churn).
  size_t vocab_churn_interval = 300;
  /// Probability that a texture term with an active variant is written in
  /// its churned form instead of the dictionary surface.
  double churn_term_prob = 0.4;
};

/// One stream element: the generated recipe plus the model-facing
/// observables the ingestion protocol carries (texture terms as written,
/// including churned variants absent from the batch dictionary).
struct StreamRecipe {
  uint64_t position = 0;
  recipe::Recipe recipe;
  /// Texture terms in description order, churned surfaces included.
  std::vector<std::string> texture_terms;
  std::string template_name;
};

/// Deterministic, resumable drifting recipe stream. Every position draws
/// from its own RNG stream (`Rng::ForStream(seed, position)`), so `At(p)`
/// is a pure function of (config, p): a restarted ingester replaying the
/// stream from any checkpointed position reproduces byte-identical
/// recipes — which is what makes the content-keyed WAL dedup effective
/// across crash/redelivery cycles.
class RecipeStream {
 public:
  RecipeStream(const RecipeStreamConfig& config,
               const rheology::GelPhysicsModel* model,
               const text::TextureDictionary* dictionary);

  /// The recipe at stream position `position` (0-based). Pure.
  StreamRecipe At(uint64_t position);

  /// The next recipe in cursor order; advances the cursor.
  StreamRecipe Next() { return At(position_++); }

  void SeekTo(uint64_t position) { position_ = position; }
  uint64_t position() const { return position_; }

  /// Number of templates (base + unlocked drift) eligible at `position`.
  size_t NumActiveTemplates(uint64_t position) const;

  /// Churned term variants active at `position`, in activation order.
  /// Each entry is (variant surface, base dictionary surface).
  std::vector<std::pair<std::string, std::string>> ActiveChurnVariants(
      uint64_t position) const;

  /// The late-era dish templates introduced by template drift.
  static const std::vector<CorpusGenerator::DishTemplate>& DriftTemplates();

 private:
  RecipeStreamConfig config_;
  CorpusGenerator generator_;
  const text::TextureDictionary* dictionary_;
  uint64_t position_ = 0;
};

}  // namespace texrheo::corpus

#endif  // TEXRHEO_CORPUS_STREAM_H_
