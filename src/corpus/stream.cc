#include "corpus/stream.h"

#include <cmath>
#include <sstream>
#include <unordered_map>

namespace texrheo::corpus {
namespace {

using recipe::GelType;
using Tmpl = CorpusGenerator::DishTemplate;

constexpr double kPi = 3.14159265358979323846;

/// Morphological churn suffixes: nasal, glottal and adverbial variants of
/// the same onomatopoeic stems the embedded dictionary derives.
constexpr const char* kChurnSuffixes[] = {"n", "tto", "ri"};

std::vector<std::string> SplitTokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

}  // namespace

const std::vector<Tmpl>& RecipeStream::DriftTemplates() {
  // Late-era dish families: posted only after their unlock point, so each
  // refresh cycle trains over a topic mix the previous model never saw.
  static const std::vector<Tmpl>& table = *new std::vector<Tmpl>{
      {"sparkling-jelly", 6.0, GelType::kGelatin, 0.005, 0.010,
       GelType::kGelatin, 0, 0, 0.04, 0.09, 0, 0, 0, 0, 0, 0, 0, 0.70, 0.10,
       0.30},
      {"summer-mizu-jelly", 5.0, GelType::kKanten, 0.004, 0.008,
       GelType::kGelatin, 0.002, 0.004, 0.02, 0.06, 0, 0, 0, 0, 0, 0, 0, 0.85,
       0.15, 0.40},
      {"agar-latte-mousse", 4.0, GelType::kAgar, 0.008, 0.015, GelType::kAgar,
       0, 0, 0.04, 0.09, 0, 0, 0.05, 0.15, 0.20, 0.40, 0, 0.60, 0.12, 0.30},
      {"salted-panna-firm", 4.5, GelType::kGelatin, 0.018, 0.028,
       GelType::kGelatin, 0, 0, 0.05, 0.09, 0, 0, 0.30, 0.45, 0.15, 0.30, 0,
       0.40, 0.10, 0.25},
  };
  return table;
}

RecipeStream::RecipeStream(const RecipeStreamConfig& config,
                           const rheology::GelPhysicsModel* model,
                           const text::TextureDictionary* dictionary)
    : config_(config),
      generator_(config.gen, model, dictionary),
      dictionary_(dictionary) {}

size_t RecipeStream::NumActiveTemplates(uint64_t position) const {
  size_t base = CorpusGenerator::BaseTemplates().size();
  if (config_.template_unlock_interval == 0) return base;
  size_t unlocked = static_cast<size_t>(
      position / config_.template_unlock_interval);
  return base + std::min(unlocked, DriftTemplates().size());
}

std::vector<std::pair<std::string, std::string>>
RecipeStream::ActiveChurnVariants(uint64_t position) const {
  std::vector<std::pair<std::string, std::string>> variants;
  if (config_.vocab_churn_interval == 0) return variants;
  size_t active = static_cast<size_t>(position / config_.vocab_churn_interval);

  // Deterministic schedule over gel-related surfaces: generation g varies
  // the (g * 7 mod n)-th term. The prime stride spreads churn across the
  // axes; a base that already has a variant is skipped rather than varied
  // twice, so variant -> base stays a bijection.
  std::vector<const text::TextureTerm*> gel_terms;
  for (const auto& t : dictionary_->terms()) {
    if (t.gel_related) gel_terms.push_back(&t);
  }
  if (gel_terms.empty()) return variants;
  std::vector<bool> used(gel_terms.size(), false);
  for (size_t g = 1; g <= active; ++g) {
    size_t idx = (g * 7) % gel_terms.size();
    while (used[idx]) idx = (idx + 1) % gel_terms.size();
    used[idx] = true;
    const std::string& base = gel_terms[idx]->surface;
    std::string variant =
        base + "-" + kChurnSuffixes[g % std::size(kChurnSuffixes)];
    variants.emplace_back(std::move(variant), base);
    if (variants.size() >= gel_terms.size()) break;
  }
  return variants;
}

StreamRecipe RecipeStream::At(uint64_t position) {
  Rng rng = Rng::ForStream(config_.seed, position);

  // --- Template choice under drift ---------------------------------------
  const auto& base = CorpusGenerator::BaseTemplates();
  const auto& drift = DriftTemplates();
  size_t active = NumActiveTemplates(position);
  std::vector<double> weights(active);
  for (size_t k = 0; k < active; ++k) {
    const Tmpl& t = k < base.size() ? base[k] : drift[k - base.size()];
    double w = t.weight;
    if (config_.season_period > 0 && config_.season_amplitude > 0.0) {
      // Golden-ratio phases decorrelate the per-template seasons so the
      // whole stream never peaks or troughs at once.
      double phase = 2.0 * kPi * std::fmod(0.6180339887498949 * k, 1.0);
      double season = 1.0 + config_.season_amplitude *
                                std::sin(2.0 * kPi *
                                             static_cast<double>(
                                                 position %
                                                 config_.season_period) /
                                             static_cast<double>(
                                                 config_.season_period) +
                                         phase);
      w *= std::max(0.05, season);
    }
    weights[k] = w;
  }
  size_t choice = rng.NextCategorical(weights);
  const Tmpl& tmpl = choice < base.size() ? base[choice]
                                          : drift[choice - base.size()];

  StreamRecipe out;
  out.position = position;
  out.template_name = tmpl.name;
  // Stream ids live in their own range so they never collide with batch
  // corpus ids (which start at 1).
  out.recipe = generator_.GenerateFromTemplate(
      static_cast<int64_t>(1000000 + position), tmpl, rng);

  // --- Texture-term extraction + vocabulary churn ------------------------
  std::unordered_map<std::string, std::string> variant_of;  // base -> variant
  for (auto& [variant, base_surface] : ActiveChurnVariants(position)) {
    variant_of[base_surface] = variant;
  }
  std::vector<std::string> tokens = SplitTokens(out.recipe.description);
  bool churned = false;
  for (std::string& token : tokens) {
    if (!dictionary_->Contains(token)) continue;
    auto it = variant_of.find(token);
    if (it != variant_of.end() && rng.NextBernoulli(config_.churn_term_prob)) {
      token = it->second;
      churned = true;
    }
    out.texture_terms.push_back(token);
  }
  if (churned) out.recipe.description = JoinTokens(tokens);
  return out;
}

}  // namespace texrheo::corpus
