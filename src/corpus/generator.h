#ifndef TEXRHEO_CORPUS_GENERATOR_H_
#define TEXRHEO_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "math/linalg.h"
#include "recipe/recipe.h"
#include "rheology/gel_model.h"
#include "text/texture_dictionary.h"
#include "util/rng.h"
#include "util/status.h"

namespace texrheo::corpus {

/// Configuration of the synthetic Cookpad corpus.
///
/// The real corpus is proprietary; this generator reproduces its *observable
/// structure*: 63,000 gel recipes split ~45k/15k/3k across gelatin / kanten /
/// agar, of which ~10,000 carry texture terms in their descriptions and
/// ~3,000 survive the unrelated-ingredient filter. Ground truth (dish
/// template, simulated TPA attributes) is recorded in recipe metadata so
/// evaluation can score what the topic model recovers.
struct CorpusGenConfig {
  size_t num_recipes = 63000;
  uint64_t seed = 20220501;
  /// Probability that a description talks about texture at all
  /// (Cookpad: ~10k of 63k).
  double texture_description_prob = 0.16;
  /// Probability that a texture-describing recipe gets a crunchy topping
  /// (nuts, cookie crumble...) that injects non-gel "crispy" terms - the
  /// confounder the paper removes with word2vec.
  double topping_prob = 0.15;
  /// Number of texture terms emitted per texture-describing recipe.
  int min_terms = 1;
  int max_terms = 5;
  /// Softmax temperature of attribute-conditional term sampling; lower
  /// values give sharper (more recoverable) term signatures.
  double term_temperature = 0.45;
  /// Emit cooking steps (bloom / boil / whip / quick-chill / slow-set) that
  /// modify the ground-truth rheology - e.g. boiling degrades gelatin.
  /// Gives the rule-mining extension (the paper's future work) real
  /// step -> texture structure to discover.
  bool enable_cooking_steps = true;
};

/// Ground-truth metadata key holding '+'-separated cooking steps.
inline constexpr char kMetaSteps[] = "steps";

/// Ground-truth metadata keys written by the generator.
inline constexpr char kMetaTemplate[] = "template";
inline constexpr char kMetaGelLabel[] = "gel_label";
inline constexpr char kMetaHardness[] = "hardness";
inline constexpr char kMetaCohesiveness[] = "cohesiveness";
inline constexpr char kMetaAdhesiveness[] = "adhesiveness";
inline constexpr char kMetaTextureClass[] = "texture_class";

/// Generates the synthetic corpus. Deterministic given the config seed.
class CorpusGenerator {
 public:
  /// One synthetic dish family: gel/emulsion composition ranges plus how
  /// often it carries fruit (unrelated solids). Weights are scaled so the
  /// corpus splits ~45k/15k/3k across gelatin/kanten/agar like the paper's
  /// crawl. Exposed in the header so the drifting stream (corpus/stream.h)
  /// can introduce late-era templates that are not in the static table.
  struct DishTemplate {
    const char* name;
    double weight;
    recipe::GelType gel1;
    double gel1_lo, gel1_hi;
    // Secondary gel; gel2_hi == 0 means single-gel dish.
    recipe::GelType gel2;
    double gel2_lo, gel2_hi;
    // Emulsion fraction ranges (of total weight); hi == 0 disables.
    double sugar_lo, sugar_hi;
    double albumen_hi;
    double yolk_hi;
    double cream_lo, cream_hi;
    double milk_lo, milk_hi;
    double yogurt_hi;
    // Unrelated solid (fruit / azuki) behaviour.
    double fruit_prob;
    double fruit_lo, fruit_hi;
  };

  /// `model` provides the ground-truth rheology; must outlive the generator.
  CorpusGenerator(const CorpusGenConfig& config,
                  const rheology::GelPhysicsModel* model,
                  const text::TextureDictionary* dictionary);

  /// Generates config.num_recipes recipes.
  std::vector<recipe::Recipe> Generate();

  /// The static dish-template table the batch corpus draws from.
  static const std::vector<DishTemplate>& BaseTemplates();

  /// Generates a single recipe from an explicit template — the seam the
  /// drifting stream uses to emit dishes outside the static table. The
  /// caller owns the RNG so per-position streams stay resumable.
  recipe::Recipe GenerateFromTemplate(int64_t id, const DishTemplate& tmpl,
                                      Rng& rng);

  /// Names of "unrelated ingredient" words that the word2vec screen should
  /// associate with confounder texture terms (toppings).
  static std::vector<std::string> ToppingIngredientNames();

 private:
  recipe::Recipe GenerateOne(int64_t id, const DishTemplate& tmpl, Rng& rng);
  /// Samples texture terms conditioned on simulated TPA attributes.
  std::vector<std::string> SampleTextureTerms(
      const rheology::TpaAttributes& attributes,
      const math::Vector& gel_concentration, Rng& rng, int count) const;

  CorpusGenConfig config_;
  const rheology::GelPhysicsModel* model_;
  const text::TextureDictionary* dictionary_;
};

/// Discrete ground-truth texture class derived from TPA attributes; used as
/// the reference labelling for clustering metrics (purity / NMI).
/// Classes: 0 soft, 1 medium, 2 hard -x- non-sticky/sticky => 6 classes.
int TextureClassOf(const rheology::TpaAttributes& attributes);
int NumTextureClasses();
const char* TextureClassName(int cls);

}  // namespace texrheo::corpus

#endif  // TEXRHEO_CORPUS_GENERATOR_H_
