#include "corpus/generator.h"

#include <algorithm>
#include <cmath>

#include "recipe/features.h"
#include "recipe/units.h"
#include "util/string_util.h"

namespace texrheo::corpus {
namespace {

using recipe::GelType;
using recipe::IngredientLine;
using recipe::Recipe;
using rheology::TpaAttributes;

double RoundTo(double value, double step) {
  double r = std::round(value / step) * step;
  return r < step ? step : r;
}

std::string FormatAmount(double v) {
  // Avoid "2.000000": print integers plainly, fractions with 2 digits.
  if (std::fabs(v - std::round(v)) < 1e-9) {
    return std::to_string(static_cast<long long>(std::llround(v)));
  }
  return FormatDouble(v, 2);
}

constexpr const char* kBaseLiquids[] = {"water", "juice", "orange-juice",
                                        "grape-juice", "coffee", "green-tea",
                                        "wine", "coconut-milk"};
constexpr const char* kFruits[] = {"strawberry", "orange",    "peach",
                                   "banana",     "apple",     "pineapple",
                                   "mandarin",   "blueberry", "kiwi"};
constexpr const char* kToppings[] = {"nuts",    "almond",    "walnut",
                                     "granola", "cookie",    "biscuit",
                                     "cornflake", "wafer"};
constexpr const char* kVerbs[] = {"dissolve", "chill", "boil",  "mix",
                                  "pour",     "strain", "whip", "cool",
                                  "set",      "serve"};

}  // namespace

namespace {

using Tmpl = CorpusGenerator::DishTemplate;

}  // namespace

// Template table defined out-of-line so the header stays light.
static const Tmpl kTemplates[] = {
    // --- Gelatin dishes (71.4% of the corpus) ---
    {"soft-juice-jelly", 14.0, GelType::kGelatin, 0.004, 0.009,
     GelType::kGelatin, 0, 0, 0.00, 0.05, 0, 0, 0, 0, 0, 0, 0, 0.80, 0.12,
     0.35},
    {"standard-jelly", 16.0, GelType::kGelatin, 0.010, 0.016,
     GelType::kGelatin, 0, 0, 0.02, 0.06, 0, 0, 0, 0, 0, 0, 0, 0.80, 0.12,
     0.35},
    {"firm-gummy", 5.0, GelType::kGelatin, 0.040, 0.070, GelType::kGelatin, 0,
     0, 0.05, 0.10, 0, 0, 0, 0, 0, 0, 0, 0.45, 0.12,
     0.30},
    {"bavarois", 8.0, GelType::kGelatin, 0.020, 0.030, GelType::kGelatin, 0,
     0, 0.03, 0.08, 0, 0.10, 0.15, 0.25, 0.30, 0.45, 0, 0.55, 0.12,
     0.30},
    {"mousse", 12.0, GelType::kGelatin, 0.004, 0.010, GelType::kGelatin, 0, 0,
     0.05, 0.10, 0.12, 0, 0.20, 0.35, 0, 0, 0, 0.75, 0.12,
     0.35},
    {"milk-jelly", 8.0, GelType::kGelatin, 0.020, 0.030, GelType::kGelatin, 0,
     0, 0.02, 0.05, 0, 0, 0, 0, 0.60, 0.80, 0, 0.50, 0.12,
     0.25},
    {"panna-cotta", 6.0, GelType::kGelatin, 0.012, 0.020, GelType::kGelatin,
     0, 0, 0.04, 0.08, 0, 0, 0.25, 0.40, 0.20, 0.35, 0, 0.50, 0.12,
     0.25},
    {"yogurt-mousse", 2.4, GelType::kGelatin, 0.008, 0.014, GelType::kGelatin,
     0, 0, 0.04, 0.08, 0, 0, 0.10, 0.20, 0, 0, 0.50, 0.70, 0.12,
     0.30},
    // --- Kanten dishes (23.8%) ---
    {"mizu-yokan", 5.0, GelType::kKanten, 0.003, 0.006, GelType::kKanten, 0,
     0, 0.05, 0.12, 0, 0, 0, 0, 0, 0, 0, 0.90, 0.20,
     0.40},
    {"kanten-jelly", 7.0, GelType::kKanten, 0.006, 0.012, GelType::kKanten, 0,
     0, 0.03, 0.08, 0, 0, 0, 0, 0, 0, 0, 0.80, 0.12,
     0.35},
    {"tokoroten-firm", 6.0, GelType::kKanten, 0.015, 0.025, GelType::kKanten,
     0, 0, 0.00, 0.03, 0, 0, 0, 0, 0, 0, 0, 0.45, 0.12,
     0.25},
    {"milk-kanten", 4.0, GelType::kKanten, 0.004, 0.008, GelType::kKanten, 0,
     0, 0.04, 0.08, 0, 0, 0, 0, 0.40, 0.60, 0, 0.75, 0.12,
     0.35},
    {"kanten-gelatin-mousse", 1.8, GelType::kKanten, 0.002, 0.004,
     GelType::kGelatin, 0.002, 0.005, 0.03, 0.07, 0.05, 0, 0.05, 0.15, 0.10,
     0.25, 0, 0.60, 0.12,
     0.30},
    // --- Agar dishes (4.8%) ---
    {"agar-jelly", 2.2, GelType::kAgar, 0.008, 0.014, GelType::kAgar, 0, 0,
     0.03, 0.08, 0, 0, 0, 0, 0, 0, 0, 0.75, 0.12,
     0.35},
    {"agar-pudding-firm", 1.6, GelType::kAgar, 0.020, 0.035, GelType::kAgar,
     0, 0, 0.04, 0.08, 0, 0, 0, 0, 0.20, 0.40, 0, 0.50, 0.12,
     0.30},
    {"agar-gelatin-mix", 1.0, GelType::kAgar, 0.006, 0.012, GelType::kGelatin,
     0.006, 0.012, 0.03, 0.08, 0, 0, 0, 0, 0, 0, 0, 0.60, 0.12,
     0.30},
};

CorpusGenerator::CorpusGenerator(const CorpusGenConfig& config,
                                 const rheology::GelPhysicsModel* model,
                                 const text::TextureDictionary* dictionary)
    : config_(config), model_(model), dictionary_(dictionary) {}

std::vector<std::string> CorpusGenerator::ToppingIngredientNames() {
  return std::vector<std::string>(std::begin(kToppings), std::end(kToppings));
}

const std::vector<CorpusGenerator::DishTemplate>&
CorpusGenerator::BaseTemplates() {
  static const std::vector<DishTemplate>& table = *new std::vector<DishTemplate>(
      std::begin(kTemplates), std::end(kTemplates));
  return table;
}

Recipe CorpusGenerator::GenerateFromTemplate(int64_t id,
                                             const DishTemplate& tmpl,
                                             Rng& rng) {
  return GenerateOne(id, tmpl, rng);
}

std::vector<Recipe> CorpusGenerator::Generate() {
  Rng rng(config_.seed);
  std::vector<double> weights;
  for (const Tmpl& t : kTemplates) weights.push_back(t.weight);

  std::vector<Recipe> out;
  out.reserve(config_.num_recipes);
  for (size_t i = 0; i < config_.num_recipes; ++i) {
    const Tmpl& tmpl = kTemplates[rng.NextCategorical(weights)];
    out.push_back(GenerateOne(static_cast<int64_t>(i) + 1, tmpl, rng));
  }
  return out;
}

std::vector<std::string> CorpusGenerator::SampleTextureTerms(
    const TpaAttributes& attributes, const math::Vector& gel_concentration,
    Rng& rng, int count) const {
  // Map attributes to signed signals in [-1, 1] per axis, then score every
  // gel-related dictionary term by how well polarity * intensity matches.
  double s_h = std::tanh(std::log((attributes.hardness + 0.02) / 0.8));
  double s_c = std::tanh(2.5 * (attributes.cohesiveness - 0.35));
  double s_a = std::tanh(std::log((attributes.adhesiveness + 0.01) / 0.3));

  // Gel-specific vocabulary flavor, as in real Japanese usage: gelatin's
  // entropic networks read "wobbly/springy" (elastic pole), kanten's and
  // agar's brittle polysaccharide networks read "crumbly/shearing". The
  // multiplier interpolates by which gel dominates the dish.
  double total_gel = gel_concentration.Sum();
  double gelatin_share =
      total_gel > 0.0
          ? gel_concentration[static_cast<size_t>(GelType::kGelatin)] /
                total_gel
          : 1.0;
  double elastic_boost = 0.4 + 1.8 * gelatin_share;   // 2.2x for gelatin.
  double crumbly_boost = 2.2 - 1.8 * gelatin_share;   // 2.2x for kanten/agar.

  const auto& terms = dictionary_->terms();
  std::vector<double> weights(terms.size(), 0.0);
  constexpr double kSigma2 = 0.35 * 0.35;
  for (size_t i = 0; i < terms.size(); ++i) {
    const text::TextureTerm& t = terms[i];
    if (!t.gel_related) continue;
    double signal;
    switch (t.axis) {
      case text::TextureAxis::kHardness:
        signal = s_h;
        break;
      case text::TextureAxis::kCohesiveness:
        signal = s_c;
        break;
      case text::TextureAxis::kAdhesiveness:
      default:
        signal = s_a;
        break;
    }
    double d = signal - static_cast<double>(t.polarity) * t.intensity;
    weights[i] = t.base_frequency *
                 std::exp(-d * d / (2.0 * kSigma2 * config_.term_temperature));
    if (t.axis == text::TextureAxis::kCohesiveness) {
      weights[i] *= t.polarity > 0 ? elastic_boost : crumbly_boost;
    }
  }
  std::vector<std::string> sampled;
  sampled.reserve(static_cast<size_t>(count));
  for (int n = 0; n < count; ++n) {
    sampled.push_back(terms[rng.NextCategorical(weights)].surface);
  }
  return sampled;
}

Recipe CorpusGenerator::GenerateOne(int64_t id, const DishTemplate& tmpl,
                                    Rng& rng) {
  Recipe r;
  r.id = id;

  const double total = rng.NextUniform(300.0, 700.0);

  // --- Compose target grams ---------------------------------------------
  struct Part {
    std::string name;
    double grams;
  };
  std::vector<Part> parts;

  auto gel_name = [](GelType g) -> std::string { return GelTypeName(g); };
  double c1 = rng.NextUniform(tmpl.gel1_lo, tmpl.gel1_hi);
  parts.push_back({gel_name(tmpl.gel1), c1 * total});
  if (tmpl.gel2_hi > 0.0) {
    double c2 = rng.NextUniform(tmpl.gel2_lo, tmpl.gel2_hi);
    parts.push_back({gel_name(tmpl.gel2), c2 * total});
  }
  if (tmpl.sugar_hi > 0.0) {
    parts.push_back(
        {"sugar", rng.NextUniform(tmpl.sugar_lo, tmpl.sugar_hi) * total});
  }
  if (tmpl.albumen_hi > 0.0) {
    parts.push_back(
        {"egg-white", rng.NextUniform(0.4, 1.0) * tmpl.albumen_hi * total});
  }
  if (tmpl.yolk_hi > 0.0) {
    parts.push_back(
        {"egg-yolk", rng.NextUniform(0.4, 1.0) * tmpl.yolk_hi * total});
  }
  if (tmpl.cream_hi > 0.0) {
    parts.push_back({"raw-cream",
                     rng.NextUniform(tmpl.cream_lo, tmpl.cream_hi) * total});
  }
  if (tmpl.milk_hi > 0.0) {
    parts.push_back(
        {"milk", rng.NextUniform(tmpl.milk_lo, tmpl.milk_hi) * total});
  }
  if (tmpl.yogurt_hi > 0.0) {
    parts.push_back(
        {"yogurt", rng.NextUniform(0.5, 1.0) * tmpl.yogurt_hi * total});
  }
  std::string fruit_name;
  if (rng.NextBernoulli(tmpl.fruit_prob)) {
    fruit_name = kFruits[rng.NextUint(std::size(kFruits))];
    // Mizu-yokan style dishes use azuki paste rather than fruit.
    if (std::string_view(tmpl.name) == "mizu-yokan") fruit_name = "azuki-paste";
    parts.push_back(
        {fruit_name, rng.NextUniform(tmpl.fruit_lo, tmpl.fruit_hi) * total});
  }

  bool writes_texture = rng.NextBernoulli(config_.texture_description_prob);
  std::string topping_name;
  if (writes_texture && rng.NextBernoulli(config_.topping_prob)) {
    topping_name = kToppings[rng.NextUint(std::size(kToppings))];
    parts.push_back({topping_name, rng.NextUniform(0.01, 0.04) * total});
  }

  // Liquid base takes the remaining weight.
  double used = 0.0;
  for (const Part& p : parts) used += p.grams;
  double base_grams = total - used;
  if (base_grams > 1.0) {
    std::string base = kBaseLiquids[rng.NextUint(std::size(kBaseLiquids))];
    // Milk-forward dishes read better with a neutral base.
    parts.push_back({base, base_grams});
  }

  // --- Quantize into posted-recipe quantity strings ----------------------
  const auto& db = recipe::IngredientDatabase::Embedded();
  for (const Part& p : parts) {
    const recipe::IngredientInfo* info = db.Find(p.name);
    double sg = info != nullptr ? info->specific_gravity : 1.0;
    double per_piece = info != nullptr ? info->grams_per_piece : 0.0;
    bool is_gel = info != nullptr &&
                  info->cls == recipe::IngredientClass::kGel;
    bool is_liquid =
        info != nullptr && (info->liquid_base ||
                            p.name == "milk" || p.name == "raw-cream" ||
                            p.name == "juice");
    std::string qty;
    double u = rng.NextDouble();
    if (is_gel) {
      if (u < 0.45) {
        qty = FormatAmount(RoundTo(p.grams, 0.5)) + " g";
      } else if (u < 0.75) {
        double tsp = RoundTo(p.grams / (5.0 * sg), 0.5);
        qty = FormatAmount(tsp) + " tsp";
      } else if (p.name == "gelatin" && u < 0.9) {
        // Posted as leaf gelatin sheets.
        double sheets = RoundTo(p.grams / 2.5, 0.5);
        qty = FormatAmount(sheets) + " sheets";
        r.ingredients.push_back({"gelatin-leaf", qty});
        continue;
      } else {
        double tbsp = RoundTo(p.grams / (15.0 * sg), 0.5);
        qty = FormatAmount(tbsp) + " tbsp";
      }
    } else if (per_piece > 0.0 && u < 0.6) {
      double pieces = RoundTo(p.grams / per_piece, 1.0);
      qty = FormatAmount(pieces) + (pieces > 1.5 ? " pieces" : " piece");
    } else if (is_liquid && u < 0.5) {
      double cc = RoundTo(p.grams / sg, 10.0);
      qty = FormatAmount(cc) + " cc";
    } else if (is_liquid && u < 0.8) {
      double cups = RoundTo(p.grams / (200.0 * sg), 0.25);
      qty = FormatAmount(cups) + (cups > 1.01 ? " cups" : " cup");
    } else if (p.name == "sugar" && u < 0.5) {
      double tbsp = RoundTo(p.grams / (15.0 * sg), 0.5);
      qty = FormatAmount(tbsp) + " tbsp";
    } else {
      qty = FormatAmount(RoundTo(p.grams, 1.0)) + " g";
    }
    r.ingredients.push_back({p.name, qty});
  }

  // --- Ground truth from the *quantized* recipe --------------------------
  TpaAttributes attributes;
  math::Vector gel_conc(recipe::kNumGelTypes);
  math::Vector emulsion_conc(recipe::kNumEmulsionTypes);
  auto conc_or = recipe::ComputeConcentrations(r, db);
  if (conc_or.ok()) {
    gel_conc = conc_or.value().gel;
    emulsion_conc = conc_or.value().emulsion;
    attributes = model_->Predict(gel_conc, emulsion_conc);
  }

  // --- Cooking steps and their rheological effects -----------------------
  // Food-science grounding: gelatin's collagen network hydrolyzes when
  // boiled (softer set); kanten/agar *require* a boil to dissolve; whipping
  // entrains air and raises springiness; a fast chill leaves less time for
  // syneresis (less surface stickiness); a slow set firms the network.
  std::vector<std::string> steps;
  if (config_.enable_cooking_steps) {
    bool gelatin_dominant =
        gel_conc[static_cast<size_t>(GelType::kGelatin)] * 2.0 >
        gel_conc.Sum();
    if (gelatin_dominant) {
      steps.push_back("bloom");
      if (rng.NextBernoulli(0.15)) {
        steps.push_back("boil");
        attributes.hardness *= 0.55;
      }
    } else {
      steps.push_back("boil");  // Required for kanten/agar; no damage.
    }
    double foam = emulsion_conc[static_cast<size_t>(
                      recipe::EmulsionType::kRawCream)] +
                  emulsion_conc[static_cast<size_t>(
                      recipe::EmulsionType::kEggAlbumen)];
    if (foam > 0.05 && rng.NextBernoulli(0.8)) {
      steps.push_back("whip");
      attributes.cohesiveness =
          std::min(0.95, attributes.cohesiveness + 0.12);
    }
    double u = rng.NextDouble();
    if (u < 0.35) {
      steps.push_back("quick-chill");
      attributes.adhesiveness *= 0.7;
    } else if (u < 0.7) {
      steps.push_back("slow-set");
      attributes.hardness *= 1.1;
    }
  }

  // --- Title & description ----------------------------------------------
  r.title = std::string(tmpl.name) + " no." + std::to_string(id);
  std::string desc;
  auto verb = [&rng]() { return kVerbs[rng.NextUint(std::size(kVerbs))]; };
  desc += "easy ";
  desc += tmpl.name;
  desc += " . ";
  desc += verb();
  desc += " the ";
  desc += r.ingredients.front().name;
  desc += " then ";
  desc += verb();
  desc += " with ";
  desc += r.ingredients.back().name;
  desc += " . ";
  if (!steps.empty()) {
    desc += "steps : ";
    desc += Join(steps, " then ");
    desc += " . ";
  }
  if (writes_texture) {
    int count = static_cast<int>(rng.NextInt(config_.min_terms,
                                             config_.max_terms));
    std::vector<std::string> terms = SampleTextureTerms(attributes, gel_conc, rng, count);
    desc += "the texture is ";
    desc += Join(terms, " and ");
    desc += " when chilled . ";
  }
  if (!topping_name.empty()) {
    // Confounder: a crunchy topping word next to a non-gel texture term.
    std::vector<const text::TextureTerm*> crunchy;
    for (const auto& t : dictionary_->terms()) {
      if (!t.gel_related && t.base_frequency > 0.1) crunchy.push_back(&t);
    }
    if (!crunchy.empty()) {
      const text::TextureTerm* t = crunchy[rng.NextUint(crunchy.size())];
      desc += "topped with ";
      desc += topping_name;
      desc += " for a ";
      desc += t->surface;
      desc += " accent with ";
      desc += topping_name;
      desc += " . ";
    }
  }
  if (!fruit_name.empty()) {
    desc += "served with ";
    desc += fruit_name;
    desc += " . ";
  }
  r.description = desc;

  // --- Metadata (never visible to the model) -----------------------------
  r.metadata[kMetaTemplate] = tmpl.name;
  r.metadata[kMetaGelLabel] =
      tmpl.gel2_hi > 0.0 ? std::string(gel_name(tmpl.gel1)) + "+" +
                               gel_name(tmpl.gel2)
                         : gel_name(tmpl.gel1);
  r.metadata[kMetaHardness] = FormatDouble(attributes.hardness, 4);
  r.metadata[kMetaCohesiveness] = FormatDouble(attributes.cohesiveness, 4);
  r.metadata[kMetaAdhesiveness] = FormatDouble(attributes.adhesiveness, 4);
  r.metadata[kMetaTextureClass] = std::to_string(TextureClassOf(attributes));
  if (!steps.empty()) r.metadata[kMetaSteps] = Join(steps, "+");
  return r;
}

int TextureClassOf(const TpaAttributes& attributes) {
  int hardness_class;
  if (attributes.hardness < 0.5) {
    hardness_class = 0;
  } else if (attributes.hardness < 2.5) {
    hardness_class = 1;
  } else {
    hardness_class = 2;
  }
  int sticky = attributes.adhesiveness >= 0.3 ? 1 : 0;
  return hardness_class * 2 + sticky;
}

int NumTextureClasses() { return 6; }

const char* TextureClassName(int cls) {
  switch (cls) {
    case 0:
      return "soft";
    case 1:
      return "soft-sticky";
    case 2:
      return "medium";
    case 3:
      return "medium-sticky";
    case 4:
      return "hard";
    case 5:
      return "hard-sticky";
    default:
      return "?";
  }
}

}  // namespace texrheo::corpus
