#include "eval/validation.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace texrheo::eval {
namespace {

// Spearman rank correlation between two equal-length series.
double SpearmanRank(const std::vector<double>& a,
                    const std::vector<double>& b) {
  size_t n = a.size();
  if (n < 3 || b.size() != n) return 0.0;
  auto ranks = [n](const std::vector<double>& v) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&v](size_t x, size_t y) { return v[x] < v[y]; });
    // Midranks: tied values share the average of their positions, which
    // matters here because pole shares saturate at 0 or 1.
    std::vector<double> r(n);
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
      double midrank = 0.5 * static_cast<double>(i + j);
      for (size_t x = i; x <= j; ++x) r[order[x]] = midrank;
      i = j + 1;
    }
    return r;
  };
  std::vector<double> ra = ranks(a), rb = ranks(b);
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += ra[i] / static_cast<double>(n);
    mb += rb[i] / static_cast<double>(n);
  }
  double num = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    num += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  double denom = std::sqrt(va * vb);
  return denom > 0.0 ? num / denom : 0.0;
}

// Median of the Table I values of one attribute.
double AttributeMedian(double rheology::TpaAttributes::*member) {
  std::vector<double> values;
  for (const auto& row : rheology::TableI()) {
    values.push_back(row.attributes.*member);
  }
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

texrheo::StatusOr<ValidationSummary> ValidateLinkage(
    const ExperimentResult& result) {
  const auto& dict = text::TextureDictionary::Embedded();
  if (result.setting_links.size() != rheology::TableI().size()) {
    return Status::FailedPrecondition(
        "validation requires one linkage per Table I row");
  }
  double hardness_median =
      AttributeMedian(&rheology::TpaAttributes::hardness);
  double cohesiveness_median =
      AttributeMedian(&rheology::TpaAttributes::cohesiveness);
  double adhesiveness_median =
      AttributeMedian(&rheology::TpaAttributes::adhesiveness);

  ValidationSummary summary;
  int checks = 0, agreements = 0;
  for (const auto& link : result.setting_links) {
    const auto& row =
        rheology::TableI()[static_cast<size_t>(link.setting_id - 1)];
    LinkageValidation v;
    v.setting_id = link.setting_id;
    v.topic = link.topic;

    // Phi-mass pole shares of the linked topic.
    double hard = 0, soft = 0, elastic = 0, crumbly = 0, sticky = 0, dry = 0;
    const auto& phi_k =
        result.estimates.phi[static_cast<size_t>(link.topic)];
    for (size_t term_id = 0; term_id < phi_k.size(); ++term_id) {
      const text::TextureTerm* term = dict.Find(
          result.dataset.term_vocab.WordOf(static_cast<int32_t>(term_id)));
      if (term == nullptr) continue;
      double mass = phi_k[term_id];
      hard += text::IsHardTerm(*term) ? mass : 0.0;
      soft += text::IsSoftTerm(*term) ? mass : 0.0;
      elastic += text::IsElasticTerm(*term) ? mass : 0.0;
      crumbly += text::IsCrumblyTerm(*term) ? mass : 0.0;
      sticky += text::IsStickyTerm(*term) ? mass : 0.0;
      if (term->axis == text::TextureAxis::kAdhesiveness &&
          term->polarity < 0) {
        dry += mass;
      }
    }
    auto share = [](double pole, double anti) {
      double total = pole + anti;
      return total > 0.0 ? pole / total : 0.5;
    };
    v.hard_share = share(hard, soft);
    v.elastic_share = share(elastic, crumbly);
    v.sticky_share = share(sticky, dry);

    v.expects_hard = row.attributes.hardness > hardness_median;
    v.expects_elastic = row.attributes.cohesiveness > cohesiveness_median;
    v.expects_sticky = row.attributes.adhesiveness > adhesiveness_median;

    v.hardness_consistent = v.expects_hard == (v.hard_share > 0.5);
    v.cohesiveness_consistent =
        v.expects_elastic == (v.elastic_share > 0.5);
    v.adhesiveness_consistent = v.expects_sticky == (v.sticky_share > 0.5);
    checks += 3;
    agreements += static_cast<int>(v.hardness_consistent) +
                  static_cast<int>(v.cohesiveness_consistent) +
                  static_cast<int>(v.adhesiveness_consistent);
    summary.rows.push_back(v);
  }
  summary.agreement =
      checks > 0 ? static_cast<double>(agreements) / checks : 0.0;
  // Rank correlations across rows: a shape statement that does not depend
  // on a threshold choice.
  std::vector<double> hardness, cohesiveness, adhesiveness;
  std::vector<double> hard_shares, elastic_shares, sticky_shares;
  for (const auto& v : summary.rows) {
    const auto& row =
        rheology::TableI()[static_cast<size_t>(v.setting_id - 1)];
    hardness.push_back(row.attributes.hardness);
    cohesiveness.push_back(row.attributes.cohesiveness);
    adhesiveness.push_back(row.attributes.adhesiveness);
    hard_shares.push_back(v.hard_share);
    elastic_shares.push_back(v.elastic_share);
    sticky_shares.push_back(v.sticky_share);
  }
  summary.hardness_rank_correlation = SpearmanRank(hardness, hard_shares);
  summary.cohesiveness_rank_correlation =
      SpearmanRank(cohesiveness, elastic_shares);
  summary.adhesiveness_rank_correlation =
      SpearmanRank(adhesiveness, sticky_shares);
  return summary;
}

std::string FormatValidation(const ValidationSummary& summary) {
  TablePrinter table({"Row", "Topic", "hard share", "expects hard",
                      "elastic share", "expects elastic", "sticky share",
                      "expects sticky", "axes consistent"});
  for (const auto& v : summary.rows) {
    int consistent = static_cast<int>(v.hardness_consistent) +
                     static_cast<int>(v.cohesiveness_consistent) +
                     static_cast<int>(v.adhesiveness_consistent);
    table.AddRow({std::to_string(v.setting_id), std::to_string(v.topic),
                  FormatDouble(v.hard_share, 2), v.expects_hard ? "y" : "n",
                  FormatDouble(v.elastic_share, 2),
                  v.expects_elastic ? "y" : "n",
                  FormatDouble(v.sticky_share, 2),
                  v.expects_sticky ? "y" : "n",
                  std::to_string(consistent) + "/3"});
  }
  return table.ToString() +
         StrFormat("overall (row, axis) agreement: %.0f%%\n",
                   100.0 * summary.agreement) +
         StrFormat(
             "Spearman rank correlations (attribute vs pole share): "
             "hardness %.2f, cohesiveness %.2f, adhesiveness %.2f\n",
             summary.hardness_rank_correlation,
             summary.cohesiveness_rank_correlation,
             summary.adhesiveness_rank_correlation);
}

}  // namespace texrheo::eval
