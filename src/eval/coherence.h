#ifndef TEXRHEO_EVAL_COHERENCE_H_
#define TEXRHEO_EVAL_COHERENCE_H_

#include <vector>

#include "core/joint_topic_model.h"
#include "recipe/dataset.h"
#include "util/status.h"

namespace texrheo::eval {

/// UMass topic coherence (Mimno et al. 2011 — the same group whose
/// polylingual topic model the paper builds on):
///   C(k) = sum_{i<j in top-N terms of k} log (D(w_i, w_j) + 1) / D(w_j),
/// where D(w) counts documents containing w and D(w_i, w_j) counts
/// co-occurrences. Higher (closer to zero) is better; incoherent topics
/// pair terms that never co-occur.
struct TopicCoherence {
  std::vector<double> per_topic;  ///< One score per topic.
  double mean = 0.0;
};

/// Computes UMass coherence of each topic's `top_n` most probable terms
/// over the dataset's documents. Topics whose phi row is empty (e.g. a
/// dead topic) score 0.
texrheo::StatusOr<TopicCoherence> ComputeUMassCoherence(
    const std::vector<std::vector<double>>& phi,
    const recipe::Dataset& dataset, int top_n = 8);

}  // namespace texrheo::eval

#endif  // TEXRHEO_EVAL_COHERENCE_H_
