#include "eval/convergence.h"

#include <algorithm>
#include <cmath>

#include "math/running_stats.h"

namespace texrheo::eval {
namespace {

// Autocovariance of the trace at the given lag (biased, 1/n normalizer,
// as customary for ESS estimation).
double Autocovariance(const std::vector<double>& trace, double mean,
                      size_t lag) {
  double sum = 0.0;
  for (size_t i = 0; i + lag < trace.size(); ++i) {
    sum += (trace[i] - mean) * (trace[i + lag] - mean);
  }
  return sum / static_cast<double>(trace.size());
}

}  // namespace

texrheo::StatusOr<GewekeResult> GewekeDiagnostic(
    const std::vector<double>& trace, double first, double last) {
  if (first <= 0.0 || last <= 0.0 || first + last > 1.0) {
    return Status::InvalidArgument("geweke: fractions must be positive and "
                                   "sum to at most 1");
  }
  size_t n = trace.size();
  size_t n_first = static_cast<size_t>(first * static_cast<double>(n));
  size_t n_last = static_cast<size_t>(last * static_cast<double>(n));
  if (n_first < 2 || n_last < 2) {
    return Status::InvalidArgument("geweke: trace too short");
  }
  math::RunningStats early, late;
  for (size_t i = 0; i < n_first; ++i) early.Add(trace[i]);
  for (size_t i = n - n_last; i < n; ++i) late.Add(trace[i]);
  GewekeResult result;
  result.early_mean = early.mean();
  result.late_mean = late.mean();
  double var = early.variance() / static_cast<double>(early.count()) +
               late.variance() / static_cast<double>(late.count());
  result.z_score = var > 0.0
                       ? (early.mean() - late.mean()) / std::sqrt(var)
                       : 0.0;
  return result;
}

texrheo::StatusOr<double> EffectiveSampleSize(
    const std::vector<double>& trace) {
  size_t n = trace.size();
  if (n < 4) return Status::InvalidArgument("ess: trace too short");
  math::RunningStats stats;
  for (double v : trace) stats.Add(v);
  double c0 = Autocovariance(trace, stats.mean(), 0);
  if (c0 <= 0.0) return static_cast<double>(n);  // Constant trace.

  // Geyer's initial positive sequence: sum pairs of autocovariances while
  // the pair sums stay positive.
  double rho_sum = 0.0;
  for (size_t lag = 1; lag + 1 < n; lag += 2) {
    double pair = Autocovariance(trace, stats.mean(), lag) +
                  Autocovariance(trace, stats.mean(), lag + 1);
    if (pair <= 0.0) break;
    rho_sum += pair / c0;
  }
  double ess = static_cast<double>(n) / (1.0 + 2.0 * rho_sum);
  return std::clamp(ess, 1.0, static_cast<double>(n));
}

texrheo::StatusOr<double> PotentialScaleReduction(
    const std::vector<std::vector<double>>& chains) {
  if (chains.size() < 2) {
    return Status::InvalidArgument("r-hat: need >= 2 chains");
  }
  size_t n = chains.front().size();
  if (n < 4) return Status::InvalidArgument("r-hat: chains too short");
  for (const auto& chain : chains) {
    if (chain.size() != n) {
      return Status::InvalidArgument("r-hat: chains must have equal length");
    }
  }
  double m = static_cast<double>(chains.size());
  double nn = static_cast<double>(n);

  std::vector<double> chain_means;
  double grand_mean = 0.0;
  double within = 0.0;
  for (const auto& chain : chains) {
    math::RunningStats stats;
    for (double v : chain) stats.Add(v);
    chain_means.push_back(stats.mean());
    grand_mean += stats.mean() / m;
    within += stats.variance() / m;
  }
  double between = 0.0;
  for (double mean : chain_means) {
    between += (mean - grand_mean) * (mean - grand_mean);
  }
  between *= nn / (m - 1.0);
  if (within <= 0.0) return 1.0;  // All chains constant and equal-ish.
  double var_plus = (nn - 1.0) / nn * within + between / nn;
  return std::sqrt(var_plus / within);
}

}  // namespace texrheo::eval
