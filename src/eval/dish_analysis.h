#ifndef TEXRHEO_EVAL_DISH_ANALYSIS_H_
#define TEXRHEO_EVAL_DISH_ANALYSIS_H_

#include <vector>

#include "eval/experiment.h"
#include "eval/figures.h"
#include "rheology/empirical_data.h"
#include "util/status.h"

namespace texrheo::eval {

/// Section V.B of the paper applied to one emulsion-gel dish: assign the
/// dish to its most similar topic by gel KL, rank that topic's recipes by
/// emulsion-concentration KL, and derive the Figure 3 histograms and
/// Figure 4 scatter data.
struct DishAnalysis {
  std::string dish_name;
  int assigned_topic = 0;
  double assignment_divergence = 0.0;
  /// Recipes of the assigned topic, nearest emulsion profile first.
  std::vector<RankedRecipe> ranked;
  /// Figure 3 bins (hard/soft and elastic/crumbly tallies per KL band).
  std::vector<Fig3Bin> fig3_bins;
  /// Figure 4 scatter points with KL color buckets.
  std::vector<Fig4Point> fig4_points;
  /// The topic's own centroid on the consolidated axes (the "star").
  Fig4Point topic_centroid;
};

/// Runs the full Section V.B analysis for `dish` against a trained
/// experiment result.
texrheo::StatusOr<DishAnalysis> AnalyzeDish(
    const ExperimentResult& result, const rheology::EmulsionDish& dish,
    int fig3_bins = 6);

}  // namespace texrheo::eval

#endif  // TEXRHEO_EVAL_DISH_ANALYSIS_H_
