#ifndef TEXRHEO_EVAL_HELDOUT_H_
#define TEXRHEO_EVAL_HELDOUT_H_

#include <cstdint>

#include "core/joint_topic_model.h"
#include "recipe/dataset.h"
#include "util/status.h"

namespace texrheo::eval {

/// A train/test split of a model dataset. Both halves share the full
/// term vocabulary so phi rows line up.
struct HeldOutSplit {
  recipe::Dataset train;
  recipe::Dataset test;
};

/// Randomly assigns each document to test with probability `test_fraction`.
HeldOutSplit SplitDataset(const recipe::Dataset& dataset,
                          double test_fraction, uint64_t seed);

/// The paper's end task, as a measurable quantity: predict a recipe's
/// sensory texture terms from its concentration vectors alone.
/// For each held-out document,
///   p(w | g, e) = sum_k p(k | g, e) phi_k(w),
///   p(k | g, e) propto (recipe_count_k + alpha) N(g | topic k) [N(e | .)],
/// and the score is exp(-mean log p) over all held-out term tokens.
/// Lower is better; compare against UnigramPerplexity to see how much the
/// concentrations inform the terms.
texrheo::StatusOr<double> ConcentrationConditionalPerplexity(
    const core::TopicEstimates& estimates,
    const core::JointTopicModelConfig& config, const recipe::Dataset& test);

/// Reference point: perplexity of the same tokens under the train-side
/// unigram distribution (add-one smoothed), which ignores concentrations.
texrheo::StatusOr<double> UnigramPerplexity(const recipe::Dataset& train,
                                            const recipe::Dataset& test);

}  // namespace texrheo::eval

#endif  // TEXRHEO_EVAL_HELDOUT_H_
