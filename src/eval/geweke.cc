#include "eval/geweke.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <numeric>
#include <type_traits>
#include <utility>

#include "core/collapsed_sampler.h"
#include "math/running_stats.h"
#include "util/rng.h"

namespace texrheo::eval {
namespace {

using core::CollapsedJointTopicModel;
using core::JointTopicModel;
using core::JointTopicModelConfig;
using recipe::Dataset;
using recipe::Document;

size_t SampleCategorical(Rng& rng, const math::Vector& probs) {
  return rng.NextCategorical(probs.data());
}

/// Skeleton dataset with the harness geometry: every document has
/// tokens_per_doc tokens and a gel feature of the prior's dimension. Token
/// ids and features are overwritten by forward/successive sampling.
Dataset SkeletonDataset(const GewekeConfig& cfg) {
  Dataset ds;
  for (size_t v = 0; v < cfg.vocab_size; ++v) {
    ds.term_vocab.Add("t" + std::to_string(v));
  }
  size_t gel_dim = cfg.gel_prior.dim();
  for (size_t d = 0; d < cfg.num_docs; ++d) {
    Document doc;
    doc.recipe_index = d;
    doc.term_ids.assign(cfg.tokens_per_doc, 0);
    doc.gel_feature = math::Vector(gel_dim, 0.0);
    // Emulsion features are not part of the tested joint
    // (use_emulsion_likelihood = false) and stay constant.
    doc.emulsion_feature = math::Vector(1, 0.0);
    doc.gel_concentration = math::Vector(gel_dim, 0.01);
    doc.emulsion_concentration = math::Vector(1, 0.1);
    ds.documents.push_back(std::move(doc));
  }
  return ds;
}

/// One draw of (theta, phi, Gaussians, z, y, data) from the prior — the
/// marginal-conditional side of the Geweke test.
texrheo::Status ForwardSampleInto(const GewekeConfig& cfg, Rng& rng,
                                  Dataset& ds,
                                  std::vector<std::vector<int>>& z,
                                  std::vector<int>& y) {
  size_t k_count = static_cast<size_t>(cfg.num_topics);
  std::vector<math::Vector> phi;
  phi.reserve(k_count);
  std::vector<math::Gaussian> gaussians;
  gaussians.reserve(k_count);
  for (size_t k = 0; k < k_count; ++k) {
    phi.push_back(math::DirichletSample(rng, cfg.vocab_size, cfg.gamma));
    TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian g,
                             math::NormalWishartSample(rng, cfg.gel_prior));
    gaussians.push_back(std::move(g));
  }
  z.assign(ds.documents.size(), {});
  y.assign(ds.documents.size(), 0);
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    math::Vector theta =
        math::DirichletSample(rng, k_count, cfg.alpha);
    Document& doc = ds.documents[d];
    z[d].resize(doc.term_ids.size());
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t k = SampleCategorical(rng, theta);
      z[d][n] = static_cast<int>(k);
      doc.term_ids[n] =
          static_cast<int32_t>(SampleCategorical(rng, phi[k]));
    }
    size_t yk = SampleCategorical(rng, theta);
    y[d] = static_cast<int>(yk);
    doc.gel_feature = gaussians[yk].Sample(rng);
  }
  return Status::OK();
}

/// Test statistics over the joint state. Functions of (z, y, data) so the
/// forward and successive sides compute exactly the same quantities.
std::vector<double> JointStatistics(const Dataset& ds,
                                    const std::vector<std::vector<int>>& z,
                                    const std::vector<int>& y) {
  double g_mean = 0.0, g_second = 0.0;
  double term0 = 0.0, z_eq_y = 0.0, tokens = 0.0;
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    const Document& doc = ds.documents[d];
    double g = doc.gel_feature[0];
    g_mean += g;
    g_second += g * g;
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      tokens += 1.0;
      if (doc.term_ids[n] == 0) term0 += 1.0;
      if (z[d][n] == y[d]) z_eq_y += 1.0;
    }
  }
  double d_count = static_cast<double>(ds.documents.size());
  return {g_mean / d_count, g_second / d_count, term0 / tokens,
          z_eq_y / tokens};
}

const char* kStatisticNames[] = {"mean gel", "mean gel^2", "freq(term 0)",
                                 "frac z == y"};

/// The successive-conditional data step: resample every observable from its
/// exact conditional given the latent assignments. Words come from the
/// collapsed Dirichlet-multinomial predictive (sequential scan); gel
/// features from a fresh Normal-Wishart posterior draw of each topic's
/// Gaussian (a valid auxiliary-variable step for both samplers).
texrheo::Status ResampleDataGivenLatents(
    const GewekeConfig& cfg, Rng& rng,
    const std::vector<std::vector<int>>& z, const std::vector<int>& y,
    Dataset& ds) {
  size_t k_count = static_cast<size_t>(cfg.num_topics);
  // Token step.
  std::vector<std::vector<double>> n_kv(
      k_count, std::vector<double>(cfg.vocab_size, 0.0));
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    for (size_t n = 0; n < ds.documents[d].term_ids.size(); ++n) {
      ++n_kv[static_cast<size_t>(z[d][n])]
            [static_cast<size_t>(ds.documents[d].term_ids[n])];
    }
  }
  std::vector<double> weights(cfg.vocab_size);
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    Document& doc = ds.documents[d];
    for (size_t n = 0; n < doc.term_ids.size(); ++n) {
      size_t k = static_cast<size_t>(z[d][n]);
      size_t v_old = static_cast<size_t>(doc.term_ids[n]);
      --n_kv[k][v_old];
      for (size_t v = 0; v < cfg.vocab_size; ++v) {
        weights[v] = n_kv[k][v] + cfg.gamma;
      }
      size_t v_new = rng.NextCategorical(weights);
      doc.term_ids[n] = static_cast<int32_t>(v_new);
      ++n_kv[k][v_new];
    }
  }
  // Feature step.
  size_t gel_dim = cfg.gel_prior.dim();
  std::vector<math::Gaussian> gaussians;
  gaussians.reserve(k_count);
  for (size_t k = 0; k < k_count; ++k) {
    math::RunningMoments moments(gel_dim);
    for (size_t d = 0; d < ds.documents.size(); ++d) {
      if (static_cast<size_t>(y[d]) == k) {
        moments.Add(ds.documents[d].gel_feature);
      }
    }
    math::NormalWishartParams post = cfg.gel_prior.Posterior(
        moments.count(), moments.Mean(), moments.Scatter());
    TEXRHEO_ASSIGN_OR_RETURN(math::Gaussian g,
                             math::NormalWishartSample(rng, post));
    gaussians.push_back(std::move(g));
  }
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    ds.documents[d].gel_feature =
        gaussians[static_cast<size_t>(y[d])].Sample(rng);
  }
  return Status::OK();
}

struct SeriesStats {
  double mean = 0.0;
  double variance = 0.0;
  double effective_n = 0.0;
};

/// Mean/variance with a lag-1 autocorrelation effective-sample-size
/// correction (the successive-conditional draws are a Markov chain even
/// after thinning).
SeriesStats Summarize(const std::vector<double>& xs) {
  SeriesStats s;
  double n = static_cast<double>(xs.size());
  if (xs.empty()) return s;
  for (double x : xs) s.mean += x;
  s.mean /= n;
  double c0 = 0.0, c1 = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    c0 += (xs[i] - s.mean) * (xs[i] - s.mean);
    if (i + 1 < xs.size()) {
      c1 += (xs[i] - s.mean) * (xs[i + 1] - s.mean);
    }
  }
  s.variance = c0 / std::max(n - 1.0, 1.0);
  double rho = c0 > 0.0 ? std::clamp(c1 / c0, 0.0, 0.99) : 0.0;
  s.effective_n = n * (1.0 - rho) / (1.0 + rho);
  return s;
}

JointTopicModelConfig HarnessModelConfig(const GewekeConfig& cfg,
                                         uint64_t seed) {
  JointTopicModelConfig model;
  model.num_topics = cfg.num_topics;
  model.alpha = cfg.alpha;
  model.gamma = cfg.gamma;
  model.auto_prior = false;
  model.gel_prior = cfg.gel_prior;
  // The emulsion Gaussian is outside the tested joint (flag below is off)
  // but the model still validates and tracks it; any valid prior works.
  model.emulsion_prior = cfg.gel_prior;
  model.use_emulsion_likelihood = false;
  model.num_threads = 1;
  model.sparse_sampler = cfg.sparse_sampler;
  model.alias_rebuild_interval = cfg.alias_rebuild_interval;
  model.mh_steps = cfg.mh_steps;
  model.seed = seed;
  return model;
}

math::NormalWishartParams DefaultGelPrior() {
  math::NormalWishartParams nw;
  nw.mu0 = math::Vector(1, 0.0);
  nw.beta = 1.0;
  nw.nu = 3.0;
  nw.scale = math::Matrix::Identity(1, 0.5);
  return nw;
}

}  // namespace

texrheo::StatusOr<GewekeResult> RunGewekeTest(const GewekeConfig& config) {
  GewekeConfig cfg = config;
  if (cfg.gel_prior.dim() == 0) cfg.gel_prior = DefaultGelPrior();
  if (cfg.gel_prior.dim() != 1) {
    // The emulsion skeleton and the `mean gel` statistics read coordinate 0;
    // multivariate priors would silently test less than they claim.
    return Status::InvalidArgument("geweke: gel prior must be 1-D");
  }
  TEXRHEO_RETURN_IF_ERROR(cfg.gel_prior.Validate());
  if (cfg.num_topics < 1 || cfg.vocab_size < 2 || cfg.num_docs < 1 ||
      cfg.tokens_per_doc < 1) {
    return Status::InvalidArgument("geweke: degenerate model geometry");
  }
  if (cfg.forward_samples < 2 || cfg.gibbs_samples < 2 || cfg.thin < 1 ||
      cfg.burn_in < 0) {
    return Status::InvalidArgument("geweke: degenerate sample schedule");
  }
  if (cfg.sparse_sampler && cfg.sampler != SamplerKind::kInstantiated) {
    return Status::InvalidArgument(
        "geweke: sparse_sampler applies to the instantiated sampler only");
  }

  size_t num_stats = std::size(kStatisticNames);

  // Marginal-conditional side: independent forward replicates.
  Rng forward_rng = Rng::ForStream(cfg.seed, 1);
  Dataset forward_ds = SkeletonDataset(cfg);
  std::vector<std::vector<int>> z;
  std::vector<int> y;
  std::vector<std::vector<double>> forward_series(num_stats);
  for (int r = 0; r < cfg.forward_samples; ++r) {
    TEXRHEO_RETURN_IF_ERROR(ForwardSampleInto(cfg, forward_rng, forward_ds,
                                              z, y));
    std::vector<double> stats = JointStatistics(forward_ds, z, y);
    for (size_t i = 0; i < num_stats; ++i) {
      forward_series[i].push_back(stats[i]);
    }
  }

  // Successive-conditional side: production Gibbs transition over latents,
  // harness data step, model resync.
  Rng data_rng = Rng::ForStream(cfg.seed, 2);
  Dataset gibbs_ds = SkeletonDataset(cfg);
  // Start the chain from a forward draw so it begins at stationarity when
  // the sampler is correct (burn_in then only mops up an incorrect start).
  TEXRHEO_RETURN_IF_ERROR(ForwardSampleInto(cfg, data_rng, gibbs_ds, z, y));
  JointTopicModelConfig model_config =
      HarnessModelConfig(cfg, Rng::StreamSeed(cfg.seed, 3));

  std::vector<std::vector<double>> gibbs_series(num_stats);
  auto run_chain = [&](auto& model) -> texrheo::Status {
    int iterations = cfg.burn_in + cfg.gibbs_samples * cfg.thin;
    for (int it = 0; it < iterations; ++it) {
      TEXRHEO_RETURN_IF_ERROR(model.RunSweeps(1));
      TEXRHEO_RETURN_IF_ERROR(ResampleDataGivenLatents(
          cfg, data_rng, model.z(), model.y(), gibbs_ds));
      TEXRHEO_RETURN_IF_ERROR(model.ResyncWithData());
      if (it >= cfg.burn_in && (it - cfg.burn_in) % cfg.thin == 0) {
        std::vector<double> stats =
            JointStatistics(gibbs_ds, model.z(), model.y());
        for (size_t i = 0; i < num_stats; ++i) {
          gibbs_series[i].push_back(stats[i]);
        }
      }
    }
    return Status::OK();
  };
  if (cfg.sampler == SamplerKind::kInstantiated) {
    TEXRHEO_ASSIGN_OR_RETURN(
        JointTopicModel model,
        JointTopicModel::Create(model_config, &gibbs_ds));
    TEXRHEO_RETURN_IF_ERROR(run_chain(model));
  } else {
    TEXRHEO_ASSIGN_OR_RETURN(
        CollapsedJointTopicModel model,
        CollapsedJointTopicModel::Create(model_config, &gibbs_ds));
    TEXRHEO_RETURN_IF_ERROR(run_chain(model));
  }

  GewekeResult result;
  for (size_t i = 0; i < num_stats; ++i) {
    SeriesStats f = Summarize(forward_series[i]);
    SeriesStats g = Summarize(gibbs_series[i]);
    double se = std::sqrt(f.variance / std::max(f.effective_n, 1.0) +
                          g.variance / std::max(g.effective_n, 1.0));
    double zscore = se > 0.0 ? (f.mean - g.mean) / se : 0.0;
    result.statistic_names.push_back(kStatisticNames[i]);
    result.forward_mean.push_back(f.mean);
    result.gibbs_mean.push_back(g.mean);
    result.z_scores.push_back(zscore);
    result.max_abs_z = std::max(result.max_abs_z, std::abs(zscore));
  }
  return result;
}

namespace {

/// Posterior-moment accumulator shared by the serial and parallel runs.
struct MomentAccumulator {
  std::vector<std::vector<double>> phi;   // [k][v]
  std::vector<double> topic_share;        // [k]
  std::vector<math::Vector> gel_mean;     // [k]
  int samples = 0;

  MomentAccumulator(int k, size_t v, size_t gel_dim)
      : phi(static_cast<size_t>(k), std::vector<double>(v, 0.0)),
        topic_share(static_cast<size_t>(k), 0.0),
        gel_mean(static_cast<size_t>(k), math::Vector(gel_dim, 0.0)) {}

  void Add(const core::TopicEstimates& est) {
    for (size_t k = 0; k < phi.size(); ++k) {
      for (size_t v = 0; v < phi[k].size(); ++v) phi[k][v] += est.phi[k][v];
      gel_mean[k] += est.gel_topics[k].mean();
      for (size_t d = 0; d < est.theta.size(); ++d) {
        topic_share[k] += est.theta[d][k] /
                          static_cast<double>(est.theta.size());
      }
    }
    ++samples;
  }

  void Finalize() {
    double n = static_cast<double>(std::max(samples, 1));
    for (auto& row : phi) {
      for (double& x : row) x /= n;
    }
    for (double& x : topic_share) x /= n;
    for (auto& m : gel_mean) m *= 1.0 / n;
  }
};

template <typename Model>
texrheo::Status AccumulateMoments(Model& model, int burn_in, int measure,
                                  MomentAccumulator& acc) {
  TEXRHEO_RETURN_IF_ERROR(model.RunSweeps(burn_in));
  for (int s = 0; s < measure; ++s) {
    TEXRHEO_RETURN_IF_ERROR(model.RunSweeps(1));
    if constexpr (std::is_same_v<Model, CollapsedJointTopicModel>) {
      TEXRHEO_ASSIGN_OR_RETURN(core::TopicEstimates est, model.Estimate());
      acc.Add(est);
    } else {
      acc.Add(model.Estimate());
    }
  }
  acc.Finalize();
  return Status::OK();
}

texrheo::Status RunMoments(const JointTopicModelConfig& config,
                           const Dataset& dataset, SamplerKind sampler,
                           int burn_in, int measure, MomentAccumulator& acc) {
  if (sampler == SamplerKind::kInstantiated) {
    TEXRHEO_ASSIGN_OR_RETURN(JointTopicModel model,
                             JointTopicModel::Create(config, &dataset));
    return AccumulateMoments(model, burn_in, measure, acc);
  }
  TEXRHEO_ASSIGN_OR_RETURN(CollapsedJointTopicModel model,
                           CollapsedJointTopicModel::Create(config, &dataset));
  return AccumulateMoments(model, burn_in, measure, acc);
}

}  // namespace

texrheo::StatusOr<MomentEquivalenceResult> CompareSerialVsParallelMoments(
    const core::JointTopicModelConfig& base_config,
    const recipe::Dataset& dataset, SamplerKind sampler, int parallel_threads,
    int burn_in_sweeps, int measure_sweeps) {
  if (parallel_threads < 2) {
    return Status::InvalidArgument(
        "moment equivalence: parallel_threads must be >= 2");
  }
  JointTopicModelConfig serial_config = base_config;
  serial_config.num_threads = 1;
  JointTopicModelConfig parallel_config = base_config;
  parallel_config.num_threads = parallel_threads;
  return CompareConfigsMoments(serial_config, parallel_config, dataset,
                               sampler, burn_in_sweeps, measure_sweeps);
}

texrheo::StatusOr<MomentEquivalenceResult> CompareConfigsMoments(
    const core::JointTopicModelConfig& config_a,
    const core::JointTopicModelConfig& config_b,
    const recipe::Dataset& dataset, SamplerKind sampler, int burn_in_sweeps,
    int measure_sweeps) {
  if (config_a.num_topics != config_b.num_topics) {
    return Status::InvalidArgument(
        "moment equivalence: configs must share num_topics");
  }
  if (config_a.num_topics > 8) {
    return Status::InvalidArgument(
        "moment equivalence: topic alignment enumerates permutations; "
        "num_topics must be <= 8");
  }
  if (dataset.documents.empty()) {
    return Status::InvalidArgument("moment equivalence: empty dataset");
  }
  size_t gel_dim = dataset.documents.front().gel_feature.size();
  size_t k_count = static_cast<size_t>(config_a.num_topics);

  MomentAccumulator serial_acc(config_a.num_topics,
                               dataset.term_vocab.size(), gel_dim);
  MomentAccumulator parallel_acc(config_a.num_topics,
                                 dataset.term_vocab.size(), gel_dim);
  TEXRHEO_RETURN_IF_ERROR(RunMoments(config_a, dataset, sampler,
                                     burn_in_sweeps, measure_sweeps,
                                     serial_acc));
  TEXRHEO_RETURN_IF_ERROR(RunMoments(config_b, dataset, sampler,
                                     burn_in_sweeps, measure_sweeps,
                                     parallel_acc));

  // Align the second run's topics to the first run's: pick the
  // permutation minimizing total L1 distance between mean phi rows.
  std::vector<size_t> perm(k_count);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<size_t> best_perm = perm;
  double best_cost = std::numeric_limits<double>::infinity();
  do {
    double cost = 0.0;
    for (size_t k = 0; k < k_count; ++k) {
      for (size_t v = 0; v < serial_acc.phi[k].size(); ++v) {
        cost += std::abs(serial_acc.phi[k][v] - parallel_acc.phi[perm[k]][v]);
      }
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_perm = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  MomentEquivalenceResult result;
  for (size_t k = 0; k < k_count; ++k) {
    size_t pk = best_perm[k];
    for (size_t v = 0; v < serial_acc.phi[k].size(); ++v) {
      result.phi_max_abs_diff =
          std::max(result.phi_max_abs_diff,
                   std::abs(serial_acc.phi[k][v] - parallel_acc.phi[pk][v]));
    }
    result.topic_share_max_abs_diff = std::max(
        result.topic_share_max_abs_diff,
        std::abs(serial_acc.topic_share[k] - parallel_acc.topic_share[pk]));
    for (size_t i = 0; i < gel_dim; ++i) {
      result.gel_mean_max_abs_diff =
          std::max(result.gel_mean_max_abs_diff,
                   std::abs(serial_acc.gel_mean[k][i] -
                            parallel_acc.gel_mean[pk][i]));
    }
  }
  return result;
}

}  // namespace texrheo::eval
