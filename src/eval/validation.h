#ifndef TEXRHEO_EVAL_VALIDATION_H_
#define TEXRHEO_EVAL_VALIDATION_H_

#include <string>
#include <vector>

#include "eval/experiment.h"
#include "rheology/empirical_data.h"
#include "text/texture_dictionary.h"
#include "util/status.h"

namespace texrheo::eval {

/// The paper's linkage-validation step (Section III.C.4): "the linkages are
/// validated by referring to the dictionary, where each texture term is
/// annotated by the category representing quantitative attributes."
///
/// For each Table I row, compare the *measured* attribute profile against
/// the *dictionary categories* of the linked topic's top terms: a row with
/// high measured hardness should link to a topic whose phi mass leans to
/// hard-pole terms, a row with high cohesiveness to elastic-pole terms, a
/// row with high adhesiveness to sticky-pole terms.
struct LinkageValidation {
  int setting_id = 0;
  int topic = 0;
  /// Phi-mass shares of the linked topic on each dictionary pole
  /// (mass on the pole divided by mass on the axis; 0.5 = neutral).
  double hard_share = 0.5;     ///< hard / (hard + soft).
  double elastic_share = 0.5;  ///< elastic / (elastic + crumbly).
  double sticky_share = 0.5;   ///< sticky / (sticky + dry).
  /// The poles the measured attributes point to.
  bool expects_hard = false;     ///< hardness above the Table I median.
  bool expects_elastic = false;  ///< cohesiveness above the median.
  bool expects_sticky = false;   ///< adhesiveness above the median.
  /// Per-axis agreement between expectation and share.
  bool hardness_consistent = false;
  bool cohesiveness_consistent = false;
  bool adhesiveness_consistent = false;
};

/// Validation summary over all rows.
struct ValidationSummary {
  std::vector<LinkageValidation> rows;
  /// Fraction of (row, axis) checks that agree, in [0, 1].
  double agreement = 0.0;
  /// Spearman rank correlations between each measured attribute and the
  /// linked topic's corresponding pole share across the 13 rows; positive
  /// values mean harder settings link to harder-vocabulary topics etc.
  double hardness_rank_correlation = 0.0;
  double cohesiveness_rank_correlation = 0.0;
  double adhesiveness_rank_correlation = 0.0;
};

/// Runs the validation for every Table I row of a trained experiment.
texrheo::StatusOr<ValidationSummary> ValidateLinkage(
    const ExperimentResult& result);

/// Renders the validation as an aligned ASCII table.
std::string FormatValidation(const ValidationSummary& summary);

}  // namespace texrheo::eval

#endif  // TEXRHEO_EVAL_VALIDATION_H_
