#include "eval/figures.h"

#include <algorithm>

#include "math/divergence.h"

namespace texrheo::eval {

TermCategoryCounts CountCategories(const recipe::Document& doc,
                                   const text::Vocabulary& vocab,
                                   const text::TextureDictionary& dict) {
  TermCategoryCounts counts;
  for (int32_t id : doc.term_ids) {
    const text::TextureTerm* term = dict.Find(vocab.WordOf(id));
    if (term == nullptr) continue;
    ++counts.total;
    if (text::IsHardTerm(*term)) ++counts.hard;
    if (text::IsSoftTerm(*term)) ++counts.soft;
    if (text::IsElasticTerm(*term)) ++counts.elastic;
    if (text::IsCrumblyTerm(*term)) ++counts.crumbly;
    if (text::IsStickyTerm(*term)) ++counts.sticky;
    if (term->axis == text::TextureAxis::kAdhesiveness && term->polarity < 0) {
      ++counts.dry;
    }
  }
  return counts;
}

texrheo::StatusOr<std::vector<RankedRecipe>> RankByEmulsionKL(
    const recipe::Dataset& dataset, const std::vector<size_t>& doc_indices,
    const math::Vector& dish_emulsion_concentration, double smoothing) {
  std::vector<RankedRecipe> ranked;
  ranked.reserve(doc_indices.size());
  for (size_t idx : doc_indices) {
    if (idx >= dataset.documents.size()) {
      return Status::OutOfRange("document index out of range");
    }
    TEXRHEO_ASSIGN_OR_RETURN(
        double kl,
        math::DiscreteKL(dataset.documents[idx].emulsion_concentration,
                         dish_emulsion_concentration, smoothing));
    ranked.push_back(RankedRecipe{idx, kl});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedRecipe& a, const RankedRecipe& b) {
              return a.divergence < b.divergence;
            });
  return ranked;
}

texrheo::StatusOr<std::vector<Fig3Bin>> BuildFig3Histogram(
    const recipe::Dataset& dataset, const std::vector<RankedRecipe>& ranked,
    const text::TextureDictionary& dict, int num_bins) {
  if (num_bins < 1) return Status::InvalidArgument("num_bins < 1");
  std::vector<Fig3Bin> bins(static_cast<size_t>(num_bins));
  if (ranked.empty()) return bins;
  size_t per_bin =
      (ranked.size() + static_cast<size_t>(num_bins) - 1) /
      static_cast<size_t>(num_bins);
  for (size_t i = 0; i < ranked.size(); ++i) {
    size_t b = std::min(i / per_bin, bins.size() - 1);
    Fig3Bin& bin = bins[b];
    if (bin.recipes == 0) bin.kl_lo = ranked[i].divergence;
    bin.kl_hi = ranked[i].divergence;
    ++bin.recipes;
    TermCategoryCounts c = CountCategories(
        dataset.documents[ranked[i].doc_index], dataset.term_vocab, dict);
    bin.counts.hard += c.hard;
    bin.counts.soft += c.soft;
    bin.counts.elastic += c.elastic;
    bin.counts.crumbly += c.crumbly;
    bin.counts.sticky += c.sticky;
    bin.counts.dry += c.dry;
    bin.counts.total += c.total;
  }
  return bins;
}

namespace {

Fig4Point AxisPoint(const TermCategoryCounts& c) {
  Fig4Point p;
  if (c.total > 0) {
    p.hardness_score =
        static_cast<double>(c.hard - c.soft) / static_cast<double>(c.total);
    p.cohesiveness_score = static_cast<double>(c.elastic - c.crumbly) /
                           static_cast<double>(c.total);
  }
  return p;
}

}  // namespace

std::vector<Fig4Point> BuildFig4Points(
    const recipe::Dataset& dataset, const std::vector<RankedRecipe>& ranked,
    const text::TextureDictionary& dict) {
  std::vector<Fig4Point> points;
  points.reserve(ranked.size());
  size_t third = ranked.size() / 3 + 1;
  for (size_t i = 0; i < ranked.size(); ++i) {
    TermCategoryCounts c = CountCategories(
        dataset.documents[ranked[i].doc_index], dataset.term_vocab, dict);
    Fig4Point p = AxisPoint(c);
    p.doc_index = ranked[i].doc_index;
    p.divergence = ranked[i].divergence;
    p.kl_bucket = static_cast<int>(std::min<size_t>(i / third, 2));
    points.push_back(p);
  }
  return points;
}

Fig4Point AxisCentroid(const recipe::Dataset& dataset,
                       const std::vector<size_t>& doc_indices,
                       const text::TextureDictionary& dict) {
  TermCategoryCounts sum;
  for (size_t idx : doc_indices) {
    TermCategoryCounts c =
        CountCategories(dataset.documents[idx], dataset.term_vocab, dict);
    sum.hard += c.hard;
    sum.soft += c.soft;
    sum.elastic += c.elastic;
    sum.crumbly += c.crumbly;
    sum.sticky += c.sticky;
    sum.dry += c.dry;
    sum.total += c.total;
  }
  return AxisPoint(sum);
}

}  // namespace texrheo::eval
