#include "eval/coherence.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace texrheo::eval {

texrheo::StatusOr<TopicCoherence> ComputeUMassCoherence(
    const std::vector<std::vector<double>>& phi,
    const recipe::Dataset& dataset, int top_n) {
  if (phi.empty()) return Status::InvalidArgument("coherence: no topics");
  if (top_n < 2) return Status::InvalidArgument("coherence: top_n < 2");
  size_t vocab = dataset.term_vocab.size();
  for (const auto& row : phi) {
    if (row.size() != vocab) {
      return Status::InvalidArgument("coherence: phi/vocab size mismatch");
    }
  }

  // Document frequencies and pairwise co-occurrence counts, restricted to
  // the union of all topics' top terms (keeps the pair table small).
  std::set<int32_t> candidate_terms;
  std::vector<std::vector<int32_t>> top_terms(phi.size());
  for (size_t k = 0; k < phi.size(); ++k) {
    std::vector<int32_t> order(vocab);
    for (size_t v = 0; v < vocab; ++v) order[v] = static_cast<int32_t>(v);
    std::sort(order.begin(), order.end(), [&phi, k](int32_t a, int32_t b) {
      return phi[k][static_cast<size_t>(a)] > phi[k][static_cast<size_t>(b)];
    });
    for (int i = 0; i < top_n && i < static_cast<int>(order.size()); ++i) {
      // Skip terms with no support at all (dead vocabulary rows).
      if (phi[k][static_cast<size_t>(order[static_cast<size_t>(i)])] <=
          0.0) {
        break;
      }
      top_terms[k].push_back(order[static_cast<size_t>(i)]);
      candidate_terms.insert(order[static_cast<size_t>(i)]);
    }
  }

  std::map<int32_t, int> doc_freq;
  std::map<std::pair<int32_t, int32_t>, int> pair_freq;
  for (const auto& doc : dataset.documents) {
    std::set<int32_t> present;
    for (int32_t term : doc.term_ids) {
      if (candidate_terms.count(term)) present.insert(term);
    }
    for (int32_t a : present) {
      ++doc_freq[a];
      for (int32_t b : present) {
        if (a < b) ++pair_freq[{a, b}];
      }
    }
  }

  TopicCoherence result;
  result.per_topic.resize(phi.size(), 0.0);
  for (size_t k = 0; k < phi.size(); ++k) {
    const auto& terms = top_terms[k];
    double score = 0.0;
    for (size_t i = 1; i < terms.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        int32_t wi = terms[i], wj = terms[j];
        double co = static_cast<double>(
            pair_freq[{std::min(wi, wj), std::max(wi, wj)}]);
        double dj = static_cast<double>(doc_freq[wj]);
        if (dj > 0.0) score += std::log((co + 1.0) / dj);
      }
    }
    result.per_topic[k] = score;
    result.mean += score / static_cast<double>(phi.size());
  }
  return result;
}

}  // namespace texrheo::eval
