#ifndef TEXRHEO_EVAL_EXPERIMENT_H_
#define TEXRHEO_EVAL_EXPERIMENT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/joint_topic_model.h"
#include "core/linkage.h"
#include "corpus/generator.h"
#include "recipe/dataset.h"
#include "text/word2vec.h"
#include "util/status.h"

namespace texrheo::eval {

/// End-to-end experiment configuration: corpus -> word2vec screen ->
/// dataset funnel -> joint topic model -> empirical linkage.
struct ExperimentConfig {
  corpus::CorpusGenConfig corpus;
  recipe::DatasetConfig dataset;
  core::JointTopicModelConfig model;
  text::Word2VecConfig word2vec;
  text::GelRelatednessFilter::Config filter;
  bool use_word2vec_filter = true;
  core::LinkageOptions linkage;
};

/// Returns a configuration scaled down by `scale` (recipe count) with a
/// proportionally lighter Gibbs schedule; scale = 1.0 is the paper-sized
/// run (63,000 recipes).
ExperimentConfig DefaultExperimentConfig(double scale = 1.0);

/// Human-readable description of one recovered topic (one row of the
/// paper's Table II(a)).
struct TopicSummary {
  int topic = 0;
  int recipe_count = 0;
  /// Mean gel concentration of assigned recipes, e.g. "gelatin:0.012".
  std::string gel_description;
  /// Top terms with phi probabilities, descending.
  std::vector<std::pair<std::string, double>> top_terms;
  /// Table I setting ids whose nearest topic is this one.
  std::vector<int> linked_settings;
};

/// Everything the benches and examples need from one experiment run.
struct ExperimentResult {
  std::vector<recipe::Recipe> recipes;
  recipe::Dataset dataset;
  core::TopicEstimates estimates;
  /// Model config with resolved (auto) priors, needed for further linkage.
  core::JointTopicModelConfig resolved_model_config;
  std::vector<core::SettingLinkage> setting_links;  ///< One per Table I row.
  std::vector<TopicSummary> topics;                 ///< One per topic.
  double final_log_likelihood = 0.0;
};

/// Runs the full pipeline. Deterministic given the config seeds.
texrheo::StatusOr<ExperimentResult> RunJointExperiment(
    const ExperimentConfig& config);

/// Indices of dataset documents hard-assigned to `topic`.
std::vector<size_t> DocsInTopic(const core::TopicEstimates& estimates,
                                int topic);

/// Renders the Table II(a) reproduction as an aligned ASCII table.
std::string FormatTopicTable(const ExperimentResult& result);

}  // namespace texrheo::eval

#endif  // TEXRHEO_EVAL_EXPERIMENT_H_
