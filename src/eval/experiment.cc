#include "eval/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace texrheo::eval {

ExperimentConfig DefaultExperimentConfig(double scale) {
  ExperimentConfig config;
  config.corpus.num_recipes = static_cast<size_t>(
      std::max(200.0, 63000.0 * scale));
  config.model.num_topics = 10;
  config.model.sweeps = scale >= 0.5 ? 250 : 150;
  config.model.burn_in_sweeps = config.model.sweeps / 3;
  config.word2vec.dim = 32;
  config.word2vec.epochs = scale >= 0.5 ? 2 : 3;
  return config;
}

texrheo::StatusOr<ExperimentResult> RunJointExperiment(
    const ExperimentConfig& config) {
  ExperimentResult result;

  // 1. Synthetic Cookpad corpus.
  corpus::CorpusGenerator generator(config.corpus,
                                    &rheology::GelPhysicsModel::Calibrated(),
                                    &text::TextureDictionary::Embedded());
  result.recipes = generator.Generate();
  TEXRHEO_LOG(Info) << "generated " << result.recipes.size() << " recipes";

  // 2. word2vec gel-relatedness screen (paper Section III.A).
  std::unique_ptr<text::Word2Vec> w2v;
  std::unique_ptr<text::GelRelatednessFilter> filter;
  if (config.use_word2vec_filter) {
    std::vector<std::vector<std::string>> sentences;
    sentences.reserve(result.recipes.size());
    for (const auto& r : result.recipes) {
      sentences.push_back(text::Tokenizer::Tokenize(r.description));
    }
    TEXRHEO_ASSIGN_OR_RETURN(text::Word2Vec trained,
                             text::Word2Vec::Train(sentences, config.word2vec));
    w2v = std::make_unique<text::Word2Vec>(std::move(trained));
    filter = std::make_unique<text::GelRelatednessFilter>(
        w2v.get(), corpus::CorpusGenerator::ToppingIngredientNames(),
        config.filter);
    TEXRHEO_LOG(Info) << "word2vec trained, vocab " << w2v->vocab().size();
  }

  // 3. Dataset funnel.
  TEXRHEO_ASSIGN_OR_RETURN(
      result.dataset,
      recipe::BuildDataset(result.recipes,
                           recipe::IngredientDatabase::Embedded(),
                           text::TextureDictionary::Embedded(), filter.get(),
                           config.dataset));
  TEXRHEO_LOG(Info) << "dataset: " << result.dataset.documents.size()
                    << " documents, " << result.dataset.term_vocab.size()
                    << " distinct terms";
  if (result.dataset.documents.empty()) {
    return Status::FailedPrecondition(
        "experiment: dataset funnel produced no documents");
  }

  // 4. Joint topic model.
  TEXRHEO_ASSIGN_OR_RETURN(
      core::JointTopicModel model,
      core::JointTopicModel::Create(config.model, &result.dataset));
  TEXRHEO_RETURN_IF_ERROR(model.Train());
  result.estimates = model.Estimate();
  result.resolved_model_config = model.config();
  result.final_log_likelihood = model.LogJointLikelihood();
  TEXRHEO_LOG(Info) << "model trained, final LL "
                    << result.final_log_likelihood;

  // 5. Link Table I settings to topics.
  TEXRHEO_ASSIGN_OR_RETURN(
      result.setting_links,
      core::LinkSettingsToTopics(result.estimates, rheology::TableI(),
                                 config.dataset.feature, config.linkage));

  // 6. Per-topic summaries.
  int k_count = config.model.num_topics;
  for (int k = 0; k < k_count; ++k) {
    TopicSummary summary;
    summary.topic = k;
    summary.recipe_count =
        result.estimates.topic_recipe_count[static_cast<size_t>(k)];

    // The topic's gel concentrations are the expectation mu_k of its
    // Gaussian (paper Section III.B), mapped back from -log feature space.
    math::Vector mean_conc = recipe::FromFeature(
        result.estimates.gel_topics[static_cast<size_t>(k)].mean(),
        config.dataset.feature);
    std::vector<std::string> gel_parts;
    for (int g = 0; g < recipe::kNumGelTypes; ++g) {
      if (mean_conc[static_cast<size_t>(g)] >= 5e-4) {
        gel_parts.push_back(
            std::string(GelTypeName(static_cast<recipe::GelType>(g))) + ":" +
            FormatDouble(mean_conc[static_cast<size_t>(g)], 3));
      }
    }
    summary.gel_description = Join(gel_parts, " ");

    // Top terms by phi.
    const auto& phi_k = result.estimates.phi[static_cast<size_t>(k)];
    std::vector<size_t> order(phi_k.size());
    for (size_t v = 0; v < order.size(); ++v) order[v] = v;
    std::sort(order.begin(), order.end(),
              [&phi_k](size_t a, size_t b) { return phi_k[a] > phi_k[b]; });
    for (size_t rank = 0; rank < order.size() && rank < 10; ++rank) {
      size_t v = order[rank];
      if (phi_k[v] < 0.02) break;
      summary.top_terms.emplace_back(
          result.dataset.term_vocab.WordOf(static_cast<int32_t>(v)),
          phi_k[v]);
    }

    for (const auto& link : result.setting_links) {
      if (link.topic == k) summary.linked_settings.push_back(link.setting_id);
    }
    result.topics.push_back(std::move(summary));
  }
  return result;
}

std::vector<size_t> DocsInTopic(const core::TopicEstimates& estimates,
                                int topic) {
  std::vector<size_t> out;
  for (size_t d = 0; d < estimates.doc_topic.size(); ++d) {
    if (estimates.doc_topic[d] == topic) out.push_back(d);
  }
  return out;
}

std::string FormatTopicTable(const ExperimentResult& result) {
  TablePrinter table(
      {"Topic", "Gels:concentration", "Texture terms", "#Recipes", "Table I"});
  // Order topics by mean gel concentration label for readability
  // (paper groups gelatin topics, then mixes, then kanten).
  std::vector<const TopicSummary*> ordered;
  for (const auto& t : result.topics) ordered.push_back(&t);
  std::sort(ordered.begin(), ordered.end(),
            [](const TopicSummary* a, const TopicSummary* b) {
              return a->gel_description < b->gel_description;
            });
  for (const TopicSummary* t : ordered) {
    std::vector<std::string> term_parts;
    for (const auto& [term, prob] : t->top_terms) {
      term_parts.push_back(term + "(" + FormatDouble(prob, 3) + ")");
    }
    std::vector<std::string> link_parts;
    for (int id : t->linked_settings) link_parts.push_back(std::to_string(id));
    table.AddRow({std::to_string(t->topic), t->gel_description,
                  Join(term_parts, " "), std::to_string(t->recipe_count),
                  Join(link_parts, ",")});
  }
  return table.ToString();
}

}  // namespace texrheo::eval
