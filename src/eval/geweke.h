#ifndef TEXRHEO_EVAL_GEWEKE_H_
#define TEXRHEO_EVAL_GEWEKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/joint_topic_model.h"
#include "math/distributions.h"
#include "recipe/dataset.h"
#include "util/status.h"

namespace texrheo::eval {

/// Statistical sampler-correctness harness for the joint topic model's Gibbs
/// samplers. Two independent checks:
///
///  1. RunGewekeTest — a Geweke (2004) joint-distribution test. The same
///     joint p(latents, data) is sampled two ways: "marginal-conditional"
///     (latents from the prior, data forward-simulated once, independent
///     replicates) and "successive-conditional" (alternating the production
///     Gibbs transition over latents with an exact data-resampling step the
///     harness performs). If the sampler implements its conditionals
///     correctly, both chains target the same distribution and every test
///     statistic's two means agree up to Monte Carlo noise — quantified as
///     z-scores. Implementation or derivation bugs show up as |z| far above
///     the N(0,1) range.
///
///  2. CompareSerialVsParallelMoments — posterior-moment equivalence of the
///     serial chain (num_threads = 1) and the parallel AD-LDA style chain on
///     a fixed dataset: post-burn-in averages of phi, corpus-level topic
///     shares, and the per-topic gel posterior means must match within
///     statistical tolerance after alignment over topic permutations (the
///     chains mix to the same posterior only up to topic relabeling).

/// Which production sampler the harness drives.
enum class SamplerKind {
  kInstantiated,  ///< JointTopicModel (paper eq. 4, Gaussians instantiated).
  kCollapsed,     ///< CollapsedJointTopicModel (Rao-Blackwellized).
};

struct GewekeConfig {
  SamplerKind sampler = SamplerKind::kInstantiated;

  /// Model size. Kept tiny on purpose: Geweke power comes from many
  /// replicates of a small model, not from a big corpus.
  int num_topics = 2;
  size_t vocab_size = 3;
  size_t num_docs = 5;
  size_t tokens_per_doc = 4;
  double alpha = 0.8;
  double gamma = 0.6;
  /// Normal-Wishart prior on the per-topic gel Gaussian. Defaults (set by
  /// RunGewekeTest when left empty) to a vague 1-D prior.
  math::NormalWishartParams gel_prior;

  /// Drive the sparse/alias/MH z sampler instead of the dense one
  /// (kInstantiated only). With alias_rebuild_interval >> 1 the proposal
  /// tables go deliberately stale between rebuilds — the leg that certifies
  /// the MH correction leaves the stationary distribution exactly eq. 2
  /// even under a drifted proposal.
  bool sparse_sampler = false;
  int alias_rebuild_interval = 8;
  int mh_steps = 2;

  /// Marginal-conditional side: independent forward replicates.
  int forward_samples = 2000;
  /// Successive-conditional side: recorded samples, spaced `thin` Gibbs
  /// iterations apart after `burn_in` iterations.
  int gibbs_samples = 2000;
  int thin = 6;
  int burn_in = 300;

  uint64_t seed = 20220501;
};

struct GewekeResult {
  std::vector<std::string> statistic_names;
  std::vector<double> forward_mean;
  std::vector<double> gibbs_mean;
  /// Per-statistic z-scores; approximately N(0,1) for a correct sampler.
  /// The Gibbs side's variance is inflated by a lag-1 autocorrelation
  /// effective-sample-size correction.
  std::vector<double> z_scores;
  double max_abs_z = 0.0;
};

texrheo::StatusOr<GewekeResult> RunGewekeTest(const GewekeConfig& config);

struct MomentEquivalenceResult {
  /// Max abs difference between serial and parallel posterior-mean phi
  /// entries, after aligning topics by the best permutation.
  double phi_max_abs_diff = 0.0;
  /// Max abs difference of corpus-level topic shares (mean_d theta_dk).
  double topic_share_max_abs_diff = 0.0;
  /// Max abs difference of per-topic gel posterior-mean coordinates.
  double gel_mean_max_abs_diff = 0.0;
};

/// Trains one serial and one parallel chain of the chosen sampler on
/// `dataset` (burn_in_sweeps, then moments averaged over measure_sweeps) and
/// reports aligned posterior-moment differences. `base_config.num_threads`
/// is overridden (1 vs parallel_threads); requires num_topics <= 8 because
/// alignment enumerates topic permutations.
texrheo::StatusOr<MomentEquivalenceResult> CompareSerialVsParallelMoments(
    const core::JointTopicModelConfig& base_config,
    const recipe::Dataset& dataset, SamplerKind sampler, int parallel_threads,
    int burn_in_sweeps, int measure_sweeps);

/// General form: trains one chain per config on `dataset` and reports the
/// aligned posterior-moment differences between them. The two configs may
/// differ in any trajectory-shaping knob (thread count, sparse_sampler,
/// alias staleness, seed); both must share num_topics (<= 8, alignment
/// enumerates topic permutations). CompareSerialVsParallelMoments is the
/// thread-count specialization; the sparse-vs-dense equivalence tests use
/// this directly.
texrheo::StatusOr<MomentEquivalenceResult> CompareConfigsMoments(
    const core::JointTopicModelConfig& config_a,
    const core::JointTopicModelConfig& config_b,
    const recipe::Dataset& dataset, SamplerKind sampler, int burn_in_sweeps,
    int measure_sweeps);

}  // namespace texrheo::eval

#endif  // TEXRHEO_EVAL_GEWEKE_H_
