#ifndef TEXRHEO_EVAL_CONVERGENCE_H_
#define TEXRHEO_EVAL_CONVERGENCE_H_

#include <vector>

#include "util/status.h"

namespace texrheo::eval {

/// MCMC convergence diagnostics for the Gibbs samplers' likelihood traces.
/// The paper reports results "after the convergence of Gibbs sampling"
/// without a criterion; these are the standard tools for checking one.

/// Geweke (1992) diagnostic: compares the mean of the first `first`
/// fraction of the chain against the last `last` fraction. |z| < 2 is the
/// customary "no evidence against convergence" reading.
struct GewekeResult {
  double z_score = 0.0;
  double early_mean = 0.0;
  double late_mean = 0.0;
};
texrheo::StatusOr<GewekeResult> GewekeDiagnostic(
    const std::vector<double>& trace, double first = 0.1, double last = 0.5);

/// Effective sample size via the initial-positive-sequence estimator over
/// autocorrelations (Geyer 1992). Bounded to [1, n].
texrheo::StatusOr<double> EffectiveSampleSize(
    const std::vector<double>& trace);

/// Gelman-Rubin potential scale reduction factor (R-hat) over >= 2 chains
/// of equal length. Values near 1 indicate the chains agree.
texrheo::StatusOr<double> PotentialScaleReduction(
    const std::vector<std::vector<double>>& chains);

}  // namespace texrheo::eval

#endif  // TEXRHEO_EVAL_CONVERGENCE_H_
