#ifndef TEXRHEO_EVAL_METRICS_H_
#define TEXRHEO_EVAL_METRICS_H_

#include <vector>

#include "util/status.h"

namespace texrheo::eval {

/// External clustering quality scores against a reference labelling.
/// The synthetic corpus records ground-truth texture classes, so unlike the
/// paper (which could only inspect topics qualitatively) this reproduction
/// can score topic assignments directly.
struct ClusteringScores {
  double purity = 0.0;  ///< Fraction of items in their cluster's majority class.
  double nmi = 0.0;     ///< Normalized mutual information (arithmetic mean norm).
  double ari = 0.0;     ///< Adjusted Rand index.
};

/// Computes purity, NMI and ARI of `predicted` clusters against `truth`
/// labels. Labels may be any non-negative integers; the two vectors must
/// have equal, nonzero length.
texrheo::StatusOr<ClusteringScores> ScoreClustering(
    const std::vector<int>& predicted, const std::vector<int>& truth);

}  // namespace texrheo::eval

#endif  // TEXRHEO_EVAL_METRICS_H_
