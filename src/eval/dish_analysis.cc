#include "eval/dish_analysis.h"

#include "core/linkage.h"

namespace texrheo::eval {

texrheo::StatusOr<DishAnalysis> AnalyzeDish(
    const ExperimentResult& result, const rheology::EmulsionDish& dish,
    int fig3_bins) {
  DishAnalysis analysis;
  analysis.dish_name = dish.name;

  // 1. Topic assignment by gel-concentration similarity (as in Table II(b)).
  recipe::FeatureConfig feature_config;  // Matches DatasetConfig default.
  TEXRHEO_ASSIGN_OR_RETURN(
      core::SettingLinkage link,
      core::LinkConcentrationToTopic(result.estimates, dish.gel,
                                     feature_config));
  analysis.assigned_topic = link.topic;
  analysis.assignment_divergence = link.divergence;

  // 2. Rank the topic's recipes by emulsion KL to the dish.
  std::vector<size_t> docs = DocsInTopic(result.estimates, link.topic);
  TEXRHEO_ASSIGN_OR_RETURN(
      analysis.ranked,
      RankByEmulsionKL(result.dataset, docs, dish.emulsion));

  // 3. Figures.
  const auto& dict = text::TextureDictionary::Embedded();
  TEXRHEO_ASSIGN_OR_RETURN(
      analysis.fig3_bins,
      BuildFig3Histogram(result.dataset, analysis.ranked, dict, fig3_bins));
  analysis.fig4_points = BuildFig4Points(result.dataset, analysis.ranked, dict);
  analysis.topic_centroid = AxisCentroid(result.dataset, docs, dict);
  return analysis;
}

}  // namespace texrheo::eval
