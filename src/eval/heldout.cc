#include "eval/heldout.h"

#include <cmath>

#include "math/special.h"
#include "util/rng.h"

namespace texrheo::eval {

HeldOutSplit SplitDataset(const recipe::Dataset& dataset,
                          double test_fraction, uint64_t seed) {
  HeldOutSplit split;
  // Share the full vocabulary so term ids stay valid on both sides.
  for (size_t id = 0; id < dataset.term_vocab.size(); ++id) {
    split.train.term_vocab.Add(
        dataset.term_vocab.WordOf(static_cast<int32_t>(id)));
    split.test.term_vocab.Add(
        dataset.term_vocab.WordOf(static_cast<int32_t>(id)));
  }
  Rng rng(seed);
  for (const auto& doc : dataset.documents) {
    (rng.NextBernoulli(test_fraction) ? split.test : split.train)
        .documents.push_back(doc);
  }
  split.train.funnel.final_dataset = split.train.documents.size();
  split.test.funnel.final_dataset = split.test.documents.size();
  split.train.funnel.distinct_terms = split.train.term_vocab.size();
  split.test.funnel.distinct_terms = split.test.term_vocab.size();
  return split;
}

texrheo::StatusOr<double> ConcentrationConditionalPerplexity(
    const core::TopicEstimates& estimates,
    const core::JointTopicModelConfig& config, const recipe::Dataset& test) {
  if (test.documents.empty()) {
    return Status::InvalidArgument("held-out: empty test set");
  }
  if (estimates.phi.empty() || estimates.gel_topics.empty()) {
    return Status::InvalidArgument("held-out: estimates missing topics");
  }
  size_t k_count = estimates.phi.size();
  std::vector<double> log_w(k_count);

  double total_log_prob = 0.0;
  int64_t total_tokens = 0;
  for (const auto& doc : test.documents) {
    if (doc.term_ids.empty()) continue;
    // p(k | g, e).
    for (size_t k = 0; k < k_count; ++k) {
      double prior =
          (k < estimates.topic_recipe_count.size()
               ? static_cast<double>(estimates.topic_recipe_count[k])
               : 0.0) +
          config.alpha;
      log_w[k] = std::log(prior) +
                 estimates.gel_topics[k].LogPdf(doc.gel_feature);
      if (config.use_emulsion_likelihood &&
          k < estimates.emulsion_topics.size()) {
        log_w[k] += estimates.emulsion_topics[k].LogPdf(doc.emulsion_feature);
      }
    }
    double norm = math::LogSumExp(log_w.data(), log_w.size());
    // In the generative model a word topic z is drawn from theta_d, not
    // from y_d directly; given y_d = j and no observed words,
    // E[theta_k | y=j] = (alpha + [k==j]) / (K alpha + 1). Marginalizing
    // over y gives the word-topic mixture used below.
    double alpha_norm =
        config.alpha * static_cast<double>(k_count) + 1.0;
    std::vector<double> p_word_topic(k_count,
                                     config.alpha / alpha_norm);
    for (size_t j = 0; j < k_count; ++j) {
      p_word_topic[j] += std::exp(log_w[j] - norm) / alpha_norm;
    }
    for (int32_t term : doc.term_ids) {
      double p = 0.0;
      for (size_t k = 0; k < k_count; ++k) {
        p += p_word_topic[k] * estimates.phi[k][static_cast<size_t>(term)];
      }
      total_log_prob += std::log(std::max(p, 1e-300));
      ++total_tokens;
    }
  }
  if (total_tokens == 0) {
    return Status::InvalidArgument("held-out: no test tokens");
  }
  return std::exp(-total_log_prob / static_cast<double>(total_tokens));
}

texrheo::StatusOr<double> UnigramPerplexity(const recipe::Dataset& train,
                                            const recipe::Dataset& test) {
  size_t vocab = train.term_vocab.size();
  if (vocab == 0) return Status::InvalidArgument("unigram: empty vocabulary");
  std::vector<double> counts(vocab, 1.0);  // Add-one smoothing.
  double total = static_cast<double>(vocab);
  for (const auto& doc : train.documents) {
    for (int32_t term : doc.term_ids) {
      counts[static_cast<size_t>(term)] += 1.0;
      total += 1.0;
    }
  }
  double total_log_prob = 0.0;
  int64_t total_tokens = 0;
  for (const auto& doc : test.documents) {
    for (int32_t term : doc.term_ids) {
      total_log_prob += std::log(counts[static_cast<size_t>(term)] / total);
      ++total_tokens;
    }
  }
  if (total_tokens == 0) {
    return Status::InvalidArgument("unigram: no test tokens");
  }
  return std::exp(-total_log_prob / static_cast<double>(total_tokens));
}

}  // namespace texrheo::eval
