#ifndef TEXRHEO_EVAL_FIGURES_H_
#define TEXRHEO_EVAL_FIGURES_H_

#include <cstddef>
#include <vector>

#include "math/linalg.h"
#include "recipe/dataset.h"
#include "text/texture_dictionary.h"
#include "util/status.h"

namespace texrheo::eval {

/// Counts of a document's texture terms per dictionary pole.
struct TermCategoryCounts {
  int hard = 0;
  int soft = 0;
  int elastic = 0;   ///< High-cohesiveness pole ("purupuru", "burinburin").
  int crumbly = 0;   ///< Low-cohesiveness pole ("horohoro", "bosoboso").
  int sticky = 0;
  int dry = 0;
  int total = 0;
};

/// Tallies the dictionary poles of one document's texture terms.
TermCategoryCounts CountCategories(const recipe::Document& doc,
                                   const text::Vocabulary& vocab,
                                   const text::TextureDictionary& dict);

/// One recipe ranked by similarity of its emulsion concentrations to a
/// reference dish (paper Section V.B).
struct RankedRecipe {
  size_t doc_index = 0;  ///< Into Dataset::documents.
  double divergence = 0.0;
};

/// Ranks `doc_indices` (ascending divergence) by discrete KL between each
/// recipe's emulsion concentration distribution and the dish's.
texrheo::StatusOr<std::vector<RankedRecipe>> RankByEmulsionKL(
    const recipe::Dataset& dataset, const std::vector<size_t>& doc_indices,
    const math::Vector& dish_emulsion_concentration,
    double smoothing = 1e-4);

/// One bin of the paper's Figure 3 histograms: recipes in a KL-rank band,
/// with counts of texture terms by pole.
struct Fig3Bin {
  double kl_lo = 0.0;  ///< Divergence range covered by this bin.
  double kl_hi = 0.0;
  int recipes = 0;
  TermCategoryCounts counts;  ///< Summed over the bin's recipes.
};

/// Buckets a ranked list into `num_bins` equal-population bins and tallies
/// term categories (Figure 3: hard/soft in (a), elastic/crumbly in (b)).
texrheo::StatusOr<std::vector<Fig3Bin>> BuildFig3Histogram(
    const recipe::Dataset& dataset, const std::vector<RankedRecipe>& ranked,
    const text::TextureDictionary& dict, int num_bins);

/// One recipe plotted on the paper's Figure 4 consolidated axes:
/// hardness score = (hard - soft) / total terms, cohesiveness score =
/// (elastic - crumbly) / total terms (softness is negative hardness;
/// crumbliness is the negative cohesiveness pole).
struct Fig4Point {
  size_t doc_index = 0;
  double hardness_score = 0.0;      ///< In [-1, 1].
  double cohesiveness_score = 0.0;  ///< In [-1, 1].
  double divergence = 0.0;
  int kl_bucket = 0;  ///< 0 = nearest third, 1 = middle, 2 = farthest.
};

/// Maps ranked recipes onto the consolidated axes with KL color buckets.
std::vector<Fig4Point> BuildFig4Points(
    const recipe::Dataset& dataset, const std::vector<RankedRecipe>& ranked,
    const text::TextureDictionary& dict);

/// Centroid of a set of documents on the consolidated axes (the "star" mark
/// of Figure 4: the topic's own term classification).
Fig4Point AxisCentroid(const recipe::Dataset& dataset,
                       const std::vector<size_t>& doc_indices,
                       const text::TextureDictionary& dict);

}  // namespace texrheo::eval

#endif  // TEXRHEO_EVAL_FIGURES_H_
