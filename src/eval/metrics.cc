#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace texrheo::eval {
namespace {

// n-choose-2 as a double (inputs are counts, no overflow concern at our
// corpus sizes once in floating point).
double Choose2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

texrheo::StatusOr<ClusteringScores> ScoreClustering(
    const std::vector<int>& predicted, const std::vector<int>& truth) {
  if (predicted.size() != truth.size()) {
    return Status::InvalidArgument("clustering scores: length mismatch");
  }
  if (predicted.empty()) {
    return Status::InvalidArgument("clustering scores: empty input");
  }
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] < 0 || truth[i] < 0) {
      return Status::InvalidArgument("clustering scores: negative label");
    }
  }
  double n = static_cast<double>(predicted.size());

  // Contingency counts.
  std::map<std::pair<int, int>, double> joint;
  std::map<int, double> pred_count, true_count;
  for (size_t i = 0; i < predicted.size(); ++i) {
    joint[{predicted[i], truth[i]}] += 1.0;
    pred_count[predicted[i]] += 1.0;
    true_count[truth[i]] += 1.0;
  }

  ClusteringScores scores;

  // Purity.
  std::map<int, double> cluster_max;
  for (const auto& [key, count] : joint) {
    double& m = cluster_max[key.first];
    m = std::max(m, count);
  }
  double purity_sum = 0.0;
  for (const auto& [cluster, m] : cluster_max) purity_sum += m;
  scores.purity = purity_sum / n;

  // NMI with arithmetic-mean normalization.
  double mi = 0.0;
  for (const auto& [key, count] : joint) {
    double pxy = count / n;
    double px = pred_count[key.first] / n;
    double py = true_count[key.second] / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  double h_pred = 0.0, h_true = 0.0;
  for (const auto& [cluster, count] : pred_count) {
    double p = count / n;
    h_pred -= p * std::log(p);
  }
  for (const auto& [label, count] : true_count) {
    double p = count / n;
    h_true -= p * std::log(p);
  }
  double denom = 0.5 * (h_pred + h_true);
  scores.nmi = denom > 0.0 ? mi / denom : (mi == 0.0 ? 1.0 : 0.0);
  scores.nmi = std::clamp(scores.nmi, 0.0, 1.0);

  // Adjusted Rand index.
  double sum_joint = 0.0;
  for (const auto& [key, count] : joint) sum_joint += Choose2(count);
  double sum_pred = 0.0;
  for (const auto& [cluster, count] : pred_count) sum_pred += Choose2(count);
  double sum_true = 0.0;
  for (const auto& [label, count] : true_count) sum_true += Choose2(count);
  double total_pairs = Choose2(n);
  double expected = sum_pred * sum_true / total_pairs;
  double max_index = 0.5 * (sum_pred + sum_true);
  double denom_ari = max_index - expected;
  scores.ari = denom_ari != 0.0 ? (sum_joint - expected) / denom_ari
                                : (sum_joint == expected ? 0.0 : 1.0);
  return scores;
}

}  // namespace texrheo::eval
