#ifndef TEXRHEO_EMBED_SGNS_TRAINER_H_
#define TEXRHEO_EMBED_SGNS_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "embed/embedding.h"
#include "util/atomic_file.h"
#include "util/status.h"

namespace texrheo::embed {

/// Configuration for the skip-gram negative-sampling trainer.
///
/// The determinism contract mirrors the Gibbs engine's: a fixed
/// (seed, num_threads) pair reproduces the run bit-exactly, and
/// num_threads == 1 additionally matches the single-threaded reference
/// arithmetic order (the same update schedule as text::Word2Vec). With
/// num_threads > 1 the shards race on the shared weight matrices
/// (hogwild-style lock-free updates through relaxed atomics), so runs are
/// statistically equivalent but not bit-reproducible across executions.
struct SgnsConfig {
  int dim = 16;
  int window = 4;
  int negatives = 5;
  int epochs = 8;
  double lr = 0.05;
  double min_lr = 1e-4;
  /// Mikolov subsampling threshold; 0 disables (recipe term bags are short
  /// and nearly uniform, so the default is off).
  double subsample = 0.0;
  uint64_t seed = 20220501;
  /// Number of sentence shards trained concurrently. Each (epoch, shard)
  /// pair owns a private SplitMix64-derived RNG stream, so the random
  /// choices (windows, negatives, subsampling) are a pure function of
  /// (seed, num_threads) regardless of OS scheduling.
  int num_threads = 1;
  /// When non-empty, training state is persisted here after every epoch via
  /// the atomic-file path, and an existing compatible checkpoint is resumed
  /// from (completed epochs are skipped). Because the RNG stream of each
  /// (epoch, shard) is derivable without generator state, an interrupted
  /// 1-thread run resumed from its checkpoint is bit-identical to an
  /// uninterrupted one.
  std::string checkpoint_path;
};

/// Optional observability output of a training run.
struct SgnsTrainStats {
  /// Mean negative-sampling loss per trained pair, one entry per epoch
  /// actually executed this run (resumed epochs are not re-reported).
  std::vector<double> epoch_loss;
  /// Epochs skipped because a compatible checkpoint already covered them.
  int epochs_resumed = 0;
  /// (center, context) pairs updated this run.
  int64_t pairs_trained = 0;
};

/// Trains SGNS embeddings over pre-encoded term-id sentences (ids must lie
/// in [0, vocab_size)). Sentences shorter than two tokens are skipped. The
/// unigram^0.75 negative-sampling distribution is served from an alias
/// table. Returns the input-vector table with cached norms.
StatusOr<EmbeddingTable> TrainSgns(
    const std::vector<std::vector<int32_t>>& sentences, size_t vocab_size,
    const SgnsConfig& config, SgnsTrainStats* stats = nullptr,
    FileOps& ops = FileOps::Real());

}  // namespace texrheo::embed

#endif  // TEXRHEO_EMBED_SGNS_TRAINER_H_
