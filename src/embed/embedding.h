#ifndef TEXRHEO_EMBED_EMBEDDING_H_
#define TEXRHEO_EMBED_EMBEDDING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/atomic_file.h"
#include "util/status.h"

namespace texrheo::embed {

/// Dense ingredient/texture-term embeddings over a model vocabulary.
///
/// The table is indexed by the *model's* term-vocabulary ids (the same ids
/// Document::term_ids and ServingSnapshot::WordId use), so a trained table
/// lines up with the topic model it ships with: row v is the vector of the
/// word the model calls v. Norms are cached because every cosine consumer
/// (top-k scans, the fused SIMILAR backend) divides by them on the hot path.
struct EmbeddingTable {
  uint32_t dim = 0;
  std::vector<float> vectors;  ///< vocab * dim, row-major by vocab id.
  std::vector<float> norms;    ///< vocab cached L2 norms of the rows.

  size_t vocab_size() const {
    return dim == 0 ? 0 : vectors.size() / static_cast<size_t>(dim);
  }
  bool empty() const { return vectors.empty(); }
  std::span<const float> vec(size_t v) const {
    return {vectors.data() + v * static_cast<size_t>(dim),
            static_cast<size_t>(dim)};
  }
  /// Recomputes `norms` from `vectors` (double accumulation, float store).
  void RecomputeNorms();
};

/// Non-owning span view of an embedding table. One interface over both
/// storage paths: a heap EmbeddingTable and the mmapped model-binary
/// sections serve through the same view, so consumers (EmbeddingIndex, the
/// query engine) cannot tell them apart — which is what makes the
/// heap-vs-mmap byte-identical-responses guarantee testable.
struct EmbeddingView {
  size_t vocab = 0;
  size_t dim = 0;
  std::span<const float> vectors;  ///< vocab * dim.
  std::span<const float> norms;    ///< vocab.

  bool empty() const { return vocab == 0 || dim == 0; }
  std::span<const float> vec(size_t v) const {
    return vectors.subspan(v * dim, dim);
  }
  static EmbeddingView Of(const EmbeddingTable& table) {
    return EmbeddingView{table.vocab_size(), table.dim, table.vectors,
                         table.norms};
  }
};

/// Structural check: dim >= 1, vectors.size() == vocab * dim,
/// norms.size() == vocab, every value finite. Empty tables are valid.
Status ValidateEmbeddingTable(const EmbeddingTable& table);

/// Durably writes the standalone sidecar format (`texremb1`: header,
/// vectors, norms, trailing CRC32) via AtomicWriteFile. Used by the
/// training CLI and by `texrheo_modelpack pack --embed= / unpack
/// --embed-out=` to round-trip the binary pack's embedding sections.
Status SaveEmbeddingTable(const std::string& path, const EmbeddingTable& table,
                          FileOps& ops = FileOps::Real());

/// Parses a sidecar file: magic, version, shape bounds, trailing CRC.
/// A torn or bit-flipped file is rejected before any value is trusted.
StatusOr<EmbeddingTable> LoadEmbeddingTable(const std::string& path);

}  // namespace texrheo::embed

#endif  // TEXRHEO_EMBED_EMBEDDING_H_
