#include "embed/embedding_index.h"

#include <algorithm>
#include <cmath>

namespace texrheo::embed {

EmbeddingIndex::EmbeddingIndex(
    EmbeddingView view, const std::vector<std::vector<int32_t>>& doc_terms)
    : view_(view) {
  const size_t dim = view_.dim;
  doc_vecs_.assign(doc_terms.size() * dim, 0.0f);
  doc_norms_.assign(doc_terms.size(), 0.0f);
  for (size_t d = 0; d < doc_terms.size(); ++d) {
    std::vector<float> mean = MeanVector(doc_terms[d]);
    double sum = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      doc_vecs_[d * dim + i] = mean[i];
      sum += static_cast<double>(mean[i]) * mean[i];
    }
    doc_norms_[d] = static_cast<float>(std::sqrt(sum));
  }
}

std::vector<float> EmbeddingIndex::MeanVector(
    std::span<const int32_t> term_ids) const {
  const size_t dim = view_.dim;
  std::vector<float> mean(dim, 0.0f);
  if (view_.empty()) return mean;
  size_t used = 0;
  for (int32_t id : term_ids) {
    if (id < 0 || static_cast<size_t>(id) >= view_.vocab) continue;
    std::span<const float> v = view_.vec(static_cast<size_t>(id));
    for (size_t i = 0; i < dim; ++i) mean[i] += v[i];
    ++used;
  }
  if (used > 1) {
    const float inv = 1.0f / static_cast<float>(used);
    for (float& x : mean) x *= inv;
  }
  return mean;
}

double EmbeddingIndex::CosineDistance(std::span<const float> query,
                                      double query_norm, size_t d) const {
  const double denom = query_norm * static_cast<double>(doc_norms_[d]);
  if (denom <= 0.0) return 2.0;
  const size_t dim = view_.dim;
  const float* doc = doc_vecs_.data() + d * dim;
  double dot = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    dot += static_cast<double>(query[i]) * doc[i];
  }
  return 1.0 - dot / denom;
}

std::vector<EmbeddingIndex::Ranked> EmbeddingIndex::RankByCosine(
    std::span<const int32_t> query_terms,
    std::span<const size_t> candidates) const {
  std::vector<float> query = MeanVector(query_terms);
  double sum = 0.0;
  for (float x : query) sum += static_cast<double>(x) * x;
  const double query_norm = std::sqrt(sum);

  std::vector<Ranked> ranked;
  ranked.reserve(candidates.size());
  for (size_t d : candidates) {
    ranked.push_back(Ranked{d, CosineDistance(query, query_norm, d)});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.doc < b.doc;
  });
  return ranked;
}

}  // namespace texrheo::embed
