#ifndef TEXRHEO_EMBED_EMBEDDING_INDEX_H_
#define TEXRHEO_EMBED_EMBEDDING_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "embed/embedding.h"

namespace texrheo::embed {

/// Serves recipe- and term-level vectors for cosine top-k scans.
///
/// A recipe's vector is the mean of its (in-vocabulary) term vectors —
/// the standard bag-of-ingredients composition. Document vectors and their
/// norms are precomputed at construction, so a ranking scan is a dense
/// dot-product sweep over the candidate set. The view is non-owning: the
/// caller (the serving snapshot) must keep the underlying table or mmap
/// alive for the index's lifetime.
class EmbeddingIndex {
 public:
  /// `doc_terms[d]` holds document d's term ids in the view's vocabulary;
  /// ids outside [0, view.vocab) are ignored.
  EmbeddingIndex(EmbeddingView view,
                 const std::vector<std::vector<int32_t>>& doc_terms);

  size_t num_docs() const { return doc_norms_.size(); }
  size_t dim() const { return view_.dim; }

  std::span<const float> doc_vector(size_t d) const {
    return {doc_vecs_.data() + d * view_.dim, view_.dim};
  }
  float doc_norm(size_t d) const { return doc_norms_[d]; }

  /// Mean of the in-vocabulary term vectors (all zeros when none qualify).
  std::vector<float> MeanVector(std::span<const int32_t> term_ids) const;

  /// Cosine distance 1 - cos(query, doc) in [0, 2]. A zero-norm side (an
  /// all-out-of-vocabulary query or an empty document) yields the sentinel
  /// 2.0, ranking it strictly after any document with a real angle.
  double CosineDistance(std::span<const float> query, double query_norm,
                        size_t d) const;

  struct Ranked {
    size_t doc = 0;
    double distance = 0.0;
  };

  /// Ranks every candidate by ascending cosine distance to the mean vector
  /// of `query_terms`; ties break on ascending document index so the order
  /// is fully deterministic.
  std::vector<Ranked> RankByCosine(std::span<const int32_t> query_terms,
                                   std::span<const size_t> candidates) const;

 private:
  EmbeddingView view_;
  std::vector<float> doc_vecs_;   ///< num_docs * dim mean vectors.
  std::vector<float> doc_norms_;  ///< num_docs L2 norms of the means.
};

}  // namespace texrheo::embed

#endif  // TEXRHEO_EMBED_EMBEDDING_INDEX_H_
