#include "embed/sgns_trainer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

#include "math/alias_table.h"
#include "util/crc32.h"
#include "util/csv.h"
#include "util/rng.h"

namespace texrheo::embed {
namespace {

constexpr char kCheckpointMagic[8] = {'t', 'e', 'x', 'r', 'e', 'm', 'c', '1'};
constexpr uint32_t kCheckpointVersion = 1;

// Clamped logistic, identical to the text::Word2Vec reference so the
// 1-thread path reproduces its arithmetic exactly.
float Sigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

// Hogwild weight cells: racy lost-update accumulation is intended (and
// statistically benign for SGNS), but the races must be *data-race-free* so
// the TSan leg stays clean — hence atomics with relaxed ordering. On x86
// a relaxed float load/store compiles to a plain mov, so the 1-thread path
// pays nothing and stays bit-exact against the non-atomic reference.
using WeightVec = std::vector<std::atomic<float>>;

inline float LoadW(const WeightVec& w, size_t i) {
  return w[i].load(std::memory_order_relaxed);
}

inline void AddW(WeightVec& w, size_t i, float delta) {
  w[i].store(w[i].load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

struct Shard {
  std::vector<const std::vector<int32_t>*> sentences;
  int64_t total_tokens = 0;
};

// Everything the training config pins down about the weight layout and the
// update schedule. A checkpoint carrying a different fingerprint belongs to
// a different run and must not be resumed.
uint32_t ConfigFingerprint(const SgnsConfig& config, size_t vocab_size) {
  std::string packed;
  auto append = [&packed](const void* p, size_t n) {
    packed.append(reinterpret_cast<const char*>(p), n);
  };
  int32_t dims[4] = {config.dim, config.window, config.negatives,
                     config.epochs};
  append(dims, sizeof(dims));
  double reals[3] = {config.lr, config.min_lr, config.subsample};
  append(reals, sizeof(reals));
  append(&config.seed, sizeof(config.seed));
  int32_t threads = config.num_threads;
  append(&threads, sizeof(threads));
  uint64_t vocab = vocab_size;
  append(&vocab, sizeof(vocab));
  return Crc32(packed.data(), packed.size());
}

struct CheckpointState {
  uint32_t epochs_done = 0;
  std::vector<float> in;
  std::vector<float> out;
};

Status SaveCheckpoint(const std::string& path, uint32_t fingerprint,
                      uint32_t dim, uint32_t epochs_done,
                      const CheckpointState& state, FileOps& ops) {
  std::string raw;
  raw.reserve(40 + (state.in.size() + state.out.size()) * sizeof(float));
  raw.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  auto append = [&raw](const void* p, size_t n) {
    raw.append(reinterpret_cast<const char*>(p), n);
  };
  append(&kCheckpointVersion, sizeof(kCheckpointVersion));
  append(&fingerprint, sizeof(fingerprint));
  append(&dim, sizeof(dim));
  append(&epochs_done, sizeof(epochs_done));
  uint64_t vocab = dim == 0 ? 0 : state.in.size() / dim;
  append(&vocab, sizeof(vocab));
  append(state.in.data(), state.in.size() * sizeof(float));
  append(state.out.data(), state.out.size() * sizeof(float));
  uint32_t crc = Crc32(raw.data(), raw.size());
  append(&crc, sizeof(crc));
  return AtomicWriteFile(path, raw, ops);
}

StatusOr<CheckpointState> LoadCheckpoint(const std::string& path,
                                         uint32_t fingerprint,
                                         uint32_t want_dim,
                                         uint64_t want_vocab) {
  TEXRHEO_ASSIGN_OR_RETURN(std::string raw, ReadFileToString(path));
  constexpr size_t kHeaderBytes = 8 + 4 + 4 + 4 + 4 + 8;
  if (raw.size() < kHeaderBytes + sizeof(uint32_t)) {
    return Status::InvalidArgument("sgns checkpoint too small: " + path);
  }
  if (std::memcmp(raw.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    return Status::InvalidArgument("bad sgns checkpoint magic: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, raw.data() + raw.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (stored_crc != Crc32(raw.data(), raw.size() - sizeof(uint32_t))) {
    return Status::InvalidArgument("sgns checkpoint CRC mismatch: " + path);
  }
  uint32_t version = 0;
  uint32_t file_fingerprint = 0;
  uint32_t dim = 0;
  uint32_t epochs_done = 0;
  uint64_t vocab = 0;
  std::memcpy(&version, raw.data() + 8, sizeof(version));
  std::memcpy(&file_fingerprint, raw.data() + 12, sizeof(file_fingerprint));
  std::memcpy(&dim, raw.data() + 16, sizeof(dim));
  std::memcpy(&epochs_done, raw.data() + 20, sizeof(epochs_done));
  std::memcpy(&vocab, raw.data() + 24, sizeof(vocab));
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported sgns checkpoint version " +
                                   std::to_string(version));
  }
  if (file_fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "sgns checkpoint was written by an incompatible configuration: " +
        path);
  }
  if (dim != want_dim || vocab != want_vocab) {
    return Status::InvalidArgument("sgns checkpoint shape mismatch: " + path);
  }
  const size_t matrix = static_cast<size_t>(vocab) * dim;
  const size_t want_bytes =
      kHeaderBytes + 2 * matrix * sizeof(float) + sizeof(uint32_t);
  if (raw.size() != want_bytes) {
    return Status::InvalidArgument("sgns checkpoint size mismatch: " + path);
  }
  CheckpointState state;
  state.epochs_done = epochs_done;
  state.in.resize(matrix);
  state.out.resize(matrix);
  std::memcpy(state.in.data(), raw.data() + kHeaderBytes,
              matrix * sizeof(float));
  std::memcpy(state.out.data(), raw.data() + kHeaderBytes + matrix * sizeof(float),
              matrix * sizeof(float));
  for (float x : state.in) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("sgns checkpoint has non-finite weights");
    }
  }
  for (float x : state.out) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("sgns checkpoint has non-finite weights");
    }
  }
  return state;
}

// Trains one shard through one epoch. All random choices come from the
// (epoch, shard) stream; the learning-rate schedule advances on shard-local
// token counts, so neither depends on what the other shards are doing.
struct ShardEpochResult {
  double loss_sum = 0.0;
  int64_t pairs = 0;
};

ShardEpochResult RunShardEpoch(const Shard& shard, int epoch,
                               const SgnsConfig& config, size_t num_shards,
                               size_t shard_index,
                               const math::AliasTable& noise,
                               const std::vector<double>& keep_prob,
                               WeightVec& in, WeightVec& out) {
  const size_t dim = static_cast<size_t>(config.dim);
  // Stream 0 seeds the weight init; training streams start at 1.
  Rng rng = Rng::ForStream(
      config.seed, 1 + static_cast<uint64_t>(epoch) * num_shards + shard_index);
  const int64_t schedule_total = shard.total_tokens * config.epochs;
  int64_t trained = static_cast<int64_t>(epoch) * shard.total_tokens;

  ShardEpochResult result;
  std::vector<float> grad_in(dim);
  std::vector<int32_t> kept;
  for (const std::vector<int32_t>* sentence_ptr : shard.sentences) {
    const std::vector<int32_t>& sentence = *sentence_ptr;
    kept.clear();
    kept.reserve(sentence.size());
    for (int32_t id : sentence) {
      if (keep_prob[static_cast<size_t>(id)] >= 1.0 ||
          rng.NextDouble() < keep_prob[static_cast<size_t>(id)]) {
        kept.push_back(id);
      }
    }
    trained += static_cast<int64_t>(sentence.size());
    if (kept.size() < 2) continue;
    double progress =
        static_cast<double>(trained) / static_cast<double>(schedule_total);
    float lr = static_cast<float>(
        std::max(config.min_lr, config.lr * (1.0 - progress)));

    for (size_t pos = 0; pos < kept.size(); ++pos) {
      int window = 1 + static_cast<int>(
                           rng.NextUint(static_cast<uint64_t>(config.window)));
      int32_t center = kept[pos];
      const size_t center_base = static_cast<size_t>(center) * dim;
      for (int off = -window; off <= window; ++off) {
        if (off == 0) continue;
        int64_t cpos = static_cast<int64_t>(pos) + off;
        if (cpos < 0 || cpos >= static_cast<int64_t>(kept.size())) continue;
        int32_t context = kept[static_cast<size_t>(cpos)];

        std::fill(grad_in.begin(), grad_in.end(), 0.0f);
        for (int neg = 0; neg <= config.negatives; ++neg) {
          int32_t target;
          float label;
          if (neg == 0) {
            target = context;
            label = 1.0f;
          } else {
            target = static_cast<int32_t>(noise.Sample(rng));
            if (target == context) continue;
            label = 0.0f;
          }
          const size_t out_base = static_cast<size_t>(target) * dim;
          float score = 0.0f;
          for (size_t i = 0; i < dim; ++i) {
            score += LoadW(in, center_base + i) * LoadW(out, out_base + i);
          }
          float predicted = Sigmoid(score);
          float g = (label - predicted) * lr;
          for (size_t i = 0; i < dim; ++i) {
            float out_val = LoadW(out, out_base + i);
            grad_in[i] += g * out_val;
            AddW(out, out_base + i, g * LoadW(in, center_base + i));
          }
          double p = label > 0.5f ? predicted : 1.0f - predicted;
          result.loss_sum += -std::log(std::max(1e-7, static_cast<double>(p)));
        }
        for (size_t i = 0; i < dim; ++i) {
          AddW(in, center_base + i, grad_in[i]);
        }
        ++result.pairs;
      }
    }
  }
  return result;
}

}  // namespace

StatusOr<EmbeddingTable> TrainSgns(
    const std::vector<std::vector<int32_t>>& sentences, size_t vocab_size,
    const SgnsConfig& config, SgnsTrainStats* stats, FileOps& ops) {
  if (config.dim <= 0 || config.window <= 0 || config.negatives < 0 ||
      config.epochs <= 0 || config.num_threads <= 0) {
    return Status::InvalidArgument("sgns: non-positive config field");
  }
  if (config.lr <= 0.0 || config.min_lr < 0.0 || config.subsample < 0.0) {
    return Status::InvalidArgument("sgns: negative rate or threshold");
  }
  if (vocab_size == 0) {
    return Status::InvalidArgument("sgns: empty vocabulary");
  }

  // Count tokens (also validates ids before they ever index a matrix).
  std::vector<int64_t> counts(vocab_size, 0);
  for (const auto& sentence : sentences) {
    for (int32_t id : sentence) {
      if (id < 0 || static_cast<size_t>(id) >= vocab_size) {
        return Status::OutOfRange("sgns: term id " + std::to_string(id) +
                                  " outside vocabulary of " +
                                  std::to_string(vocab_size));
      }
      ++counts[static_cast<size_t>(id)];
    }
  }

  const size_t num_shards = static_cast<size_t>(config.num_threads);
  std::vector<Shard> shards(num_shards);
  size_t trainable = 0;
  for (size_t i = 0; i < sentences.size(); ++i) {
    if (sentences[i].size() < 2) continue;
    Shard& shard = shards[trainable % num_shards];
    shard.sentences.push_back(&sentences[i]);
    shard.total_tokens += static_cast<int64_t>(sentences[i].size());
    ++trainable;
  }
  if (trainable == 0) {
    return Status::FailedPrecondition("sgns: no trainable sentences");
  }

  const size_t dim = static_cast<size_t>(config.dim);
  const size_t matrix = vocab_size * dim;
  WeightVec in(matrix);
  WeightVec out(matrix);

  // Deterministic init from stream 0, independent of the thread count, using
  // the same uniform(-0.5, 0.5)/dim range as the reference trainer.
  {
    Rng init_rng = Rng::ForStream(config.seed, 0);
    const float init_range = 0.5f / static_cast<float>(dim);
    for (size_t i = 0; i < matrix; ++i) {
      in[i].store(
          (static_cast<float>(init_rng.NextDouble()) - 0.5f) * 2.0f *
              init_range,
          std::memory_order_relaxed);
      out[i].store(0.0f, std::memory_order_relaxed);
    }
  }

  std::vector<double> noise_weights(vocab_size);
  for (size_t i = 0; i < vocab_size; ++i) {
    noise_weights[i] = std::pow(static_cast<double>(counts[i]), 0.75);
  }
  TEXRHEO_ASSIGN_OR_RETURN(math::AliasTable noise,
                           math::AliasTable::Build(noise_weights));

  std::vector<double> keep_prob(vocab_size, 1.0);
  if (config.subsample > 0.0) {
    int64_t total = 0;
    for (int64_t c : counts) total += c;
    for (size_t i = 0; i < vocab_size; ++i) {
      if (counts[i] == 0) continue;
      double f = static_cast<double>(counts[i]) / static_cast<double>(total);
      double p = (std::sqrt(f / config.subsample) + 1.0) * config.subsample / f;
      keep_prob[i] = std::min(1.0, p);
    }
  }

  const uint32_t fingerprint = ConfigFingerprint(config, vocab_size);
  int start_epoch = 0;
  if (!config.checkpoint_path.empty()) {
    auto loaded = LoadCheckpoint(config.checkpoint_path, fingerprint,
                                 static_cast<uint32_t>(dim), vocab_size);
    if (loaded.ok()) {
      const CheckpointState& state = *loaded;
      if (state.epochs_done > static_cast<uint32_t>(config.epochs)) {
        return Status::InvalidArgument(
            "sgns checkpoint claims more epochs than configured");
      }
      for (size_t i = 0; i < matrix; ++i) {
        in[i].store(state.in[i], std::memory_order_relaxed);
        out[i].store(state.out[i], std::memory_order_relaxed);
      }
      start_epoch = static_cast<int>(state.epochs_done);
      if (stats != nullptr) stats->epochs_resumed = start_epoch;
    } else if (loaded.status().code() != StatusCode::kNotFound &&
               loaded.status().code() != StatusCode::kIOError) {
      // A missing checkpoint means a fresh run; a corrupt or incompatible
      // one is an operator error we refuse to paper over.
      return loaded.status();
    }
  }

  for (int epoch = start_epoch; epoch < config.epochs; ++epoch) {
    std::vector<ShardEpochResult> results(num_shards);
    if (num_shards == 1) {
      results[0] = RunShardEpoch(shards[0], epoch, config, num_shards, 0,
                                 noise, keep_prob, in, out);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(num_shards);
      for (size_t s = 0; s < num_shards; ++s) {
        workers.emplace_back([&, s] {
          results[s] = RunShardEpoch(shards[s], epoch, config, num_shards, s,
                                     noise, keep_prob, in, out);
        });
      }
      for (auto& w : workers) w.join();
    }
    double loss_sum = 0.0;
    int64_t pairs = 0;
    for (const ShardEpochResult& r : results) {
      loss_sum += r.loss_sum;
      pairs += r.pairs;
    }
    if (stats != nullptr) {
      stats->epoch_loss.push_back(pairs > 0 ? loss_sum / static_cast<double>(
                                                             pairs)
                                            : 0.0);
      stats->pairs_trained += pairs;
    }
    if (!config.checkpoint_path.empty()) {
      CheckpointState state;
      state.in.resize(matrix);
      state.out.resize(matrix);
      for (size_t i = 0; i < matrix; ++i) {
        state.in[i] = in[i].load(std::memory_order_relaxed);
        state.out[i] = out[i].load(std::memory_order_relaxed);
      }
      TEXRHEO_RETURN_IF_ERROR(
          SaveCheckpoint(config.checkpoint_path, fingerprint,
                         static_cast<uint32_t>(dim),
                         static_cast<uint32_t>(epoch + 1), state, ops));
    }
  }

  EmbeddingTable table;
  table.dim = static_cast<uint32_t>(dim);
  table.vectors.resize(matrix);
  for (size_t i = 0; i < matrix; ++i) {
    table.vectors[i] = in[i].load(std::memory_order_relaxed);
  }
  table.RecomputeNorms();
  return table;
}

}  // namespace texrheo::embed
