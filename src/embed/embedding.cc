#include "embed/embedding.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/crc32.h"
#include "util/csv.h"

namespace texrheo::embed {
namespace {

constexpr char kEmbeddingMagic[8] = {'t', 'e', 'x', 'r', 'e', 'm', 'b', '1'};
constexpr uint32_t kEmbeddingVersion = 1;
// Mirrors core/model_binary's kMaxDim: a vector wider than this is a parse
// error, not a plausible model.
constexpr uint64_t kMaxEmbeddingDim = 1024;
constexpr uint64_t kMaxEmbeddingVocab = 1ull << 32;

void AppendU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void AppendFloats(std::string& out, const std::vector<float>& values) {
  const size_t bytes = values.size() * sizeof(float);
  const size_t offset = out.size();
  out.resize(offset + bytes);
  if (bytes > 0) std::memcpy(out.data() + offset, values.data(), bytes);
}

}  // namespace

void EmbeddingTable::RecomputeNorms() {
  const size_t vocab = vocab_size();
  norms.assign(vocab, 0.0f);
  for (size_t v = 0; v < vocab; ++v) {
    double sum = 0.0;
    for (float x : vec(v)) sum += static_cast<double>(x) * x;
    norms[v] = static_cast<float>(std::sqrt(sum));
  }
}

Status ValidateEmbeddingTable(const EmbeddingTable& table) {
  if (table.vectors.empty() && table.norms.empty() && table.dim == 0) {
    return Status::OK();
  }
  if (table.dim == 0) {
    return Status::InvalidArgument("embedding table has data but dim == 0");
  }
  if (table.dim > kMaxEmbeddingDim) {
    return Status::InvalidArgument("embedding dim " +
                                   std::to_string(table.dim) +
                                   " exceeds the maximum of " +
                                   std::to_string(kMaxEmbeddingDim));
  }
  if (table.vectors.size() % table.dim != 0) {
    return Status::InvalidArgument(
        "embedding vector count " + std::to_string(table.vectors.size()) +
        " is not a multiple of dim " + std::to_string(table.dim));
  }
  const size_t vocab = table.vectors.size() / table.dim;
  if (vocab == 0) {
    return Status::InvalidArgument("embedding table has dim but no vectors");
  }
  if (table.norms.size() != vocab) {
    return Status::InvalidArgument(
        "embedding norm count " + std::to_string(table.norms.size()) +
        " does not match vocabulary size " + std::to_string(vocab));
  }
  for (float x : table.vectors) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("embedding vector contains a non-finite value");
    }
  }
  for (float x : table.norms) {
    if (!std::isfinite(x) || x < 0.0f) {
      return Status::InvalidArgument(
          "embedding norm is negative or non-finite");
    }
  }
  return Status::OK();
}

Status SaveEmbeddingTable(const std::string& path, const EmbeddingTable& table,
                          FileOps& ops) {
  TEXRHEO_RETURN_IF_ERROR(ValidateEmbeddingTable(table));
  if (table.empty()) {
    return Status::InvalidArgument("refusing to save an empty embedding table");
  }
  std::string out;
  out.reserve(32 + (table.vectors.size() + table.norms.size()) * sizeof(float));
  out.append(kEmbeddingMagic, sizeof(kEmbeddingMagic));
  AppendU32(out, kEmbeddingVersion);
  AppendU32(out, table.dim);
  AppendU64(out, table.vocab_size());
  AppendFloats(out, table.vectors);
  AppendFloats(out, table.norms);
  AppendU32(out, Crc32(out.data(), out.size()));
  return AtomicWriteFile(path, out, ops);
}

StatusOr<EmbeddingTable> LoadEmbeddingTable(const std::string& path) {
  TEXRHEO_ASSIGN_OR_RETURN(std::string raw, ReadFileToString(path));
  constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8;
  if (raw.size() < kHeaderBytes + sizeof(uint32_t)) {
    return Status::InvalidArgument("embedding file too small: " + path);
  }
  if (std::memcmp(raw.data(), kEmbeddingMagic, sizeof(kEmbeddingMagic)) != 0) {
    return Status::InvalidArgument("bad embedding file magic: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, raw.data() + raw.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t actual_crc = Crc32(raw.data(), raw.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("embedding file CRC mismatch: " + path);
  }
  uint32_t version = 0;
  uint32_t dim = 0;
  uint64_t vocab = 0;
  std::memcpy(&version, raw.data() + 8, sizeof(version));
  std::memcpy(&dim, raw.data() + 12, sizeof(dim));
  std::memcpy(&vocab, raw.data() + 16, sizeof(vocab));
  if (version != kEmbeddingVersion) {
    return Status::InvalidArgument("unsupported embedding file version " +
                                   std::to_string(version));
  }
  if (dim == 0 || dim > kMaxEmbeddingDim) {
    return Status::InvalidArgument("embedding file dim out of range: " +
                                   std::to_string(dim));
  }
  if (vocab == 0 || vocab > kMaxEmbeddingVocab) {
    return Status::InvalidArgument("embedding file vocab out of range: " +
                                   std::to_string(vocab));
  }
  const uint64_t want_floats = vocab * dim + vocab;
  const uint64_t want_bytes =
      kHeaderBytes + want_floats * sizeof(float) + sizeof(uint32_t);
  if (raw.size() != want_bytes) {
    return Status::InvalidArgument(
        "embedding file size mismatch: expected " + std::to_string(want_bytes) +
        " bytes, got " + std::to_string(raw.size()));
  }
  EmbeddingTable table;
  table.dim = dim;
  table.vectors.resize(static_cast<size_t>(vocab) * dim);
  table.norms.resize(static_cast<size_t>(vocab));
  std::memcpy(table.vectors.data(), raw.data() + kHeaderBytes,
              table.vectors.size() * sizeof(float));
  std::memcpy(table.norms.data(),
              raw.data() + kHeaderBytes + table.vectors.size() * sizeof(float),
              table.norms.size() * sizeof(float));
  TEXRHEO_RETURN_IF_ERROR(ValidateEmbeddingTable(table));
  return table;
}

}  // namespace texrheo::embed
