#include "recipe/features.h"

#include <cmath>

#include "recipe/units.h"

namespace texrheo::recipe {

StatusOr<Concentrations> ComputeConcentrations(const Recipe& recipe,
                                               const IngredientDatabase& db) {
  Concentrations out;
  math::Vector gel_grams(kNumGelTypes);
  math::Vector emulsion_grams(kNumEmulsionTypes);
  double unrelated_grams = 0.0;
  double total = 0.0;

  // Unknown ingredients fall back to "other, density of water".
  IngredientInfo unknown;
  unknown.cls = IngredientClass::kOther;
  unknown.specific_gravity = 1.0;

  for (const IngredientLine& line : recipe.ingredients) {
    const IngredientInfo* info = db.Find(line.name);
    if (info == nullptr) {
      unknown.name = line.name;
      info = &unknown;
    }
    TEXRHEO_ASSIGN_OR_RETURN(Quantity q, ParseQuantity(line.quantity));
    TEXRHEO_ASSIGN_OR_RETURN(double grams, ToGrams(q, *info));
    total += grams;
    switch (info->cls) {
      case IngredientClass::kGel:
        gel_grams[static_cast<size_t>(info->gel_type)] += grams;
        break;
      case IngredientClass::kEmulsion:
        emulsion_grams[static_cast<size_t>(info->emulsion_type)] += grams;
        break;
      case IngredientClass::kOther:
        if (!info->liquid_base) unrelated_grams += grams;
        break;
    }
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("recipe " + std::to_string(recipe.id) +
                                   " has zero total weight");
  }
  for (size_t i = 0; i < gel_grams.size(); ++i) {
    out.gel[i] = gel_grams[i] / total;
  }
  for (size_t i = 0; i < emulsion_grams.size(); ++i) {
    out.emulsion[i] = emulsion_grams[i] / total;
  }
  out.unrelated_fraction = unrelated_grams / total;
  out.total_grams = total;
  return out;
}

math::Vector ToFeature(const math::Vector& concentration,
                       const FeatureConfig& config) {
  math::Vector out(concentration.size());
  for (size_t i = 0; i < concentration.size(); ++i) {
    double x = concentration[i];
    if (config.use_information_quantity) {
      out[i] = -std::log(x < config.epsilon ? config.epsilon : x);
    } else {
      out[i] = x;
    }
  }
  return out;
}

math::Vector FromFeature(const math::Vector& feature,
                         const FeatureConfig& config) {
  math::Vector out(feature.size());
  for (size_t i = 0; i < feature.size(); ++i) {
    out[i] = config.use_information_quantity ? std::exp(-feature[i])
                                             : feature[i];
  }
  return out;
}

}  // namespace texrheo::recipe
