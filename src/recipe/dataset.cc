#include "recipe/dataset.h"

#include <unordered_set>

#include "text/tokenizer.h"

namespace texrheo::recipe {

StatusOr<Dataset> BuildDataset(const std::vector<Recipe>& corpus,
                               const IngredientDatabase& db,
                               const text::TextureDictionary& dict,
                               const text::GelRelatednessFilter* filter,
                               const DatasetConfig& config) {
  Dataset dataset;
  dataset.funnel.total = corpus.size();

  // The exclusion decision of the word2vec screen is per texture term, so
  // memoize it across recipes.
  std::unordered_set<std::string> known_excluded;
  std::unordered_set<std::string> known_kept;

  for (size_t idx = 0; idx < corpus.size(); ++idx) {
    const Recipe& r = corpus[idx];
    auto conc_or = ComputeConcentrations(r, db);
    if (!conc_or.ok()) {
      // Unparseable recipes exist on real sharing sites; skip them rather
      // than failing the whole build.
      continue;
    }
    const Concentrations& conc = conc_or.value();
    if (!conc.HasAnyGel()) continue;
    ++dataset.funnel.with_gel;

    std::vector<std::string> terms =
        text::Tokenizer::ExtractTextureTerms(r.description, dict);
    if (filter != nullptr) {
      std::vector<std::string> kept;
      kept.reserve(terms.size());
      for (auto& term : terms) {
        bool excluded;
        if (known_excluded.count(term)) {
          excluded = true;
        } else if (known_kept.count(term)) {
          excluded = false;
        } else {
          excluded = filter->IsExcluded(term);
          (excluded ? known_excluded : known_kept).insert(term);
        }
        if (excluded) {
          ++dataset.funnel.occurrences_removed_by_filter;
        } else {
          kept.push_back(std::move(term));
        }
      }
      terms = std::move(kept);
    }
    if (terms.empty()) continue;
    ++dataset.funnel.with_texture_terms;

    if (conc.unrelated_fraction > config.max_unrelated_fraction) continue;

    Document doc;
    doc.recipe_index = idx;
    doc.gel_concentration = conc.gel;
    doc.emulsion_concentration = conc.emulsion;
    doc.gel_feature = ToFeature(conc.gel, config.feature);
    doc.emulsion_feature = ToFeature(conc.emulsion, config.feature);
    doc.term_ids.reserve(terms.size());
    for (const auto& term : terms) {
      doc.term_ids.push_back(dataset.term_vocab.Add(term));
    }
    dataset.documents.push_back(std::move(doc));
  }
  dataset.funnel.final_dataset = dataset.documents.size();
  dataset.funnel.distinct_terms = dataset.term_vocab.size();
  return dataset;
}

}  // namespace texrheo::recipe
