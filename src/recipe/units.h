#ifndef TEXRHEO_RECIPE_UNITS_H_
#define TEXRHEO_RECIPE_UNITS_H_

#include <string>
#include <string_view>

#include "recipe/ingredient.h"
#include "util/status.h"

namespace texrheo::recipe {

/// Measuring units appearing in posted recipes. Volume capacities follow
/// the Japanese standard the paper cites: small spoon 5 mL, large spoon
/// 15 mL, one cup 200 mL.
enum class Unit {
  kGram,
  kKilogram,
  kMilliliter,  // also written "cc"
  kLiter,
  kSmallSpoon,  // kosaji, 5 mL
  kLargeSpoon,  // oosaji, 15 mL
  kCup,         // 200 mL (Japan)
  kPiece,       // countable item; grams via IngredientInfo::grams_per_piece
  kSheet,       // gelatin leaf etc.; same conversion as kPiece
  kPinch,       // ~0.3 g regardless of ingredient
};

/// Canonical spelling used in serialized recipes ("g", "tbsp", ...).
const char* UnitName(Unit unit);

/// Parses a unit token; accepts the canonical names plus common variants
/// ("cc", "ml", "tsp", "kosaji", "oosaji", "cups", "pieces", "sheets").
StatusOr<Unit> ParseUnit(std::string_view token);

/// A parsed ingredient quantity.
struct Quantity {
  double amount = 0.0;
  Unit unit = Unit::kGram;
};

/// Parses quantity strings as they appear in posted recipes:
///   "200 g", "2tbsp", "1/2 cup", "1.5 l", "3 sheets", "1 pinch".
/// Mixed numbers ("1 1/2 cup") are supported.
StatusOr<Quantity> ParseQuantity(std::string_view text);

/// Milliliter capacity of a volume unit; InvalidArgument for weight/piece
/// units.
StatusOr<double> UnitCapacityMl(Unit unit);

/// Converts a quantity of `info` to grams. Volume units use the
/// ingredient's specific gravity; piece/sheet units require
/// grams_per_piece > 0; pinch is a fixed 0.3 g.
StatusOr<double> ToGrams(const Quantity& quantity, const IngredientInfo& info);

}  // namespace texrheo::recipe

#endif  // TEXRHEO_RECIPE_UNITS_H_
