#include "recipe/units.h"

#include <cctype>

#include "util/string_util.h"

namespace texrheo::recipe {
namespace {

constexpr double kPinchGrams = 0.3;

// Parses "3", "1.5", "1/2", or a mixed number "1 1/2" from the front of
// `text`; returns the value and the number of characters consumed.
StatusOr<double> ParseAmount(std::string_view text, size_t* consumed) {
  size_t i = 0;
  auto read_number = [&](double* out) -> bool {
    size_t start = i;
    while (i < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[i])) ||
            text[i] == '.')) {
      ++i;
    }
    if (i == start) return false;
    auto v = ParseDouble(text.substr(start, i - start));
    if (!v.ok()) return false;
    *out = v.value();
    return true;
  };

  double whole = 0.0;
  if (!read_number(&whole)) {
    return Status::InvalidArgument("quantity has no leading number: '" +
                                   std::string(text) + "'");
  }
  double value = whole;
  // Fraction directly attached: "1/2".
  if (i < text.size() && text[i] == '/') {
    ++i;
    double denom = 0.0;
    if (!read_number(&denom) || denom == 0.0) {
      return Status::InvalidArgument("malformed fraction in quantity");
    }
    value = whole / denom;
  } else {
    // Mixed number: "1 1/2".
    size_t save = i;
    while (i < text.size() && text[i] == ' ') ++i;
    double num = 0.0;
    size_t num_start = i;
    if (read_number(&num) && i < text.size() && text[i] == '/') {
      ++i;
      double denom = 0.0;
      if (!read_number(&denom) || denom == 0.0) {
        return Status::InvalidArgument("malformed fraction in quantity");
      }
      value = whole + num / denom;
    } else {
      i = save;
      (void)num_start;
    }
  }
  *consumed = i;
  return value;
}

}  // namespace

const char* UnitName(Unit unit) {
  switch (unit) {
    case Unit::kGram:
      return "g";
    case Unit::kKilogram:
      return "kg";
    case Unit::kMilliliter:
      return "ml";
    case Unit::kLiter:
      return "l";
    case Unit::kSmallSpoon:
      return "tsp";
    case Unit::kLargeSpoon:
      return "tbsp";
    case Unit::kCup:
      return "cup";
    case Unit::kPiece:
      return "piece";
    case Unit::kSheet:
      return "sheet";
    case Unit::kPinch:
      return "pinch";
  }
  return "?";
}

StatusOr<Unit> ParseUnit(std::string_view token) {
  std::string t = ToLower(Trim(token));
  if (t == "g" || t == "gram" || t == "grams") return Unit::kGram;
  if (t == "kg") return Unit::kKilogram;
  if (t == "ml" || t == "cc" || t == "milliliter") return Unit::kMilliliter;
  if (t == "l" || t == "liter" || t == "litre") return Unit::kLiter;
  if (t == "tsp" || t == "kosaji" || t == "small-spoon") {
    return Unit::kSmallSpoon;
  }
  if (t == "tbsp" || t == "oosaji" || t == "large-spoon") {
    return Unit::kLargeSpoon;
  }
  if (t == "cup" || t == "cups") return Unit::kCup;
  if (t == "piece" || t == "pieces" || t == "ko") return Unit::kPiece;
  if (t == "sheet" || t == "sheets" || t == "mai") return Unit::kSheet;
  if (t == "pinch" || t == "pinches") return Unit::kPinch;
  return Status::InvalidArgument("unknown unit: '" + std::string(token) + "'");
}

StatusOr<Quantity> ParseQuantity(std::string_view text) {
  std::string_view t = Trim(text);
  if (t.empty()) return Status::InvalidArgument("empty quantity");
  size_t consumed = 0;
  TEXRHEO_ASSIGN_OR_RETURN(double amount, ParseAmount(t, &consumed));
  if (amount < 0.0) return Status::InvalidArgument("negative quantity");
  std::string_view unit_part = Trim(t.substr(consumed));
  Quantity q;
  q.amount = amount;
  if (unit_part.empty()) {
    // Bare numbers in posted recipes mean grams.
    q.unit = Unit::kGram;
    return q;
  }
  TEXRHEO_ASSIGN_OR_RETURN(q.unit, ParseUnit(unit_part));
  return q;
}

StatusOr<double> UnitCapacityMl(Unit unit) {
  switch (unit) {
    case Unit::kMilliliter:
      return 1.0;
    case Unit::kLiter:
      return 1000.0;
    case Unit::kSmallSpoon:
      return 5.0;
    case Unit::kLargeSpoon:
      return 15.0;
    case Unit::kCup:
      return 200.0;
    default:
      return Status::InvalidArgument(std::string("unit has no volume: ") +
                                     UnitName(unit));
  }
}

StatusOr<double> ToGrams(const Quantity& quantity,
                         const IngredientInfo& info) {
  switch (quantity.unit) {
    case Unit::kGram:
      return quantity.amount;
    case Unit::kKilogram:
      return quantity.amount * 1000.0;
    case Unit::kMilliliter:
    case Unit::kLiter:
    case Unit::kSmallSpoon:
    case Unit::kLargeSpoon:
    case Unit::kCup: {
      TEXRHEO_ASSIGN_OR_RETURN(double ml, UnitCapacityMl(quantity.unit));
      return quantity.amount * ml * info.specific_gravity;
    }
    case Unit::kPiece:
    case Unit::kSheet: {
      if (info.grams_per_piece <= 0.0) {
        return Status::InvalidArgument(
            "ingredient '" + info.name + "' has no per-piece weight");
      }
      return quantity.amount * info.grams_per_piece;
    }
    case Unit::kPinch:
      return quantity.amount * kPinchGrams;
  }
  return Status::Internal("unhandled unit");
}

}  // namespace texrheo::recipe
