#include "recipe/recipe.h"

#include "util/csv.h"
#include "util/json.h"
#include "util/string_util.h"

namespace texrheo::recipe {
namespace {

// Ingredient and metadata fields use ';' between entries and '=' inside an
// entry; recipe text never contains these in this corpus format.
std::string EncodeIngredients(const std::vector<IngredientLine>& lines) {
  std::vector<std::string> parts;
  parts.reserve(lines.size());
  for (const auto& line : lines) {
    parts.push_back(line.name + "=" + line.quantity);
  }
  return Join(parts, ";");
}

StatusOr<std::vector<IngredientLine>> DecodeIngredients(
    std::string_view field) {
  std::vector<IngredientLine> out;
  if (Trim(field).empty()) return out;
  for (const std::string& part : Split(field, ';')) {
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed ingredient entry: '" + part +
                                     "'");
    }
    out.push_back(IngredientLine{part.substr(0, eq), part.substr(eq + 1)});
  }
  return out;
}

std::string EncodeMetadata(const std::map<std::string, std::string>& meta) {
  std::vector<std::string> parts;
  parts.reserve(meta.size());
  for (const auto& [k, v] : meta) parts.push_back(k + "=" + v);
  return Join(parts, ";");
}

StatusOr<std::map<std::string, std::string>> DecodeMetadata(
    std::string_view field) {
  std::map<std::string, std::string> out;
  if (Trim(field).empty()) return out;
  for (const std::string& part : Split(field, ';')) {
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed metadata entry: '" + part +
                                     "'");
    }
    out[part.substr(0, eq)] = part.substr(eq + 1);
  }
  return out;
}

}  // namespace

std::vector<std::string> RecipeToRow(const Recipe& recipe) {
  return {std::to_string(recipe.id), recipe.title, recipe.description,
          EncodeIngredients(recipe.ingredients),
          EncodeMetadata(recipe.metadata)};
}

StatusOr<Recipe> RecipeFromRow(const std::vector<std::string>& row) {
  if (row.size() < 4) {
    return Status::InvalidArgument("recipe row needs >= 4 fields, got " +
                                   std::to_string(row.size()));
  }
  Recipe r;
  TEXRHEO_ASSIGN_OR_RETURN(int64_t id, ParseInt(row[0]));
  r.id = id;
  r.title = row[1];
  r.description = row[2];
  TEXRHEO_ASSIGN_OR_RETURN(r.ingredients, DecodeIngredients(row[3]));
  if (row.size() >= 5) {
    TEXRHEO_ASSIGN_OR_RETURN(r.metadata, DecodeMetadata(row[4]));
  }
  return r;
}

Status SaveCorpus(const std::string& path,
                  const std::vector<Recipe>& recipes) {
  std::vector<CsvRow> rows;
  rows.reserve(recipes.size() + 1);
  rows.push_back({"id", "title", "description", "ingredients", "metadata"});
  for (const Recipe& r : recipes) rows.push_back(RecipeToRow(r));
  return WriteCsvFile(path, rows, '\t');
}

StatusOr<std::vector<Recipe>> LoadCorpus(const std::string& path) {
  TEXRHEO_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                           CsvReader::ReadFile(path, '\t'));
  std::vector<Recipe> recipes;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i == 0 && !rows[i].empty() && rows[i][0] == "id") continue;  // header
    TEXRHEO_ASSIGN_OR_RETURN(Recipe r, RecipeFromRow(rows[i]));
    recipes.push_back(std::move(r));
  }
  return recipes;
}

std::string RecipeToJson(const Recipe& recipe) {
  JsonValue obj = JsonValue::MakeObject();
  obj.AsObject()["id"] = JsonValue::Number(static_cast<double>(recipe.id));
  obj.AsObject()["title"] = JsonValue::String(recipe.title);
  obj.AsObject()["description"] = JsonValue::String(recipe.description);
  JsonValue ingredients = JsonValue::MakeArray();
  for (const auto& line : recipe.ingredients) {
    JsonValue entry = JsonValue::MakeObject();
    entry.AsObject()["name"] = JsonValue::String(line.name);
    entry.AsObject()["quantity"] = JsonValue::String(line.quantity);
    ingredients.AsArray().push_back(std::move(entry));
  }
  obj.AsObject()["ingredients"] = std::move(ingredients);
  JsonValue metadata = JsonValue::MakeObject();
  for (const auto& [k, v] : recipe.metadata) {
    metadata.AsObject()[k] = JsonValue::String(v);
  }
  obj.AsObject()["metadata"] = std::move(metadata);
  return obj.Serialize();
}

StatusOr<Recipe> RecipeFromJson(std::string_view json) {
  TEXRHEO_ASSIGN_OR_RETURN(JsonValue value, JsonValue::Parse(json));
  if (!value.is_object()) {
    return Status::InvalidArgument("recipe json: not an object");
  }
  Recipe r;
  if (const JsonValue* id = value.Find("id"); id && id->is_number()) {
    r.id = static_cast<int64_t>(id->AsNumber());
  }
  if (const JsonValue* t = value.Find("title"); t && t->is_string()) {
    r.title = t->AsString();
  }
  if (const JsonValue* d = value.Find("description"); d && d->is_string()) {
    r.description = d->AsString();
  }
  if (const JsonValue* ing = value.Find("ingredients")) {
    if (!ing->is_array()) {
      return Status::InvalidArgument("recipe json: ingredients not an array");
    }
    for (const JsonValue& entry : ing->AsArray()) {
      const JsonValue* name = entry.Find("name");
      const JsonValue* quantity = entry.Find("quantity");
      if (name == nullptr || quantity == nullptr || !name->is_string() ||
          !quantity->is_string()) {
        return Status::InvalidArgument("recipe json: malformed ingredient");
      }
      r.ingredients.push_back({name->AsString(), quantity->AsString()});
    }
  }
  if (const JsonValue* meta = value.Find("metadata")) {
    if (!meta->is_object()) {
      return Status::InvalidArgument("recipe json: metadata not an object");
    }
    for (const auto& [k, v] : meta->AsObject()) {
      if (!v.is_string()) {
        return Status::InvalidArgument("recipe json: metadata values must be "
                                       "strings");
      }
      r.metadata[k] = v.AsString();
    }
  }
  return r;
}

Status SaveCorpusJsonl(const std::string& path,
                       const std::vector<Recipe>& recipes) {
  std::string out;
  for (const Recipe& r : recipes) {
    out += RecipeToJson(r);
    out.push_back('\n');
  }
  return WriteStringToFile(path, out);
}

StatusOr<std::vector<Recipe>> LoadCorpusJsonl(const std::string& path) {
  TEXRHEO_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  std::vector<Recipe> recipes;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    std::string_view line(content.data() + start, end - start);
    if (!Trim(line).empty()) {
      TEXRHEO_ASSIGN_OR_RETURN(Recipe r, RecipeFromJson(line));
      recipes.push_back(std::move(r));
    }
    start = end + 1;
  }
  return recipes;
}

}  // namespace texrheo::recipe
