#ifndef TEXRHEO_RECIPE_FEATURES_H_
#define TEXRHEO_RECIPE_FEATURES_H_

#include "math/linalg.h"
#include "recipe/ingredient.h"
#include "recipe/recipe.h"
#include "util/status.h"

namespace texrheo::recipe {

/// Controls the concentration -> feature transform.
struct FeatureConfig {
  /// Floor applied before -log(x): absent ingredients (x = 0) map to
  /// -log(epsilon) ~ 9.21 instead of infinity. The paper's transform is
  /// undefined at 0; epsilon is chosen well below any real gel usage
  /// (~0.002), so "absent" stays clearly separated from "present".
  double epsilon = 1e-4;
  /// When false, raw concentration ratios are used instead of -log(x)
  /// (ablation of the paper's information-quantity transform).
  bool use_information_quantity = true;
};

/// Weight-based concentrations of one recipe (ratios of ingredient weight
/// to total recipe weight, per Section III.A of the paper).
struct Concentrations {
  /// Raw ratios in [0, 1], indexed by GelType.
  math::Vector gel = math::Vector(kNumGelTypes);
  /// Raw ratios in [0, 1], indexed by EmulsionType.
  math::Vector emulsion = math::Vector(kNumEmulsionTypes);
  /// Fraction of total weight contributed by kOther ingredients that are
  /// not near-water liquids; drives the >10% unrelated-ingredient filter.
  double unrelated_fraction = 0.0;
  /// Total recipe weight in grams.
  double total_grams = 0.0;

  bool HasAnyGel() const {
    for (size_t i = 0; i < gel.size(); ++i) {
      if (gel[i] > 0.0) return true;
    }
    return false;
  }
};

/// Computes concentrations from a recipe's ingredient lines. Quantity
/// strings are parsed and converted to grams via the database; unknown
/// ingredient names are treated as unrelated with specific gravity 1.
/// Fails when no quantity parses or total weight is zero.
StatusOr<Concentrations> ComputeConcentrations(const Recipe& recipe,
                                               const IngredientDatabase& db);

/// Applies the information-quantity transform of the paper: x -> -log(x)
/// with the epsilon floor (or identity when disabled).
math::Vector ToFeature(const math::Vector& concentration,
                       const FeatureConfig& config);

/// Inverse of ToFeature (up to the epsilon floor).
math::Vector FromFeature(const math::Vector& feature,
                         const FeatureConfig& config);

}  // namespace texrheo::recipe

#endif  // TEXRHEO_RECIPE_FEATURES_H_
