#include "recipe/ingredient.h"

#include "util/string_util.h"

namespace texrheo::recipe {
namespace {

IngredientInfo Gel(const char* name, GelType type, double sg,
                   double grams_per_piece = 0.0) {
  IngredientInfo info;
  info.name = name;
  info.cls = IngredientClass::kGel;
  info.gel_type = type;
  info.specific_gravity = sg;
  info.grams_per_piece = grams_per_piece;
  return info;
}

IngredientInfo Emulsion(const char* name, EmulsionType type, double sg,
                        double grams_per_piece = 0.0) {
  IngredientInfo info;
  info.name = name;
  info.cls = IngredientClass::kEmulsion;
  info.emulsion_type = type;
  info.specific_gravity = sg;
  info.grams_per_piece = grams_per_piece;
  return info;
}

IngredientInfo Other(const char* name, double sg,
                     double grams_per_piece = 0.0) {
  IngredientInfo info;
  info.name = name;
  info.cls = IngredientClass::kOther;
  info.specific_gravity = sg;
  info.grams_per_piece = grams_per_piece;
  return info;
}

IngredientInfo Liquid(const char* name, double sg) {
  IngredientInfo info = Other(name, sg);
  info.liquid_base = true;
  return info;
}

std::vector<IngredientInfo> BuildEmbedded() {
  return {
      // Gels. Powdered gelatin ~0.68 g/mL; a gelatin leaf is ~2.5 g; a
      // kanten stick ~8 g; powdered agar/kanten ~0.55 g/mL.
      Gel("gelatin", GelType::kGelatin, 0.68),
      Gel("gelatin-powder", GelType::kGelatin, 0.68),
      Gel("gelatin-leaf", GelType::kGelatin, 0.68, 2.5),
      Gel("kanten", GelType::kKanten, 0.55),
      Gel("kanten-powder", GelType::kKanten, 0.55),
      Gel("kanten-stick", GelType::kKanten, 0.55, 8.0),
      Gel("agar", GelType::kAgar, 0.55),
      Gel("agar-powder", GelType::kAgar, 0.55),
      // Emulsions.
      Emulsion("sugar", EmulsionType::kSugar, 0.85),
      Emulsion("granulated-sugar", EmulsionType::kSugar, 0.85),
      Emulsion("egg-albumen", EmulsionType::kEggAlbumen, 1.04, 35.0),
      Emulsion("egg-white", EmulsionType::kEggAlbumen, 1.04, 35.0),
      Emulsion("egg-yolk", EmulsionType::kEggYolk, 1.03, 18.0),
      Emulsion("raw-cream", EmulsionType::kRawCream, 1.0),
      Emulsion("whipping-cream", EmulsionType::kRawCream, 1.0),
      Emulsion("milk", EmulsionType::kMilk, 1.03),
      Emulsion("yogurt", EmulsionType::kYogurt, 1.04),
      // Liquid bases (kOther but exempt from the unrelated-weight filter).
      Liquid("water", 1.0),
      Liquid("juice", 1.05),
      Liquid("orange-juice", 1.05),
      Liquid("grape-juice", 1.06),
      Liquid("coffee", 1.0),
      Liquid("green-tea", 1.0),
      Liquid("wine", 0.99),
      Liquid("coconut-milk", 0.95),
      // Fruits & solids (unrelated; often counted in pieces).
      Other("strawberry", 0.6, 15.0),
      Other("orange", 0.75, 130.0),
      Other("peach", 0.8, 170.0),
      Other("banana", 0.85, 100.0),
      Other("apple", 0.8, 250.0),
      Other("pineapple", 0.8, 900.0),
      Other("mandarin", 0.75, 80.0),
      Other("blueberry", 0.63, 1.5),
      Other("kiwi", 0.85, 90.0),
      Other("azuki-paste", 1.2),
      Other("cocoa", 0.45),
      Other("matcha", 0.4),
      Other("honey", 1.42),
      Other("lemon-juice", 1.03),
      // Topping confounders (produce crispy-type texture terms in
      // descriptions without affecting the gel texture).
      Other("nuts", 0.55, 1.0),
      Other("almond", 0.55, 1.2),
      Other("walnut", 0.5, 4.0),
      Other("granola", 0.4),
      Other("cookie", 0.5, 8.0),
      Other("biscuit", 0.5, 7.0),
      Other("cornflake", 0.12),
      Other("wafer", 0.3, 4.0),
  };
}

}  // namespace

const char* GelTypeName(GelType type) {
  switch (type) {
    case GelType::kGelatin:
      return "gelatin";
    case GelType::kKanten:
      return "kanten";
    case GelType::kAgar:
      return "agar";
  }
  return "?";
}

const char* EmulsionTypeName(EmulsionType type) {
  switch (type) {
    case EmulsionType::kSugar:
      return "sugar";
    case EmulsionType::kEggAlbumen:
      return "egg-albumen";
    case EmulsionType::kEggYolk:
      return "egg-yolk";
    case EmulsionType::kRawCream:
      return "raw-cream";
    case EmulsionType::kMilk:
      return "milk";
    case EmulsionType::kYogurt:
      return "yogurt";
  }
  return "?";
}

IngredientDatabase::IngredientDatabase(std::vector<IngredientInfo> infos)
    : infos_(std::move(infos)) {
  for (size_t i = 0; i < infos_.size(); ++i) {
    index_.emplace(ToLower(infos_[i].name), i);
  }
}

const IngredientDatabase& IngredientDatabase::Embedded() {
  static const IngredientDatabase& db =
      *new IngredientDatabase(BuildEmbedded());
  return db;
}

const IngredientInfo* IngredientDatabase::Find(std::string_view name) const {
  auto it = index_.find(ToLower(name));
  return it == index_.end() ? nullptr : &infos_[it->second];
}

}  // namespace texrheo::recipe
