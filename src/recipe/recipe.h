#ifndef TEXRHEO_RECIPE_RECIPE_H_
#define TEXRHEO_RECIPE_RECIPE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace texrheo::recipe {

/// One ingredient line of a posted recipe, as written by the user:
/// an ingredient name and a free-form quantity string ("2 tbsp", "200 cc").
struct IngredientLine {
  std::string name;
  std::string quantity;
};

/// A posted recipe. `metadata` carries optional provenance fields; the
/// synthetic corpus stores its ground truth there (true dish template,
/// true rheology) so evaluation code can score recovered topics without
/// the model ever seeing those fields.
struct Recipe {
  int64_t id = 0;
  std::string title;
  std::string description;
  std::vector<IngredientLine> ingredients;
  std::map<std::string, std::string> metadata;
};

/// Serializes one recipe to a TSV row:
///   id, title, description, "name=qty;name=qty;...", "k=v;k=v;..."
std::vector<std::string> RecipeToRow(const Recipe& recipe);

/// Parses a row produced by RecipeToRow.
StatusOr<Recipe> RecipeFromRow(const std::vector<std::string>& row);

/// Writes a corpus as TSV (one recipe per line, header included).
Status SaveCorpus(const std::string& path, const std::vector<Recipe>& recipes);

/// Loads a corpus written by SaveCorpus.
StatusOr<std::vector<Recipe>> LoadCorpus(const std::string& path);

/// Serializes one recipe to a single-line JSON object:
///   {"id":1,"title":...,"description":...,
///    "ingredients":[{"name":...,"quantity":...},...],"metadata":{...}}
std::string RecipeToJson(const Recipe& recipe);

/// Parses a recipe from RecipeToJson output (id/title default when absent).
StatusOr<Recipe> RecipeFromJson(std::string_view json);

/// Writes a corpus as JSONL (one JSON object per line).
Status SaveCorpusJsonl(const std::string& path,
                       const std::vector<Recipe>& recipes);

/// Loads a corpus written by SaveCorpusJsonl; blank lines are skipped.
StatusOr<std::vector<Recipe>> LoadCorpusJsonl(const std::string& path);

}  // namespace texrheo::recipe

#endif  // TEXRHEO_RECIPE_RECIPE_H_
