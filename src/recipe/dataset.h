#ifndef TEXRHEO_RECIPE_DATASET_H_
#define TEXRHEO_RECIPE_DATASET_H_

#include <cstdint>
#include <vector>

#include "math/linalg.h"
#include "recipe/features.h"
#include "recipe/ingredient.h"
#include "recipe/recipe.h"
#include "text/texture_dictionary.h"
#include "text/vocabulary.h"
#include "text/word2vec.h"
#include "util/status.h"

namespace texrheo::recipe {

/// One model-ready recipe: the joint topic model's observables
/// (texture-term sequence w, gel vector g, emulsion vector e).
struct Document {
  /// Index of the source recipe in the input corpus.
  size_t recipe_index = 0;
  /// Texture-term occurrences in order, as term-vocabulary ids.
  std::vector<int32_t> term_ids;
  /// -log-transformed gel concentration feature (dimension 3).
  math::Vector gel_feature;
  /// -log-transformed emulsion concentration feature (dimension 6).
  math::Vector emulsion_feature;
  /// Raw concentration ratios (kept for KL rankings and reporting).
  math::Vector gel_concentration;
  math::Vector emulsion_concentration;
};

/// Counts at each stage of the paper's data funnel
/// (63,000 -> ~10,000 with texture terms -> ~3,000 final in the paper).
struct FunnelStats {
  size_t total = 0;                 ///< Recipes in the raw corpus.
  size_t with_gel = 0;              ///< ... containing any gel ingredient.
  size_t with_texture_terms = 0;    ///< ... whose description has dictionary
                                    ///< texture terms (after word2vec filter).
  size_t final_dataset = 0;         ///< ... passing the unrelated-weight cap.
  size_t distinct_terms = 0;        ///< Distinct texture terms observed
                                    ///< (paper: 41 of 288).
  size_t occurrences_removed_by_filter = 0;  ///< Term tokens dropped by the
                                             ///< gel-relatedness filter.
};

/// Dataset construction options.
struct DatasetConfig {
  FeatureConfig feature;
  /// Recipes whose non-gel/non-emulsion solid weight exceeds this fraction
  /// are excluded (paper: 10 percent).
  double max_unrelated_fraction = 0.10;
};

/// Model-ready dataset plus provenance.
struct Dataset {
  std::vector<Document> documents;
  text::Vocabulary term_vocab;  ///< Texture-term vocabulary (ids used by
                                ///< Document::term_ids).
  FunnelStats funnel;
};

/// Runs the paper's Section III.A / IV.A pipeline over a corpus:
/// extract texture terms by dictionary match, optionally drop occurrences
/// of terms the word2vec `filter` marks gel-unrelated, compute weight-based
/// concentrations, apply the gel / texture-term / unrelated-weight funnel,
/// and emit model-ready documents. `filter` may be null (no screening).
StatusOr<Dataset> BuildDataset(const std::vector<Recipe>& corpus,
                               const IngredientDatabase& db,
                               const text::TextureDictionary& dict,
                               const text::GelRelatednessFilter* filter,
                               const DatasetConfig& config);

}  // namespace texrheo::recipe

#endif  // TEXRHEO_RECIPE_DATASET_H_
