#ifndef TEXRHEO_RECIPE_INGREDIENT_H_
#define TEXRHEO_RECIPE_INGREDIENT_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace texrheo::recipe {

/// The paper's three ingredient roles: gelling agents drive texture,
/// emulsions modulate it, everything else is "unrelated" (and recipes
/// dominated by unrelated ingredients are filtered out).
enum class IngredientClass { kGel = 0, kEmulsion = 1, kOther = 2 };

/// The three gels the paper models, in feature-vector order.
enum class GelType { kGelatin = 0, kKanten = 1, kAgar = 2 };
inline constexpr int kNumGelTypes = 3;
const char* GelTypeName(GelType type);

/// The six emulsions the paper models, in feature-vector order.
enum class EmulsionType {
  kSugar = 0,
  kEggAlbumen = 1,
  kEggYolk = 2,
  kRawCream = 3,
  kMilk = 4,
  kYogurt = 5,
};
inline constexpr int kNumEmulsionTypes = 6;
const char* EmulsionTypeName(EmulsionType type);

/// Static properties of one ingredient name as it appears in recipes.
struct IngredientInfo {
  std::string name;
  IngredientClass cls = IngredientClass::kOther;
  /// Valid when cls == kGel.
  GelType gel_type = GelType::kGelatin;
  /// Valid when cls == kEmulsion.
  EmulsionType emulsion_type = EmulsionType::kSugar;
  /// Density in g/mL, used to convert volume units to weight (the paper:
  /// "a specific weight against water is taken into account").
  double specific_gravity = 1.0;
  /// Grams per countable piece/sheet (e.g. one gelatin leaf ~ 2.5 g);
  /// 0 when the ingredient is not counted in pieces.
  double grams_per_piece = 0.0;
  /// True for liquid bases (water, juice, coffee...). These are kOther but
  /// do not count toward the paper's >10% "unrelated ingredient" filter,
  /// since every jelly is mostly liquid base by weight.
  bool liquid_base = false;
};

/// Lookup table of known ingredients. `Embedded()` carries the ingredients
/// used by the synthetic Cookpad corpus: the 3 gels (with leaf/stick
/// variants), the 6 emulsions, and a set of unrelated ingredients (fruit,
/// toppings, liquids) with realistic specific gravities.
class IngredientDatabase {
 public:
  static const IngredientDatabase& Embedded();

  explicit IngredientDatabase(std::vector<IngredientInfo> infos);

  /// Case-insensitive lookup; nullptr when unknown. Unknown ingredients are
  /// treated as kOther with specific gravity 1 by downstream code.
  const IngredientInfo* Find(std::string_view name) const;

  const std::vector<IngredientInfo>& infos() const { return infos_; }

 private:
  std::vector<IngredientInfo> infos_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace texrheo::recipe

#endif  // TEXRHEO_RECIPE_INGREDIENT_H_
