#ifndef TEXRHEO_UTIL_SOCKET_OPS_H_
#define TEXRHEO_UTIL_SOCKET_OPS_H_

#include <sys/types.h>

#include <cstddef>

namespace texrheo {

/// Seam over the POSIX socket calls the serving layer's I/O paths use,
/// mirroring the FileOps seam of the durable-write path (util/atomic_file.h):
/// production code talks to Real(); tests substitute a fault-injecting
/// decorator (partial reads/writes, EINTR, ECONNRESET, stalls, flaky
/// accepts) so every degraded-network branch can be driven deterministically
/// without a hostile peer.
///
/// Implementations follow errno conventions: a negative return means failure
/// with the cause in errno, exactly like the underlying syscalls, so callers
/// written against this interface handle real kernels and injected faults
/// identically.
class SocketOps {
 public:
  virtual ~SocketOps() = default;

  /// recv(2): > 0 bytes read, 0 peer closed, -1 error (errno).
  virtual ssize_t Recv(int fd, void* buf, size_t len);
  /// send(2) with MSG_NOSIGNAL; may transfer fewer than `len` bytes.
  virtual ssize_t Send(int fd, const void* buf, size_t len);
  /// accept(2) on a listener: >= 0 connection fd, -1 error (errno).
  virtual int Accept(int listen_fd);
  /// poll(2) on a single fd. `events` is the poll bitmask (POLLIN /
  /// POLLOUT). Returns 1 when ready, 0 on timeout, -1 on error (errno).
  virtual int Poll(int fd, short events, int timeout_millis);
  virtual int Close(int fd);
  virtual int Shutdown(int fd, int how);

  /// Shared pass-through instance backed by the kernel.
  static SocketOps& Real();
};

/// Marks `fd` non-blocking (O_NONBLOCK). The serving layer drives every
/// socket through Poll() + non-blocking Recv/Send so a stalled peer can
/// never park a thread inside a syscall past its deadline.
bool SetNonBlocking(int fd);

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_SOCKET_OPS_H_
