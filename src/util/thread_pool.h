#ifndef TEXRHEO_UTIL_THREAD_POOL_H_
#define TEXRHEO_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace texrheo {

/// Reusable fixed-size worker pool for data-parallel sweeps.
///
/// The pool is built once and reused across many ParallelFor calls (one per
/// Gibbs sweep phase), so thread start-up cost is paid only at construction.
/// ParallelFor(n, fn) runs fn(0) ... fn(n-1), each exactly once, distributed
/// over the workers *and* the calling thread, and returns only after every
/// invocation has finished. Tasks of one batch must not call back into the
/// pool (no nesting).
///
/// A pool of size P spawns P-1 background workers; the caller acts as the
/// P-th worker inside ParallelFor. ThreadPool(1) therefore degenerates to a
/// plain serial loop with no threads at all.
class ThreadPool {
 public:
  /// `num_threads` >= 1 is the total parallelism (including the caller).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + calling thread).
  int size() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, num_tasks), blocking until all complete.
  /// Task indices are claimed dynamically, so callers that want
  /// deterministic work-to-randomness mapping must key their state (RNG
  /// streams, scratch buffers) on the task index, never on the thread.
  void ParallelFor(int num_tasks, const std::function<void(int)>& fn);

  /// std::thread::hardware_concurrency(), clamped to >= 1.
  static int HardwareConcurrency();

 private:
  /// One ParallelFor invocation. Heap-allocated and shared with the workers
  /// so that a straggler waking up late touches only its own batch's
  /// counters, never a successor batch's.
  struct Batch {
    const std::function<void(int)>* fn = nullptr;
    int total = 0;
    std::atomic<int> next{0};
    std::atomic<int> completed{0};
  };

  void WorkerLoop();
  /// Claims and runs tasks of `batch` until exhausted; signals done_cv_
  /// after finishing the last one.
  void DrainBatch(const std::shared_ptr<Batch>& batch);

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Workers wait for a new batch.
  std::condition_variable done_cv_;  ///< ParallelFor waits for completion.
  std::shared_ptr<Batch> batch_;     // Guarded by mu_.
  uint64_t generation_ = 0;          // Guarded by mu_.
  bool shutdown_ = false;            // Guarded by mu_.
  std::vector<std::thread> workers_;
};

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_THREAD_POOL_H_
