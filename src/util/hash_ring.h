#ifndef TEXRHEO_UTIL_HASH_RING_H_
#define TEXRHEO_UTIL_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace texrheo {

/// FNV-1a 64-bit hash. Deterministic across platforms and runs (no
/// per-process seeding), which is what a consistent-hash ring needs: the
/// same key must land on the same replica after every router restart, or
/// every restart cold-starts every replica cache.
uint64_t Fnv1a64(std::string_view data);

/// 64-bit avalanche finalizer (murmur3 fmix64). FNV-1a alone is too weak
/// for ring placement: labels sharing a long prefix ("127.0.0.1:<port>")
/// hash to values whose per-vnode points are near-constant translations of
/// each other, so one node can end up owning almost the whole ring. The
/// finalizer decorrelates them while staying fully deterministic.
uint64_t Mix64(uint64_t x);

/// Consistent-hash ring with virtual nodes.
///
/// Each node is placed at `vnodes` points on a 64-bit ring (point i of
/// node `label` hashes Mix64(Fnv1a64("label#i"))); a key is owned by the
/// first node point clockwise from the key's hash. Virtual nodes smooth the
/// load split (with 64 vnodes the max/min owned-arc ratio across a handful
/// of nodes is within a few tens of percent), and removing a node reassigns only
/// that node's arcs — the property the serving router relies on: replica
/// N's LRU cache stays hot for its key range across fleet membership
/// changes elsewhere.
///
/// The ring is a value type and is not internally synchronized. The router
/// builds it once at startup and never mutates it afterwards (liveness is
/// a per-replica overlay, not ring membership), so concurrent NodesFor
/// calls are safe by immutability.
class HashRing {
 public:
  /// `vnodes` points per node; must be >= 1.
  explicit HashRing(int vnodes = 64);

  /// Places `node_id` on the ring under `label`. Labels must be unique and
  /// stable (the router uses "host:port"); re-adding a label is ignored.
  void AddNode(int node_id, std::string_view label);

  /// Removes every point of `node_id`. No-op when absent.
  void RemoveNode(int node_id);

  bool empty() const { return points_.empty(); }
  size_t num_nodes() const { return num_nodes_; }

  /// Owner of `key`: the ring walk order truncated to one node.
  /// Returns -1 on an empty ring.
  int NodeFor(std::string_view key) const;

  /// The first `max_nodes` *distinct* nodes clockwise from `key`'s hash,
  /// primary owner first. This is the retry / hedge candidate order: a
  /// request that fails on its primary moves to the next distinct replica,
  /// deterministically per key.
  std::vector<int> NodesFor(std::string_view key, size_t max_nodes) const;

 private:
  struct Point {
    uint64_t hash;
    int node_id;
    bool operator<(const Point& other) const {
      return hash != other.hash ? hash < other.hash : node_id < other.node_id;
    }
  };

  const int vnodes_;
  size_t num_nodes_ = 0;
  std::vector<Point> points_;  ///< Sorted by hash.
};

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_HASH_RING_H_
