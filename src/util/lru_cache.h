#ifndef TEXRHEO_UTIL_LRU_CACHE_H_
#define TEXRHEO_UTIL_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace texrheo {

/// Counter snapshot of an LruCache. All values are monotonic totals except
/// `size` (current entry count) and `capacity`.
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t size = 0;
  size_t capacity = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Thread-safe least-recently-used cache.
///
/// A single mutex guards the map, the recency list, and the counters; the
/// critical sections are O(1) (hash probe + list splice), so the lock is
/// held for well under the cost of recomputing any value this library
/// caches. Values are returned *by copy* so a reader never holds a
/// reference into the cache after the lock is released (an entry can be
/// evicted the instant Get returns).
///
/// Eviction is strict LRU: Get and Put both refresh recency; inserting into
/// a full cache evicts the least recently touched entry.
template <typename Key, typename Value>
class LruCache {
 public:
  /// `capacity` == 0 disables caching entirely: every Get is a miss and Put
  /// is a no-op (counted as neither insertion nor eviction).
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns a copy of the cached value and refreshes its recency, or
  /// nullopt on a miss.
  std::optional<Value> Get(const Key& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites `key`; either way the entry becomes most
  /// recent and counts as an insertion. Evicts the LRU entry when a *new*
  /// key exceeds capacity (overwrites never evict).
  void Put(const Key& key, Value value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      ++insertions_;
      return;
    }
    if (order_.size() >= capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    ++insertions_;
  }

  /// Drops every entry (counters other than `size` are preserved; an
  /// explicit flush is not an eviction).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    order_.clear();
    index_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_.size();
  }
  size_t capacity() const { return capacity_; }

  LruCacheStats Stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    LruCacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.insertions = insertions_;
    stats.evictions = evictions_;
    stats.size = order_.size();
    stats.capacity = capacity_;
    return stats;
  }

 private:
  using Entry = std::pair<Key, Value>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  ///< Front = most recent. Guarded by mu_.
  std::unordered_map<Key, typename std::list<Entry>::iterator>
      index_;  ///< Guarded by mu_.
  uint64_t hits_ = 0;        // Guarded by mu_.
  uint64_t misses_ = 0;      // Guarded by mu_.
  uint64_t insertions_ = 0;  // Guarded by mu_.
  uint64_t evictions_ = 0;   // Guarded by mu_.
};

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_LRU_CACHE_H_
