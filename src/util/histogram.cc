#include "util/histogram.h"

#include <cmath>
#include <cstdio>

namespace texrheo {

size_t LatencyHistogram::BucketFor(int64_t micros) {
  if (micros < 1) return 0;
  uint64_t u = static_cast<uint64_t>(micros);
  size_t b = static_cast<size_t>(63 - __builtin_clzll(u));
  return b >= kNumBuckets ? kNumBuckets - 1 : b;
}

void LatencyHistogram::Record(int64_t micros) {
  if (micros < 0) micros = 0;
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(static_cast<uint64_t>(micros),
                        std::memory_order_relaxed);
  uint64_t prev = max_micros_.load(std::memory_order_relaxed);
  while (prev < static_cast<uint64_t>(micros) &&
         !max_micros_.compare_exchange_weak(prev,
                                            static_cast<uint64_t>(micros),
                                            std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_micros = sum_micros_.load(std::memory_order_relaxed);
  snap.max_micros = max_micros_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t LatencyHistogram::Snapshot::QuantileUpperBound(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; ceil so p100 lands on the last one.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Upper bound of bucket b is 2^(b+1) - 1 us; cap by the observed max.
      // The last bucket absorbs every clamped outlier, so only the max is a
      // valid bound there.
      uint64_t upper =
          (b + 1 >= kNumBuckets) ? max_micros : ((1ULL << (b + 1)) - 1);
      return upper < max_micros ? upper : max_micros;
    }
  }
  return max_micros;
}

std::string LatencyHistogram::ToString() const {
  Snapshot snap = TakeSnapshot();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu (us)",
                static_cast<unsigned long long>(snap.count),
                snap.MeanMicros(),
                static_cast<unsigned long long>(snap.QuantileUpperBound(0.50)),
                static_cast<unsigned long long>(snap.QuantileUpperBound(0.95)),
                static_cast<unsigned long long>(snap.QuantileUpperBound(0.99)),
                static_cast<unsigned long long>(snap.max_micros));
  return std::string(buf);
}

}  // namespace texrheo
