#ifndef TEXRHEO_UTIL_FLAGS_H_
#define TEXRHEO_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace texrheo {

/// Minimal command-line parser for the example / bench binaries.
///
/// Accepts `--key=value`, `--key value`, and bare `--flag` (boolean true).
/// Everything that does not start with "--" is a positional argument.
class FlagParser {
 public:
  /// Parses argv; returns InvalidArgument on a dangling `--key` with no value
  /// only if the key was registered as requiring one (we can't know, so a
  /// trailing `--key` simply becomes boolean true).
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const;

  /// Typed getters with defaults; a present-but-malformed value is an error
  /// surfaced through the StatusOr.
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  StatusOr<int64_t> GetInt(const std::string& key, int64_t default_value) const;
  StatusOr<double> GetDouble(const std::string& key,
                             double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_FLAGS_H_
