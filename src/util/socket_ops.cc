#include "util/socket_ops.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace texrheo {

ssize_t SocketOps::Recv(int fd, void* buf, size_t len) {
  return ::recv(fd, buf, len, 0);
}

ssize_t SocketOps::Send(int fd, const void* buf, size_t len) {
  // MSG_NOSIGNAL: a peer that resets mid-write must surface as EPIPE, not
  // kill the process with SIGPIPE.
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

int SocketOps::Accept(int listen_fd) {
  return ::accept(listen_fd, nullptr, nullptr);
}

int SocketOps::Poll(int fd, short events, int timeout_millis) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  return ::poll(&pfd, 1, timeout_millis);
}

int SocketOps::Close(int fd) { return ::close(fd); }

int SocketOps::Shutdown(int fd, int how) { return ::shutdown(fd, how); }

SocketOps& SocketOps::Real() {
  static SocketOps* real = new SocketOps();
  return *real;
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace texrheo
