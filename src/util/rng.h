#ifndef TEXRHEO_UTIL_RNG_H_
#define TEXRHEO_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace texrheo {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. All stochastic components in this library draw from Rng so a
/// fixed seed reproduces an entire experiment end to end.
///
/// Not cryptographically secure; statistical quality is adequate for Monte
/// Carlo work (passes BigCrush per the xoshiro authors).
class Rng {
 public:
  /// Seeds the four-word state by iterating SplitMix64 from `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  uint64_t NextU64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [0, 1); never returns exactly 0 (safe for log()).
  double NextDoubleNonZero();

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  uint64_t NextUint(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double NextGaussian();

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p);

  /// Index drawn from unnormalized non-negative weights; requires a positive
  /// total. Linear scan — O(n); use math::AliasTable for repeated draws.
  size_t NextCategorical(const std::vector<double>& weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextUint(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Forks an independent stream (seeded from this stream's output); used to
  /// give parallel components decorrelated randomness.
  Rng Fork();

  /// Derives the seed of independent sub-stream `stream` of a master `seed`
  /// by SplitMix64 stream-splitting: the master seed is mixed once, the
  /// stream index is folded in with a distinct odd multiplier, and the
  /// result is mixed again. Distinct (seed, stream) pairs yield decorrelated
  /// xoshiro states, and the mapping is a pure function — callers can
  /// reconstruct any stream without ever sharing generator state. This is
  /// what gives each Gibbs worker thread its own counterfeit-free stream.
  static uint64_t StreamSeed(uint64_t seed, uint64_t stream);

  /// Rng seeded for sub-stream `stream` of `seed`.
  static Rng ForStream(uint64_t seed, uint64_t stream) {
    return Rng(StreamSeed(seed, stream));
  }

  /// Complete serializable generator state: the four xoshiro words plus the
  /// Marsaglia-polar spare deviate (its presence matters — dropping it would
  /// desynchronize a restored chain by one NextGaussian() call). The double
  /// travels as its raw bit pattern so a save/restore round trip is
  /// bit-exact. Used by the checkpoint subsystem.
  struct State {
    uint64_t words[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    uint64_t cached_gaussian_bits = 0;
  };

  /// Captures the current state for checkpointing.
  State SaveState() const;

  /// Restores a previously captured state; the next draw continues exactly
  /// where the saved generator left off.
  void RestoreState(const State& state);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_RNG_H_
