#ifndef TEXRHEO_UTIL_TABLE_PRINTER_H_
#define TEXRHEO_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace texrheo {

/// Renders rows of strings as an aligned ASCII table, used by the bench
/// binaries to print the paper's tables.
///
///   TablePrinter t({"Topic", "Gel", "#Recipes"});
///   t.AddRow({"3", "gelatin:0.054", "38"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one body row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line at this position.
  void AddSeparator();

  /// Renders with `|` column borders and `-` separators.
  std::string ToString() const;

  /// Renders as delimiter-separated values (for machine consumption).
  std::string ToTsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_TABLE_PRINTER_H_
