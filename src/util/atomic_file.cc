#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace texrheo {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

StatusOr<int> FileOps::OpenForWrite(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open", path));
  return fd;
}

StatusOr<int> FileOps::OpenForAppend(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open", path));
  return fd;
}

StatusOr<size_t> FileOps::Write(int fd, const void* data, size_t size) {
  ssize_t n = ::write(fd, data, size);
  if (n < 0) return Status::IOError(ErrnoMessage("write failed, fd", std::to_string(fd)));
  return static_cast<size_t>(n);
}

Status FileOps::Sync(int fd) {
  if (::fsync(fd) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed, fd", std::to_string(fd)));
  }
  return Status::OK();
}

Status FileOps::Close(int fd) {
  if (::close(fd) != 0) {
    return Status::IOError(ErrnoMessage("close failed, fd", std::to_string(fd)));
  }
  return Status::OK();
}

Status FileOps::Rename(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("rename failed:", from + " -> " + to));
  }
  return Status::OK();
}

Status FileOps::Remove(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("remove failed:", path));
  }
  return Status::OK();
}

Status FileOps::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open dir", dir));
  if (::fsync(fd) != 0) {
    Status status = Status::IOError(ErrnoMessage("fsync failed, dir", dir));
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0) {
    return Status::IOError(ErrnoMessage("close failed, dir", dir));
  }
  return Status::OK();
}

FileOps& FileOps::Real() {
  static FileOps& ops = *new FileOps();
  return ops;
}

std::string ParentDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status AtomicWriteFile(const std::string& path, std::string_view content,
                       FileOps& ops) {
  const std::string tmp = path + ".tmp";
  auto fd_or = ops.OpenForWrite(tmp);
  if (!fd_or.ok()) return fd_or.status();
  int fd = *fd_or;

  // On any failure below: best-effort close + remove of the temp file, then
  // propagate the original error. The target path is never touched.
  auto fail = [&](Status status) {
    (void)ops.Close(fd);
    (void)ops.Remove(tmp);
    return status;
  };

  size_t written = 0;
  while (written < content.size()) {
    auto n = ops.Write(fd, content.data() + written, content.size() - written);
    if (!n.ok()) return fail(n.status());
    if (*n == 0) {
      return fail(Status::IOError("write made no progress: " + tmp));
    }
    written += *n;
  }
  Status sync = ops.Sync(fd);
  if (!sync.ok()) return fail(sync);
  Status close = ops.Close(fd);
  if (!close.ok()) {
    (void)ops.Remove(tmp);
    return close;
  }
  Status rename = ops.Rename(tmp, path);
  if (!rename.ok()) {
    (void)ops.Remove(tmp);
    return rename;
  }
  // The rename is in the page cache until the directory inode is flushed;
  // without this a power cut can resurrect the old file under the new name.
  return ops.SyncDir(ParentDirOf(path));
}

}  // namespace texrheo
