#include "util/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace texrheo {
namespace {

// Slice-by-8 tables: kTables[0] is the classic byte-at-a-time table, and
// kTables[k][b] is the CRC of byte b followed by k zero bytes, so eight
// table lookups advance the CRC by eight input bytes at once. Identical
// output to the bytewise loop for every input.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = tables[k - 1][i];
      tables[k][i] = tables[0][c & 0xFFu] ^ (c >> 8);
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildTables();
  const auto& t = kTables;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      uint32_t lo;
      uint32_t hi;
      std::memcpy(&lo, bytes, 4);
      std::memcpy(&hi, bytes + 4, 4);
      lo ^= crc;
      crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
            t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^
            t[0][hi >> 24];
      bytes += 8;
      size -= 8;
    }
  }
  for (size_t i = 0; i < size; ++i) {
    crc = t[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace texrheo
