#ifndef TEXRHEO_UTIL_STRING_UTIL_H_
#define TEXRHEO_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace texrheo {

/// Splits `s` on `delim`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on runs of ASCII whitespace; no empty fields are produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a double; rejects trailing garbage ("1.5x" is an error).
StatusOr<double> ParseDouble(std::string_view s);

/// Parses a non-negative integer; rejects trailing garbage.
StatusOr<int64_t> ParseInt(std::string_view s);

/// Formats `v` with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_STRING_UTIL_H_
