#ifndef TEXRHEO_UTIL_BACKOFF_H_
#define TEXRHEO_UTIL_BACKOFF_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

#include "util/rng.h"

namespace texrheo {

/// Retry schedule: exponential growth from `initial_millis` by `multiplier`
/// per attempt, capped at `max_millis`, with multiplicative jitter so a
/// thundering herd of clients that failed together does not retry together.
struct BackoffPolicy {
  double initial_millis = 10.0;
  double max_millis = 2000.0;
  double multiplier = 2.0;
  /// Jitter half-width as a fraction of the computed delay: the returned
  /// delay is uniform in [d * (1 - jitter), d * (1 + jitter)]. 0 disables.
  double jitter = 0.5;
};

/// Delay before retry `attempt` (0-based: attempt 0 is the wait after the
/// first failure). Deterministic given the rng state, so tests can assert
/// exact schedules by reconstructing the stream.
double BackoffDelayMillis(const BackoffPolicy& policy, int attempt, Rng& rng);

/// Three-state circuit breaker guarding a repeatedly-failing dependency
/// (the serving layer uses one per server around RELOAD: a model file that
/// fails to parse will fail identically on every retry, and hammering the
/// loader starves query traffic for nothing).
///
///   kClosed    normal operation; consecutive failures are counted.
///   kOpen      tripped: calls are rejected until the cooldown elapses.
///   kHalfOpen  cooldown elapsed: exactly one trial call is admitted; its
///              outcome closes the breaker again or re-opens it.
///
/// Time is passed in explicitly (steady_clock now) so tests can drive the
/// cooldown without sleeping. Thread-safe.
class CircuitBreaker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  struct Options {
    /// Consecutive failures that trip the breaker.
    int failure_threshold = 3;
    /// How long the breaker stays open before admitting a trial call.
    int cooldown_millis = 5000;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  /// Transition counters (monotonic).
  struct Stats {
    uint64_t opened = 0;
    uint64_t half_opened = 0;
    uint64_t reclosed = 0;  ///< Half-open trials that succeeded.
  };

  /// Transition hooks, fired exactly once per state transition (on_trip on
  /// every -> kOpen, on_half_open on kOpen -> kHalfOpen, on_reclose on
  /// kHalfOpen -> kClosed). Invoked while the breaker's mutex is held, so
  /// listeners must be lock-free and must not call back into the breaker —
  /// obs::Counter::Increment (the intended consumer: breaker transitions
  /// surfaced through MetricsRegistry / METRICSZ) qualifies. Unset hooks
  /// are skipped. util cannot depend on obs, hence callbacks rather than
  /// counter handles.
  struct TransitionListeners {
    std::function<void()> on_trip;
    std::function<void()> on_half_open;
    std::function<void()> on_reclose;
  };

  explicit CircuitBreaker(const Options& options) : options_(options) {}

  /// Installs transition hooks. Call before the breaker is shared across
  /// threads (typically right after construction); replaces any previous
  /// listeners.
  void SetListeners(TransitionListeners listeners);

  /// True when a call may proceed. An open breaker whose cooldown has
  /// elapsed transitions to half-open here and admits exactly one trial;
  /// further calls are rejected until that trial reports its outcome.
  bool Allow(TimePoint now);

  /// Reports the outcome of an admitted call.
  void RecordSuccess();
  void RecordFailure(TimePoint now);

  State state() const;
  Stats GetStats() const;

  static const char* StateName(State state);

 private:
  const Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;  // Guarded by mu_.
  int consecutive_failures_ = 0;  // Guarded by mu_.
  TimePoint opened_at_{};         // Guarded by mu_.
  bool trial_in_flight_ = false;  // Guarded by mu_.
  Stats stats_;                   // Guarded by mu_.
  TransitionListeners listeners_;  // Guarded by mu_.
};

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_BACKOFF_H_
