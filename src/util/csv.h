#ifndef TEXRHEO_UTIL_CSV_H_
#define TEXRHEO_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace texrheo {

/// One parsed delimited row.
using CsvRow = std::vector<std::string>;

/// Parses one CSV line honoring RFC-4180 double-quote quoting. `delim` may be
/// ',' or '\t'. Embedded newlines inside quotes are not supported by this
/// single-line entry point; use CsvReader for full documents.
StatusOr<CsvRow> ParseCsvLine(std::string_view line, char delim = ',');

/// Serializes a row, quoting fields containing the delimiter, quotes, or
/// newlines.
std::string FormatCsvLine(const CsvRow& row, char delim = ',');

/// Streaming reader over a whole document held in memory (files in this
/// project are small relative to RAM). Handles quoted fields spanning lines.
class CsvReader {
 public:
  explicit CsvReader(std::string content, char delim = ',');

  /// Reads the next record into `row`. Returns false at end of input.
  /// On malformed quoting, status() becomes non-OK and reading stops.
  bool Next(CsvRow& row);

  const Status& status() const { return status_; }

  /// Convenience: parses an entire document into rows.
  static StatusOr<std::vector<CsvRow>> ReadAll(std::string content,
                                               char delim = ',');

  /// Loads a file from disk and parses it.
  static StatusOr<std::vector<CsvRow>> ReadFile(const std::string& path,
                                                char delim = ',');

 private:
  std::string content_;
  size_t pos_ = 0;
  char delim_;
  Status status_;
};

/// Writes rows to a file; returns IOError on failure.
Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char delim = ',');

/// Reads an entire file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, truncating.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_CSV_H_
