#ifndef TEXRHEO_UTIL_ATOMIC_FILE_H_
#define TEXRHEO_UTIL_ATOMIC_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace texrheo {

/// Seam over the handful of POSIX file operations the durable-write path
/// needs. Production code uses Real(); tests subclass it to inject short
/// writes, ENOSPC, crash-before-rename, and corruption, so the recovery
/// logic can be exercised without an actual power cut.
class FileOps {
 public:
  virtual ~FileOps() = default;

  /// Opens `path` for writing (create + truncate). Returns a descriptor.
  virtual StatusOr<int> OpenForWrite(const std::string& path);
  /// Opens `path` for appending (create if missing, position at end) — the
  /// write-ahead-log variant of OpenForWrite. Returns a descriptor.
  virtual StatusOr<int> OpenForAppend(const std::string& path);
  /// Writes up to `size` bytes; may write fewer (short write), like write(2).
  virtual StatusOr<size_t> Write(int fd, const void* data, size_t size);
  /// Flushes file contents to stable storage.
  virtual Status Sync(int fd);
  virtual Status Close(int fd);
  /// Atomically replaces `to` with `from` (rename(2) semantics).
  virtual Status Rename(const std::string& from, const std::string& to);
  virtual Status Remove(const std::string& path);
  /// Flushes the directory entry itself: after renaming a file into `dir`
  /// (or creating one there), the new name is only crash-durable once the
  /// directory inode has been fsynced too.
  virtual Status SyncDir(const std::string& dir);

  /// Shared pass-through instance backed by the real filesystem.
  static FileOps& Real();
};

/// Returns the directory component of `path` ("." when there is none) —
/// the argument AtomicWriteFile passes to FileOps::SyncDir.
std::string ParentDirOf(const std::string& path);

/// Durably replaces `path` with `content`: writes `path`.tmp, fsyncs,
/// closes, renames over `path`, then fsyncs the parent directory so the
/// rename itself survives power loss. On any failure the temp file is
/// removed and `path` is left untouched (a previous version, if any,
/// survives intact). Short writes from `ops` are retried until the content
/// is fully written or an error is returned.
Status AtomicWriteFile(const std::string& path, std::string_view content,
                       FileOps& ops = FileOps::Real());

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_ATOMIC_FILE_H_
