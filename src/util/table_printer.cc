#include "util/table_printer.h"

#include <algorithm>

namespace texrheo {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<size_t> widths(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) measure(row);
  }

  auto render_sep = [&]() {
    std::string line = "+";
    for (size_t i = 0; i < cols; ++i) {
      line.append(widths[i] + 2, '-');
      line.push_back('+');
    }
    line.push_back('\n');
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line.push_back(' ');
      line.append(cell);
      line.append(widths[i] - cell.size() + 1, ' ');
      line.push_back('|');
    }
    line.push_back('\n');
    return line;
  };

  std::string out = render_sep();
  out += render_row(header_);
  out += render_sep();
  for (const auto& row : rows_) {
    out += row.empty() ? render_sep() : render_row(row);
  }
  out += render_sep();
  return out;
}

std::string TablePrinter::ToTsv() const {
  std::string out;
  auto append = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back('\t');
      out.append(row[i]);
    }
    out.push_back('\n');
  };
  append(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) append(row);
  }
  return out;
}

}  // namespace texrheo
