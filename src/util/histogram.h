#ifndef TEXRHEO_UTIL_HISTOGRAM_H_
#define TEXRHEO_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace texrheo {

/// Lock-free latency histogram with power-of-two microsecond buckets.
///
/// Bucket b covers [2^b, 2^(b+1)) microseconds (bucket 0 additionally
/// absorbs sub-microsecond samples), so 40 buckets span <1 us to ~18 min —
/// more than any query this library serves. Record() is a single relaxed
/// fetch_add, safe from any number of threads; Snapshot() is a racy-but-
/// consistent-enough read intended for monitoring, not accounting (a
/// snapshot taken mid-Record may miss that one sample).
///
/// Quantiles are estimated from the bucket counts: the reported value is
/// the upper bound of the bucket containing the target rank, i.e. an
/// overestimate by at most 2x. That is the standard fidelity/footprint
/// trade for serving-side histograms (cf. hdrhistogram's coarse configs).
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  LatencyHistogram() = default;

  /// Records one sample. Negative durations clamp to 0.
  void Record(int64_t micros);

  /// Point-in-time copy of the counters (see class comment on atomicity).
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum_micros = 0;
    uint64_t max_micros = 0;

    /// Upper-bound estimate of the q-quantile in microseconds (q in [0,1]).
    /// 0 when the histogram is empty.
    uint64_t QuantileUpperBound(double q) const;
    double MeanMicros() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum_micros) /
                              static_cast<double>(count);
    }
  };
  Snapshot TakeSnapshot() const;

  /// One-line human dump: "count=N mean=X p50=A p95=B p99=C max=D (us)".
  std::string ToString() const;

 private:
  static size_t BucketFor(int64_t micros);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_HISTOGRAM_H_
