#ifndef TEXRHEO_UTIL_STATUS_H_
#define TEXRHEO_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace texrheo {

/// Coarse error classification carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kIOError = 7,
  kAlreadyExists = 8,
  kUnavailable = 9,
  kDeadlineExceeded = 10,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail: a code plus a context message.
///
/// This library does not throw exceptions across API boundaries; fallible
/// functions return Status (or StatusOr<T> when they also produce a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Transient overload: the operation was shed and may succeed on retry
  /// (used by the serving layer's admission control).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// The operation's time budget ran out before it completed (or before it
  /// was even dispatched); retrying with a larger budget may succeed.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Either a value of type T or an error Status. Access to the value when
/// holding an error aborts in debug builds; callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  ///   return 42;                       // ok
  ///   return Status::NotFound("...");  // error
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` when holding an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace texrheo

/// Propagates a non-OK Status from an expression to the caller.
#define TEXRHEO_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::texrheo::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a StatusOr expression; assigns the value or returns the error.
#define TEXRHEO_ASSIGN_OR_RETURN(lhs, expr)          \
  TEXRHEO_ASSIGN_OR_RETURN_IMPL_(                    \
      TEXRHEO_STATUS_CONCAT_(_statusor, __LINE__), lhs, expr)
#define TEXRHEO_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                   \
  if (!var.ok()) return var.status();                  \
  lhs = std::move(var).value()
#define TEXRHEO_STATUS_CONCAT_(a, b) TEXRHEO_STATUS_CONCAT_IMPL_(a, b)
#define TEXRHEO_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // TEXRHEO_UTIL_STATUS_H_
