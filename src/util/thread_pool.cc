#include "util/thread_pool.h"

#include <algorithm>

namespace texrheo {

int ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(num_threads, 1)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainBatch(const std::shared_ptr<Batch>& batch) {
  // Each batch owns its counters, so a straggler that wakes up after the
  // batch completed only over-claims indices of *its* batch and exits; it
  // can never corrupt a later batch's bookkeeping.
  for (;;) {
    int i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->total) break;
    (*batch->fn)(i);
    if (batch->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->total) {
      // Last task: wake the caller. Taking the lock orders the notify
      // against the caller's predicate check.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = batch_;
    }
    if (batch != nullptr) DrainBatch(batch);
  }
}

void ThreadPool::ParallelFor(int num_tasks,
                             const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (workers_.empty()) {
    for (int i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->total = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is the final worker of the batch.
  DrainBatch(batch);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return batch->completed.load(std::memory_order_acquire) == num_tasks;
  });
  batch_ = nullptr;
}

}  // namespace texrheo
