#include "util/backoff.h"

#include <algorithm>
#include <cmath>

namespace texrheo {

double BackoffDelayMillis(const BackoffPolicy& policy, int attempt, Rng& rng) {
  double delay =
      policy.initial_millis * std::pow(policy.multiplier, std::max(0, attempt));
  delay = std::min(delay, policy.max_millis);
  if (policy.jitter > 0.0) {
    delay *= rng.NextUniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  return std::max(0.0, delay);
}

void CircuitBreaker::SetListeners(TransitionListeners listeners) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_ = std::move(listeners);
}

bool CircuitBreaker::Allow(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - opened_at_)
                         .count();
      if (elapsed < options_.cooldown_millis) return false;
      state_ = State::kHalfOpen;
      trial_in_flight_ = true;
      ++stats_.half_opened;
      if (listeners_.on_half_open) listeners_.on_half_open();
      return true;
    }
    case State::kHalfOpen:
      // One trial at a time; everyone else keeps getting rejected until it
      // reports back.
      if (trial_in_flight_) return false;
      trial_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    state_ = State::kClosed;
    trial_in_flight_ = false;
    ++stats_.reclosed;
    if (listeners_.on_reclose) listeners_.on_reclose();
  }
}

void CircuitBreaker::RecordFailure(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The trial failed: back to a full cooldown.
    state_ = State::kOpen;
    trial_in_flight_ = false;
    opened_at_ = now;
    ++stats_.opened;
    if (listeners_.on_trip) listeners_.on_trip();
    return;
  }
  if (state_ == State::kClosed) {
    if (++consecutive_failures_ >= options_.failure_threshold) {
      state_ = State::kOpen;
      opened_at_ = now;
      ++stats_.opened;
      if (listeners_.on_trip) listeners_.on_trip();
    }
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreaker::Stats CircuitBreaker::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace texrheo
