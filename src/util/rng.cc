#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace texrheo {
namespace {

// SplitMix64: used only for seeding the main state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleNonZero() {
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return u;
}

uint64_t Rng::NextUint(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to remove modulo bias.
  uint64_t threshold = (-n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint(span));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  // Floating-point underflow at the boundary: return last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  std::memcpy(&state.cached_gaussian_bits, &cached_gaussian_,
              sizeof(cached_gaussian_));
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  std::memcpy(&cached_gaussian_, &state.cached_gaussian_bits,
              sizeof(cached_gaussian_));
}

uint64_t Rng::StreamSeed(uint64_t seed, uint64_t stream) {
  // Mix the master seed first so nearby seeds land far apart, then fold in
  // the stream index scaled by an odd constant (distinct streams differ in
  // many bits before the final mix), and mix once more.
  uint64_t s = seed;
  uint64_t mixed = SplitMix64(s);
  s = mixed ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return SplitMix64(s);
}

}  // namespace texrheo
