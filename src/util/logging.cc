#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace texrheo {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
  if (level_ == LogLevel::kError) std::fflush(stderr);
}

}  // namespace internal_logging
}  // namespace texrheo
