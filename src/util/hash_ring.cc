#include "util/hash_ring.h"

#include <algorithm>

namespace texrheo {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

HashRing::HashRing(int vnodes) : vnodes_(vnodes < 1 ? 1 : vnodes) {}

void HashRing::AddNode(int node_id, std::string_view label) {
  std::string point_label(label);
  point_label += '#';
  const size_t base = point_label.size();
  // Re-adding an existing node would double its arc share; ignore.
  for (const Point& p : points_) {
    if (p.node_id == node_id) return;
  }
  points_.reserve(points_.size() + static_cast<size_t>(vnodes_));
  for (int i = 0; i < vnodes_; ++i) {
    point_label.resize(base);
    point_label += std::to_string(i);
    points_.push_back(Point{Mix64(Fnv1a64(point_label)), node_id});
  }
  std::sort(points_.begin(), points_.end());
  ++num_nodes_;
}

void HashRing::RemoveNode(int node_id) {
  size_t before = points_.size();
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [node_id](const Point& p) {
                                 return p.node_id == node_id;
                               }),
                points_.end());
  if (points_.size() != before) --num_nodes_;
}

int HashRing::NodeFor(std::string_view key) const {
  std::vector<int> nodes = NodesFor(key, 1);
  return nodes.empty() ? -1 : nodes[0];
}

std::vector<int> HashRing::NodesFor(std::string_view key,
                                    size_t max_nodes) const {
  std::vector<int> out;
  if (points_.empty() || max_nodes == 0) return out;
  const uint64_t h = Mix64(Fnv1a64(key));
  // First point clockwise from h (wrapping past the top of the ring).
  size_t start = std::lower_bound(points_.begin(), points_.end(),
                                  Point{h, -1}) -
                 points_.begin();
  const size_t want = std::min(max_nodes, num_nodes_);
  out.reserve(want);
  for (size_t step = 0; step < points_.size() && out.size() < want; ++step) {
    int node = points_[(start + step) % points_.size()].node_id;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

}  // namespace texrheo
