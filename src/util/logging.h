#ifndef TEXRHEO_UTIL_LOGGING_H_
#define TEXRHEO_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace texrheo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log emitter; flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is filtered out.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace texrheo

#define TEXRHEO_LOG(level)                                             \
  (static_cast<int>(::texrheo::LogLevel::k##level) <                   \
   static_cast<int>(::texrheo::GetLogLevel()))                         \
      ? (void)0                                                        \
      : ::texrheo::internal_logging::LogMessageVoidify() &             \
            ::texrheo::internal_logging::LogMessage(                   \
                ::texrheo::LogLevel::k##level, __FILE__, __LINE__)     \
                .stream()

#endif  // TEXRHEO_UTIL_LOGGING_H_
