#include "util/flags.h"

#include "util/string_util.h"

namespace texrheo {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      // A bare "--" ends flag parsing (POSIX convention).
      for (int j = i + 1; j < argc; ++j) positional_.push_back(argv[j]);
      break;
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

StatusOr<int64_t> FlagParser::GetInt(const std::string& key,
                                     int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return ParseInt(it->second);
}

StatusOr<double> FlagParser::GetDouble(const std::string& key,
                                       double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return ParseDouble(it->second);
}

bool FlagParser::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  std::string v = ToLower(it->second);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace texrheo
