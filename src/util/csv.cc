#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace texrheo {

StatusOr<CsvRow> ParseCsvLine(std::string_view line, char delim) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else {
      if (c == '"' && field.empty()) {
        in_quotes = true;
      } else if (c == delim) {
        row.push_back(std::move(field));
        field.clear();
      } else {
        field.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV line");
  }
  row.push_back(std::move(field));
  return row;
}

std::string FormatCsvLine(const CsvRow& row, char delim) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(delim);
    const std::string& f = row[i];
    bool needs_quotes = f.find(delim) != std::string::npos ||
                        f.find('"') != std::string::npos ||
                        f.find('\n') != std::string::npos ||
                        f.find('\r') != std::string::npos;
    if (needs_quotes) {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out.append(f);
    }
  }
  return out;
}

CsvReader::CsvReader(std::string content, char delim)
    : content_(std::move(content)), delim_(delim) {}

bool CsvReader::Next(CsvRow& row) {
  if (!status_.ok() || pos_ >= content_.size()) return false;
  row.clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  while (pos_ < content_.size()) {
    char c = content_[pos_];
    if (in_quotes) {
      if (c == '"') {
        if (pos_ + 1 < content_.size() && content_[pos_ + 1] == '"') {
          field.push_back('"');
          ++pos_;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      ++pos_;
    } else {
      if (c == '"' && field.empty()) {
        in_quotes = true;
        saw_any = true;
        ++pos_;
      } else if (c == delim_) {
        row.push_back(std::move(field));
        field.clear();
        saw_any = true;
        ++pos_;
      } else if (c == '\r') {
        ++pos_;  // Swallow; \r\n handled by the \n branch.
      } else if (c == '\n') {
        ++pos_;
        row.push_back(std::move(field));
        return true;
      } else {
        field.push_back(c);
        saw_any = true;
        ++pos_;
      }
    }
  }
  if (in_quotes) {
    status_ = Status::InvalidArgument("unterminated quote in CSV document");
    return false;
  }
  if (!saw_any && field.empty() && row.empty()) return false;
  row.push_back(std::move(field));
  return true;
}

StatusOr<std::vector<CsvRow>> CsvReader::ReadAll(std::string content,
                                                 char delim) {
  CsvReader reader(std::move(content), delim);
  std::vector<CsvRow> rows;
  CsvRow row;
  while (reader.Next(row)) rows.push_back(row);
  if (!reader.status().ok()) return reader.status();
  return rows;
}

StatusOr<std::vector<CsvRow>> CsvReader::ReadFile(const std::string& path,
                                                  char delim) {
  TEXRHEO_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ReadAll(std::move(content), delim);
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char delim) {
  std::string out;
  for (const CsvRow& row : rows) {
    out += FormatCsvLine(row, delim);
    out.push_back('\n');
  }
  return WriteStringToFile(path, out);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return ss.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open file for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace texrheo
