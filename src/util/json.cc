#include "util/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace texrheo {
namespace {

// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    TEXRHEO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    if (depth_ > 64) return Status::InvalidArgument("json: nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("json: unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      TEXRHEO_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue::Bool(true);
    if (ConsumeLiteral("false")) return JsonValue::Bool(false);
    if (ConsumeLiteral("null")) return JsonValue::Null();
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject() {
    ++depth_;
    Consume('{');
    JsonValue value = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return value;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::InvalidArgument("json: expected object key");
      }
      TEXRHEO_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Status::InvalidArgument("json: expected ':' after key");
      }
      TEXRHEO_ASSIGN_OR_RETURN(JsonValue child, ParseValue());
      value.AsObject()[std::move(key)] = std::move(child);
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) {
        return Status::InvalidArgument("json: expected ',' or '}' in object");
      }
    }
    --depth_;
    return value;
  }

  StatusOr<JsonValue> ParseArray() {
    ++depth_;
    Consume('[');
    JsonValue value = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return value;
    }
    for (;;) {
      TEXRHEO_ASSIGN_OR_RETURN(JsonValue child, ParseValue());
      value.AsArray().push_back(std::move(child));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) {
        return Status::InvalidArgument("json: expected ',' or ']' in array");
      }
    }
    --depth_;
    return value;
  }

  StatusOr<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::InvalidArgument("json: truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return Status::InvalidArgument("json: bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogates unsupported).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Status::InvalidArgument("json: bad escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return Status::InvalidArgument("json: unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("json: expected a value");
    }
    TEXRHEO_ASSIGN_OR_RETURN(double number,
                             ParseDouble(text_.substr(start, pos_ - start)));
    return JsonValue::Number(number);
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void SerializeTo(const JsonValue& value, std::string& out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += value.AsBool() ? "true" : "false";
      break;
    case JsonValue::Type::kNumber: {
      double n = value.AsNumber();
      if (std::isfinite(n) && n == std::floor(n) &&
          std::fabs(n) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", n);
        out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", n);
        out += buf;
      }
      break;
    }
    case JsonValue::Type::kString:
      AppendEscaped(out, value.AsString());
      break;
    case JsonValue::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& child : value.AsArray()) {
        if (!first) out.push_back(',');
        first = false;
        SerializeTo(child, out);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, child] : value.AsObject()) {
        if (!first) out.push_back(',');
        first = false;
        AppendEscaped(out, key);
        out.push_back(':');
        SerializeTo(child, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::make_shared<Array>();
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::make_shared<Object>();
  return v;
}

bool JsonValue::AsBool() const {
  assert(is_bool());
  return bool_;
}

double JsonValue::AsNumber() const {
  assert(is_number());
  return number_;
}

const std::string& JsonValue::AsString() const {
  assert(is_string());
  return string_;
}

const JsonValue::Array& JsonValue::AsArray() const {
  assert(is_array());
  return *array_;
}

JsonValue::Array& JsonValue::AsArray() {
  assert(is_array());
  return *array_;
}

const JsonValue::Object& JsonValue::AsObject() const {
  assert(is_object());
  return *object_;
}

JsonValue::Object& JsonValue::AsObject() {
  assert(is_object());
  return *object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = object_->find(std::string(key));
  return it == object_->end() ? nullptr : &it->second;
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(*this, out);
  return out;
}

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace texrheo
