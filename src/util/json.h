#ifndef TEXRHEO_UTIL_JSON_H_
#define TEXRHEO_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace texrheo {

/// Minimal JSON document model: null, bool, number (double), string,
/// array, object. Enough for the JSONL corpus format and small config
/// files; not a general-purpose JSON library (no streaming, no comments).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one asserts in debug builds.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  /// Object field lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Serializes to compact JSON (keys sorted; doubles via shortest
  /// round-trippable formatting, integers without a trailing ".0").
  std::string Serialize() const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static StatusOr<JsonValue> Parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_JSON_H_
