#ifndef TEXRHEO_UTIL_CRC32_H_
#define TEXRHEO_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace texrheo {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`, the same
/// checksum zlib's crc32() computes. Used to frame checkpoint files so a
/// torn or bit-flipped snapshot is detected before any state is restored.
uint32_t Crc32(const void* data, size_t size);

inline uint32_t Crc32(std::string_view data) {
  return Crc32(data.data(), data.size());
}

}  // namespace texrheo

#endif  // TEXRHEO_UTIL_CRC32_H_
