#ifndef TEXRHEO_INGEST_RECORD_H_
#define TEXRHEO_INGEST_RECORD_H_

#include <string>
#include <string_view>
#include <vector>

#include "corpus/stream.h"
#include "math/linalg.h"
#include "recipe/ingredient.h"
#include "serve/query_engine.h"
#include "util/status.h"

namespace texrheo::ingest {

/// One streamed recipe in its pre-funneled form: the per-type gel and
/// emulsion concentration ratios (the same space PREDICT queries live in)
/// plus the surface texture terms extracted from its description. This is
/// the unit the WAL stores, the dedup key covers, and a refresh trains on.
struct IngestRecord {
  math::Vector gel;        ///< Dimension recipe::kNumGelTypes.
  math::Vector emulsion;   ///< Dimension recipe::kNumEmulsionTypes.
  std::vector<std::string> terms;  ///< Canonical form: sorted, unique.
};

/// Sorts and dedups `terms` in place so two deliveries of the same recipe
/// encode to the same bytes regardless of term order.
void CanonicalizeRecord(IngestRecord& record);

/// Canonical text encoding, one line, no newlines:
///   g=<r0,r1,...> e=<r0,...> t=<term,term,...>
/// Ratios print with %.17g so Encode(Decode(x)) == x; the encoded string
/// doubles as the record's content key (redelivery dedup), which is why
/// the encoding is canonical rather than merely invertible. Call
/// CanonicalizeRecord first (Encode does not sort for you).
std::string EncodeRecord(const IngestRecord& record);

/// Inverse of EncodeRecord. Validates dimensions, finiteness, and ratio
/// range; terms must be non-empty strings without commas or spaces.
StatusOr<IngestRecord> DecodeRecord(std::string_view encoded);

/// The query the serving layer folds in for this record (eq.-5 path).
serve::TextureQuery RecordToQuery(const IngestRecord& record);

/// Builds a record from a parsed protocol query (INGEST command). The
/// query's concentrations are already validated by the parser; empty
/// vectors normalize to all-zero at full dimension so the canonical
/// encoding (the dedup key) is well-formed either way.
IngestRecord RecordFromQuery(const serve::TextureQuery& query);

/// Lifts one drifting-stream element (corpus/stream.h) into an ingest
/// record: weight-based concentration ratios via `db` plus the texture
/// terms as written (churned variants included). Fails when the recipe's
/// quantities do not parse to a positive total weight.
StatusOr<IngestRecord> RecordFromStream(const corpus::StreamRecipe& item,
                                        const recipe::IngredientDatabase& db);

/// Renders the INGEST protocol line for a record ("INGEST gelatin=r,...
/// terms=a,b"), using the canonical per-dimension ingredient names. Ratios
/// print with %.17g, so sending this line and re-parsing it reproduces the
/// record's content key exactly — wire redelivery dedups.
std::string IngestCommandFor(const IngestRecord& record);

}  // namespace texrheo::ingest

#endif  // TEXRHEO_INGEST_RECORD_H_
