#include "ingest/wal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/crc32.h"

namespace texrheo::ingest {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kWalMagic = 0x4C575254;  // "TRWL" little-endian.
constexpr size_t kFrameHeaderBytes = 4 + 8 + 4;  // magic + seq + size.
constexpr size_t kFrameTrailerBytes = 4;         // crc.
/// Guards against a corrupt size field sending the parser off to allocate
/// gigabytes; real payloads are one encoded recipe line.
constexpr uint32_t kMaxPayloadBytes = 1 << 20;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

std::string EncodeFrame(uint64_t sequence, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  PutU32(&frame, kWalMagic);
  PutU64(&frame, sequence);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  // CRC covers everything after the magic: seq, size, payload.
  uint32_t crc = Crc32(frame.data() + 4, frame.size() - 4);
  PutU32(&frame, crc);
  return frame;
}

/// Parses frames from `bytes`; appends intact records to `out` and
/// returns the byte size of the intact prefix. A torn or corrupt frame
/// ends the parse (clean-prefix semantics).
size_t ParseSegment(const std::string& bytes, std::vector<WalRecord>* out,
                    bool* torn) {
  size_t offset = 0;
  while (bytes.size() - offset >= kFrameHeaderBytes + kFrameTrailerBytes) {
    const char* p = bytes.data() + offset;
    if (GetU32(p) != kWalMagic) break;
    uint64_t sequence = GetU64(p + 4);
    uint32_t size = GetU32(p + 12);
    if (size > kMaxPayloadBytes) break;
    size_t total = kFrameHeaderBytes + size + kFrameTrailerBytes;
    if (bytes.size() - offset < total) break;
    uint32_t stored_crc = GetU32(p + kFrameHeaderBytes + size);
    if (Crc32(p + 4, kFrameHeaderBytes - 4 + size) != stored_crc) break;
    WalRecord record;
    record.sequence = sequence;
    record.payload.assign(p + kFrameHeaderBytes, size);
    out->push_back(std::move(record));
    offset += total;
  }
  if (offset != bytes.size()) *torn = true;
  return offset;
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name.size() > 8 &&
        name.substr(name.size() - 4) == ".log") {
      names.push_back(std::move(name));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<uint64_t> SegmentFirstSequence(const std::string& name) {
  unsigned long long seq = 0;
  if (std::sscanf(name.c_str(), "wal-%20llu.log", &seq) != 1) {
    return Status::IOError("unparseable WAL segment name '" + name + "'");
  }
  return static_cast<uint64_t>(seq);
}

}  // namespace

std::string WalSegmentFileName(uint64_t first_sequence) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(first_sequence));
  return buf;
}

StatusOr<WalReplayResult> ReplayWal(const std::string& dir) {
  WalReplayResult result;
  std::vector<std::string> names = ListSegments(dir);
  result.segments = names.size();
  for (const std::string& name : names) {
    TEXRHEO_ASSIGN_OR_RETURN(uint64_t first, SegmentFirstSequence(name));
    TEXRHEO_ASSIGN_OR_RETURN(std::string bytes,
                             ReadWholeFile(dir + "/" + name));
    size_t before = result.records.size();
    bool torn = false;
    ParseSegment(bytes, &result.records, &torn);
    if (torn) result.torn_tail = true;
    // Dense-sequence check: the first frame must carry the sequence the
    // file name promises, and every frame the predecessor's + 1. A gap
    // means an *acknowledged* record vanished — that is data loss, not a
    // tolerable torn tail.
    for (size_t i = before; i < result.records.size(); ++i) {
      uint64_t expected =
          i == before ? first : result.records[i - 1].sequence + 1;
      if (i == before && before > 0) {
        expected = result.records[before - 1].sequence + 1;
        if (first != expected) {
          return Status::IOError(
              "WAL segment '" + name + "' starts at sequence " +
              std::to_string(first) + ", expected " +
              std::to_string(expected));
        }
      }
      if (result.records[i].sequence != expected) {
        return Status::IOError(
            "WAL sequence gap in '" + name + "': got " +
            std::to_string(result.records[i].sequence) + ", expected " +
            std::to_string(expected));
      }
    }
  }
  result.next_sequence =
      result.records.empty() ? 1 : result.records.back().sequence + 1;
  // An empty directory starts at 1; a fully-compacted one resumes from
  // the open (possibly empty) segment's name.
  if (result.records.empty() && !names.empty()) {
    TEXRHEO_ASSIGN_OR_RETURN(result.next_sequence,
                             SegmentFirstSequence(names.back()));
  }
  return result;
}

// --- WriteAheadLog ------------------------------------------------------

WriteAheadLog::WriteAheadLog(const WalOptions& options, FileOps& ops)
    : options_(options), ops_(ops) {}

WriteAheadLog::~WriteAheadLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    (void)ops_.Sync(fd_);
    (void)ops_.Close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const WalOptions& options, FileOps& ops) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WAL: dir must be set");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("WAL: cannot create '" + options.dir +
                            "': " + ec.message());
  }
  TEXRHEO_ASSIGN_OR_RETURN(WalReplayResult replay, ReplayWal(options.dir));

  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(options, ops));
  std::lock_guard<std::mutex> lock(wal->mu_);
  wal->next_sequence_ = replay.next_sequence;

  std::vector<std::string> names = ListSegments(options.dir);
  if (!names.empty() && replay.torn_tail) {
    // Rewrite the last segment down to its intact prefix so appends land
    // after a clean frame boundary. AtomicWriteFile keeps either the old
    // or the new file under a crash, never a mix.
    const std::string path = options.dir + "/" + names.back();
    TEXRHEO_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
    std::vector<WalRecord> scratch;
    bool torn = false;
    size_t good = ParseSegment(bytes, &scratch, &torn);
    if (torn) {
      TEXRHEO_RETURN_IF_ERROR(
          AtomicWriteFile(path, std::string_view(bytes).substr(0, good),
                          wal->ops_));
    }
  }
  if (names.empty()) {
    TEXRHEO_RETURN_IF_ERROR(wal->OpenSegmentLocked(wal->next_sequence_));
  } else {
    const std::string& last = names.back();
    TEXRHEO_ASSIGN_OR_RETURN(uint64_t first, SegmentFirstSequence(last));
    std::error_code size_ec;
    uintmax_t size = fs::file_size(options.dir + "/" + last, size_ec);
    if (size_ec) size = 0;
    if (static_cast<size_t>(size) >= options.segment_bytes) {
      TEXRHEO_RETURN_IF_ERROR(wal->OpenSegmentLocked(wal->next_sequence_));
    } else {
      TEXRHEO_ASSIGN_OR_RETURN(
          wal->fd_, wal->ops_.OpenForAppend(options.dir + "/" + last));
      wal->open_first_sequence_ = first;
      wal->open_bytes_ = static_cast<size_t>(size);
    }
  }
  return wal;
}

Status WriteAheadLog::OpenSegmentLocked(uint64_t first_sequence) {
  const std::string path =
      options_.dir + "/" + WalSegmentFileName(first_sequence);
  TEXRHEO_ASSIGN_OR_RETURN(int fd, ops_.OpenForAppend(path));
  // The segment *name* must survive a crash before any record in it can
  // be acknowledged.
  Status dir_sync = ops_.SyncDir(options_.dir);
  if (!dir_sync.ok()) {
    (void)ops_.Close(fd);
    return dir_sync;
  }
  fd_ = fd;
  open_first_sequence_ = first_sequence;
  open_bytes_ = 0;
  poisoned_ = false;
  return Status::OK();
}

Status WriteAheadLog::SealAndRotateLocked() {
  if (fd_ >= 0) {
    (void)ops_.Sync(fd_);
    TEXRHEO_RETURN_IF_ERROR(ops_.Close(fd_));
    fd_ = -1;
  }
  ++rotations_;
  if (next_sequence_ == open_first_sequence_) {
    // No record was ever acknowledged in this segment (a failed first
    // append may have left torn bytes). The next segment would carry the
    // same name, so instead rewrite this one empty and reuse it — the
    // atomic rewrite discards the torn bytes.
    const std::string path =
        options_.dir + "/" + WalSegmentFileName(open_first_sequence_);
    TEXRHEO_RETURN_IF_ERROR(AtomicWriteFile(path, "", ops_));
    TEXRHEO_ASSIGN_OR_RETURN(fd_, ops_.OpenForAppend(path));
    open_bytes_ = 0;
    poisoned_ = false;
    return Status::OK();
  }
  if (poisoned_) {
    // A failed append can leave a *complete*, CRC-valid frame behind
    // (e.g. the write landed but the fsync failed) — never acknowledged,
    // yet indistinguishable from a durable record on replay. The next
    // segment's name reissues that sequence, so trim this one back to its
    // acknowledged prefix (open_bytes_ only advances on success) before
    // the chain forks.
    const std::string path =
        options_.dir + "/" + WalSegmentFileName(open_first_sequence_);
    TEXRHEO_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
    if (bytes.size() > open_bytes_) {
      TEXRHEO_RETURN_IF_ERROR(AtomicWriteFile(
          path, std::string_view(bytes).substr(0, open_bytes_), ops_));
    }
  }
  return OpenSegmentLocked(next_sequence_);
}

Status WriteAheadLog::WriteFullyLocked(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < size) {
    TEXRHEO_ASSIGN_OR_RETURN(size_t n,
                             ops_.Write(fd_, p + written, size - written));
    if (n == 0) return Status::Internal("WAL: write made no progress");
    written += n;
  }
  return Status::OK();
}

StatusOr<uint64_t> WriteAheadLog::Append(std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  if (poisoned_ || open_bytes_ >= options_.segment_bytes) {
    // Either a planned rotation or a prior failed append left torn bytes
    // in the open segment; both are solved by sealing it and starting the
    // next segment at the (unconsumed) next sequence.
    TEXRHEO_RETURN_IF_ERROR(SealAndRotateLocked());
  }
  const uint64_t sequence = next_sequence_;
  std::string frame = EncodeFrame(sequence, payload);
  Status write = WriteFullyLocked(frame.data(), frame.size());
  Status sync = write.ok() ? ops_.Sync(fd_) : write;
  if (!write.ok() || !sync.ok()) {
    // The frame may be partially on disk. The sequence is rolled back
    // (never acknowledged) and the segment poisoned so the next append
    // starts a fresh one — replay drops the torn bytes as a segment tail.
    poisoned_ = true;
    return write.ok() ? sync : write;
  }
  next_sequence_ = sequence + 1;
  open_bytes_ += frame.size();
  ++appends_;
  return sequence;
}

Status WriteAheadLog::SealAndRotate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  return SealAndRotateLocked();
}

StatusOr<int> WriteAheadLog::Compact(uint64_t covered_sequence) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names = ListSegments(options_.dir);
  int removed = 0;
  for (size_t i = 0; i + 1 < names.size(); ++i) {
    // Sealed segment i spans [first_i, first_{i+1} - 1]: sequences are
    // dense and the successor's name is its exclusive upper bound.
    TEXRHEO_ASSIGN_OR_RETURN(uint64_t next_first,
                             SegmentFirstSequence(names[i + 1]));
    if (next_first == 0 || next_first - 1 > covered_sequence) continue;
    const std::string path = options_.dir + "/" + names[i];
    if (path == options_.dir + "/" +
                    WalSegmentFileName(open_first_sequence_)) {
      continue;  // Never remove the open segment.
    }
    TEXRHEO_RETURN_IF_ERROR(ops_.Remove(path));
    ++removed;
  }
  if (removed > 0) {
    TEXRHEO_RETURN_IF_ERROR(ops_.SyncDir(options_.dir));
  }
  return removed;
}

uint64_t WriteAheadLog::next_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_;
}

size_t WriteAheadLog::open_segment_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_bytes_;
}

std::vector<std::string> WriteAheadLog::SegmentFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ListSegments(options_.dir);
}

uint64_t WriteAheadLog::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

uint64_t WriteAheadLog::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

}  // namespace texrheo::ingest
