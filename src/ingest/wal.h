#ifndef TEXRHEO_INGEST_WAL_H_
#define TEXRHEO_INGEST_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/atomic_file.h"
#include "util/status.h"

namespace texrheo::ingest {

/// One durable WAL entry. Sequences are assigned densely starting at 1;
/// a sequence is only observable (returned from Append, seen by Replay)
/// once its frame is fully written and fsynced.
struct WalRecord {
  uint64_t sequence = 0;
  std::string payload;
};

struct WalOptions {
  std::string dir;
  /// Rotation threshold: an append that finds the open segment at or past
  /// this size seals it and starts a new one first.
  size_t segment_bytes = 64 * 1024;
};

/// Everything Replay learned from a WAL directory.
struct WalReplayResult {
  std::vector<WalRecord> records;  ///< All intact records, sequence order.
  uint64_t next_sequence = 1;      ///< 1 + highest replayed (or 1).
  /// True when some segment ended in a torn or corrupt frame. Torn bytes
  /// belong to an append that never returned success (so the record was
  /// never acknowledged); they are dropped, not an error.
  bool torn_tail = false;
  size_t segments = 0;
};

/// Segment file name for the segment whose first record is
/// `first_sequence`: "wal-<seq, 20 digits>.log". Zero-padded so a
/// lexicographic directory sort is sequence order.
std::string WalSegmentFileName(uint64_t first_sequence);

/// Reads every segment in `dir` in sequence order and returns the intact
/// records. Each frame is CRC-checked; a torn or corrupt frame ends its
/// segment (remaining bytes are unacknowledged garbage from a crashed
/// append). Sequences must be dense across the surviving frames — a gap
/// means a durable, acknowledged record was lost, which is DataLoss, not
/// a tolerable tail.
StatusOr<WalReplayResult> ReplayWal(const std::string& dir);

/// Append-only, CRC-framed, segmented write-ahead log.
///
/// Frame layout (all integers little-endian):
///   magic   u32  'TRWL'
///   seq     u64
///   size    u32  payload byte count
///   payload size bytes
///   crc     u32  CRC-32 of (seq, size, payload)
///
/// Durability: Append writes the frame and fsyncs before returning the
/// sequence, so a returned sequence survives a crash. Segment creation is
/// followed by a parent-directory fsync (the file *name* must be durable
/// too). A failed append rolls its sequence back and poisons the open
/// segment: the next append seals it (torn bytes and all) and starts a
/// fresh segment at the same sequence, so replay sees a dense stream.
///
/// All file I/O goes through the FileOps seam, so tests can kill any
/// write, fsync, or directory sync mid-flight and then re-Open to prove
/// recovery.
class WriteAheadLog {
 public:
  /// Opens (creating `dir`'s segment chain as needed). Replays existing
  /// segments to find the next sequence; a torn tail in the last segment
  /// is rewritten away (atomic rewrite of the intact prefix) so the log
  /// always appends after a clean frame boundary.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const WalOptions& options, FileOps& ops = FileOps::Real());

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Durably appends one record; returns its sequence. On error the
  /// sequence is not consumed and the record is not acknowledged.
  StatusOr<uint64_t> Append(std::string_view payload);

  /// Seals the open segment and starts a new one at the next sequence.
  Status SealAndRotate();

  /// Removes sealed segments whose every record has sequence <=
  /// `covered_sequence` (they are fully absorbed into a refreshed model).
  /// Returns the number of segments removed. The open segment is never
  /// removed.
  StatusOr<int> Compact(uint64_t covered_sequence);

  uint64_t next_sequence() const;
  size_t open_segment_bytes() const;
  /// Segment file names currently on disk, sequence order.
  std::vector<std::string> SegmentFiles() const;
  uint64_t appends() const;
  uint64_t rotations() const;

 private:
  WriteAheadLog(const WalOptions& options, FileOps& ops);

  /// Creates + opens the segment starting at `first_sequence` and fsyncs
  /// the directory so the new name is crash-durable.
  Status OpenSegmentLocked(uint64_t first_sequence);
  Status SealAndRotateLocked();
  Status WriteFullyLocked(const void* data, size_t size);

  const WalOptions options_;
  FileOps& ops_;

  mutable std::mutex mu_;
  int fd_ = -1;                      // Guarded by mu_.
  uint64_t next_sequence_ = 1;       // Guarded by mu_.
  uint64_t open_first_sequence_ = 1; // Guarded by mu_.
  size_t open_bytes_ = 0;            // Guarded by mu_.
  bool poisoned_ = false;            // Failed append left torn bytes.
  uint64_t appends_ = 0;             // Guarded by mu_.
  uint64_t rotations_ = 0;           // Guarded by mu_.
};

}  // namespace texrheo::ingest

#endif  // TEXRHEO_INGEST_WAL_H_
