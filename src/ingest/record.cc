#include "ingest/record.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "recipe/features.h"
#include "recipe/ingredient.h"

namespace texrheo::ingest {

namespace {

void AppendRatios(std::string* out, const math::Vector& v) {
  char buf[40];
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out->push_back(',');
    std::snprintf(buf, sizeof(buf), "%.17g", v[i]);
    *out += buf;
  }
}

StatusOr<math::Vector> ParseRatios(std::string_view field, size_t dim,
                                   const char* what) {
  math::Vector out(dim);
  size_t start = 0;
  size_t index = 0;
  while (start <= field.size()) {
    size_t comma = field.find(',', start);
    if (comma == std::string_view::npos) comma = field.size();
    if (index >= dim) {
      return Status::InvalidArgument(std::string(what) +
                                     ": too many components");
    }
    std::string part(field.substr(start, comma - start));
    char* end = nullptr;
    double value = std::strtod(part.c_str(), &end);
    if (part.empty() || end != part.c_str() + part.size()) {
      return Status::InvalidArgument(std::string(what) + ": bad ratio '" +
                                     part + "'");
    }
    if (!std::isfinite(value) || value < 0.0 || value > 1.0) {
      return Status::InvalidArgument(std::string(what) +
                                     ": ratio out of [0, 1]");
    }
    out[index++] = value;
    if (comma == field.size()) break;
    start = comma + 1;
  }
  if (index != dim) {
    return Status::InvalidArgument(std::string(what) + ": expected " +
                                   std::to_string(dim) + " components, got " +
                                   std::to_string(index));
  }
  return out;
}

}  // namespace

void CanonicalizeRecord(IngestRecord& record) {
  std::sort(record.terms.begin(), record.terms.end());
  record.terms.erase(std::unique(record.terms.begin(), record.terms.end()),
                     record.terms.end());
}

std::string EncodeRecord(const IngestRecord& record) {
  std::string out = "g=";
  AppendRatios(&out, record.gel);
  out += " e=";
  AppendRatios(&out, record.emulsion);
  out += " t=";
  for (size_t i = 0; i < record.terms.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += record.terms[i];
  }
  return out;
}

StatusOr<IngestRecord> DecodeRecord(std::string_view encoded) {
  // Three space-separated fields, each "<tag>=<body>"; the terms body may
  // be empty (a recipe whose description named no dictionary terms).
  std::string_view rest = encoded;
  std::string_view fields[3];
  for (int i = 0; i < 3; ++i) {
    size_t space = i < 2 ? rest.find(' ') : rest.size();
    if (space == std::string_view::npos) {
      return Status::InvalidArgument("ingest record: expected 3 fields");
    }
    fields[i] = rest.substr(0, space);
    rest = i < 2 ? rest.substr(space + 1) : std::string_view();
  }
  if (fields[0].substr(0, 2) != "g=" || fields[1].substr(0, 2) != "e=" ||
      fields[2].substr(0, 2) != "t=") {
    return Status::InvalidArgument("ingest record: bad field tags");
  }
  IngestRecord record;
  TEXRHEO_ASSIGN_OR_RETURN(
      record.gel,
      ParseRatios(fields[0].substr(2), recipe::kNumGelTypes, "gel"));
  TEXRHEO_ASSIGN_OR_RETURN(
      record.emulsion,
      ParseRatios(fields[1].substr(2), recipe::kNumEmulsionTypes,
                  "emulsion"));
  std::string_view terms = fields[2].substr(2);
  size_t start = 0;
  while (start < terms.size()) {
    size_t comma = terms.find(',', start);
    if (comma == std::string_view::npos) comma = terms.size();
    if (comma > start) {
      record.terms.emplace_back(terms.substr(start, comma - start));
    }
    start = comma + 1;
  }
  CanonicalizeRecord(record);
  return record;
}

serve::TextureQuery RecordToQuery(const IngestRecord& record) {
  serve::TextureQuery query;
  query.gel_concentration = record.gel;
  query.emulsion_concentration = record.emulsion;
  query.texture_terms = record.terms;
  return query;
}

IngestRecord RecordFromQuery(const serve::TextureQuery& query) {
  IngestRecord record;
  record.gel = query.gel_concentration;
  record.emulsion = query.emulsion_concentration;
  if (record.gel.size() == 0) record.gel = math::Vector(recipe::kNumGelTypes);
  if (record.emulsion.size() == 0) {
    record.emulsion = math::Vector(recipe::kNumEmulsionTypes);
  }
  record.terms = query.texture_terms;
  CanonicalizeRecord(record);
  return record;
}

StatusOr<IngestRecord> RecordFromStream(const corpus::StreamRecipe& item,
                                        const recipe::IngredientDatabase& db) {
  TEXRHEO_ASSIGN_OR_RETURN(recipe::Concentrations concentrations,
                           recipe::ComputeConcentrations(item.recipe, db));
  IngestRecord record;
  record.gel = std::move(concentrations.gel);
  record.emulsion = std::move(concentrations.emulsion);
  record.terms = item.texture_terms;
  CanonicalizeRecord(record);
  return record;
}

std::string IngestCommandFor(const IngestRecord& record) {
  std::string spec;
  char buf[64];
  auto add = [&](const char* name, double ratio) {
    if (ratio <= 0.0) return;
    if (!spec.empty()) spec.push_back(',');
    std::snprintf(buf, sizeof(buf), "%s=%.17g", name, ratio);
    spec += buf;
  };
  for (size_t i = 0; i < record.gel.size(); ++i) {
    add(recipe::GelTypeName(static_cast<recipe::GelType>(i)), record.gel[i]);
  }
  for (size_t i = 0; i < record.emulsion.size(); ++i) {
    add(recipe::EmulsionTypeName(static_cast<recipe::EmulsionType>(i)),
        record.emulsion[i]);
  }
  std::string command = "INGEST " + (spec.empty() ? std::string("-") : spec);
  if (!record.terms.empty()) {
    command += " terms=";
    for (size_t i = 0; i < record.terms.size(); ++i) {
      if (i > 0) command.push_back(',');
      command += record.terms[i];
    }
  }
  return command;
}

}  // namespace texrheo::ingest
