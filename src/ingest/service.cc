#include "ingest/service.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "core/checkpoint.h"
#include "core/model_binary.h"
#include "core/serialization.h"
#include "recipe/features.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace texrheo::ingest {

namespace {

namespace fs = std::filesystem;

constexpr char kDeltaCorpusFile[] = "delta-corpus.txt";
constexpr char kDeltaCorpusHeader[] = "texrheo-delta-corpus v1";

}  // namespace

IngestService::IngestService(const IngestServiceConfig& config,
                             serve::QueryEngine* engine,
                             const recipe::Dataset* base_corpus, FileOps& ops)
    : config_(config), engine_(engine), base_corpus_(base_corpus), ops_(ops) {
  reload_cb_ = [this](const std::string& path) {
    return engine_->ReloadFromFile(path);
  };
  obs::MetricsRegistry* m = engine_->metrics();
  // Pipeline order: a record increments accepted, then deduped, then
  // folded, and snapshots read in reverse registration order — so
  // accepted >= deduped >= folded in every METRICSZ page.
  accepted_ = m->RegisterCounter("ingest.records.accepted");
  deduped_ = m->RegisterCounter("ingest.records.deduped");
  folded_ = m->RegisterCounter("ingest.records.folded");
  fold_failed_ = m->RegisterCounter("ingest.records.fold_failed");
  recovered_ = m->RegisterCounter("ingest.records.recovered");
  wal_appends_ = m->RegisterCounter("ingest.wal.appends");
  wal_rotations_ = m->RegisterCounter("ingest.wal.rotations");
  wal_segments_removed_ = m->RegisterCounter("ingest.wal.segments_removed");
  // attempts first: attempts >= failures and attempts >= success hold in
  // any snapshot.
  refresh_attempts_ = m->RegisterCounter("ingest.refresh.attempts");
  refresh_failures_ = m->RegisterCounter("ingest.refresh.failures");
  refresh_success_ = m->RegisterCounter("ingest.refresh.success");
  wal_segments_ = m->RegisterGauge("ingest.wal.segments");
  wal_open_bytes_ = m->RegisterGauge("ingest.wal.open_bytes");
  wal_next_sequence_ = m->RegisterGauge("ingest.wal.next_sequence");
  live_gauge_ = m->RegisterGauge("ingest.delta.live");
  absorbed_gauge_ = m->RegisterGauge("ingest.delta.absorbed");
}

StatusOr<std::unique_ptr<IngestService>> IngestService::Create(
    const IngestServiceConfig& config, serve::QueryEngine* engine,
    const recipe::Dataset* base_corpus, FileOps& ops) {
  if (engine == nullptr) {
    return Status::InvalidArgument("ingest: engine must not be null");
  }
  if (config.wal_dir.empty()) {
    return Status::InvalidArgument("ingest: wal_dir must be set");
  }
  std::unique_ptr<IngestService> service(
      new IngestService(config, engine, base_corpus, ops));
  WalOptions wal_options;
  wal_options.dir = config.wal_dir;
  wal_options.segment_bytes = config.wal_segment_bytes;
  TEXRHEO_ASSIGN_OR_RETURN(service->wal_,
                           WriteAheadLog::Open(wal_options, ops));
  service->RefreshWalGauges();
  return service;
}

void IngestService::SetReloadCallback(
    std::function<Status(const std::string&)> cb) {
  reload_cb_ = std::move(cb);
}

int IngestService::FoldIntoEngine(const IngestRecord& record,
                                  uint64_t sequence) {
  engine_->NotePendingTerms(record.terms);
  auto topic_or = engine_->FoldInDelta(RecordToQuery(record), sequence);
  if (!topic_or.ok()) {
    fold_failed_->Increment();
    return -1;
  }
  return *topic_or;
}

void IngestService::RefreshWalGauges() {
  wal_segments_->Set(static_cast<double>(wal_->SegmentFiles().size()));
  wal_open_bytes_->Set(static_cast<double>(wal_->open_segment_bytes()));
  wal_next_sequence_->Set(static_cast<double>(wal_->next_sequence()));
}

Status IngestService::PersistDeltaCorpus() {
  std::string out = kDeltaCorpusHeader;
  out += " absorbed=" + std::to_string(absorbed_sequence_) +
         " count=" + std::to_string(absorbed_.size()) + "\n";
  for (const IngestRecord& record : absorbed_) {
    out += EncodeRecord(record);
    out += '\n';
  }
  return AtomicWriteFile(config_.wal_dir + "/" + kDeltaCorpusFile, out,
                         ops_);
}

Status IngestService::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  // 1. Delta corpus: records already absorbed into the served model. They
  //    rejoin the dedup index (redelivery of an absorbed recipe must still
  //    dedup) and the engine delta (so SIMILAR keeps ranking them).
  const std::string delta_path = config_.wal_dir + "/" + kDeltaCorpusFile;
  std::ifstream in(delta_path);
  if (in) {
    std::string header;
    std::getline(in, header);
    unsigned long long absorbed_seq = 0;
    unsigned long long count = 0;
    if (std::sscanf(header.c_str(),
                    "texrheo-delta-corpus v1 absorbed=%llu count=%llu",
                    &absorbed_seq, &count) != 2) {
      return Status::IOError("bad delta-corpus header: '" + header + "'");
    }
    absorbed_sequence_ = absorbed_seq;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      TEXRHEO_ASSIGN_OR_RETURN(IngestRecord record, DecodeRecord(line));
      dedup_.emplace(EncodeRecord(record), 0);
      absorbed_.push_back(std::move(record));
    }
    if (absorbed_.size() != count) {
      return Status::IOError(
          "delta corpus holds " + std::to_string(absorbed_.size()) +
          " records, header promised " + std::to_string(count));
    }
  }
  // 2. WAL: every acknowledged-but-not-absorbed record.
  TEXRHEO_ASSIGN_OR_RETURN(WalReplayResult replay,
                           ReplayWal(config_.wal_dir));
  for (WalRecord& wal_record : replay.records) {
    if (wal_record.sequence <= absorbed_sequence_) continue;
    TEXRHEO_ASSIGN_OR_RETURN(IngestRecord record,
                             DecodeRecord(wal_record.payload));
    std::string key = EncodeRecord(record);
    if (dedup_.find(key) != dedup_.end()) continue;
    dedup_.emplace(std::move(key), wal_record.sequence);
    live_.emplace(wal_record.sequence, std::move(record));
  }
  // 3. Fold everything back into the engine delta, absorbed first (their
  //    order is the model's document order), exactly once each.
  for (const IngestRecord& record : absorbed_) {
    FoldIntoEngine(record, 0);
  }
  for (const auto& [sequence, record] : live_) {
    FoldIntoEngine(record, sequence);
    recovered_->Increment();
  }
  live_gauge_->Set(static_cast<double>(live_.size()));
  absorbed_gauge_->Set(static_cast<double>(absorbed_.size()));
  RefreshWalGauges();
  return Status::OK();
}

StatusOr<IngestService::IngestResult> IngestService::Ingest(
    const IngestRecord& raw) {
  IngestRecord record = raw;
  CanonicalizeRecord(record);
  std::string key = EncodeRecord(record);

  std::unique_lock<std::mutex> lock(mu_);
  auto it = dedup_.find(key);
  if (it != dedup_.end()) {
    // Redelivery: the content is already durable (in the WAL or absorbed
    // into the model). Re-acknowledge idempotently, no second append.
    accepted_->Increment();
    IngestResult result;
    result.sequence = it->second;
    result.deduped = true;
    return result;
  }
  auto seq_or = wal_->Append(key);
  if (!seq_or.ok()) {
    RefreshWalGauges();
    return seq_or.status();  // Not acknowledged; client may retry.
  }
  const uint64_t sequence = *seq_or;
  // Durable from here on: the acknowledgement is safe to send even if
  // everything after this line is lost to a crash (Recover re-folds).
  accepted_->Increment();
  deduped_->Increment();
  dedup_.emplace(std::move(key), sequence);
  live_.emplace(sequence, record);
  wal_appends_->Increment();
  live_gauge_->Set(static_cast<double>(live_.size()));
  lock.unlock();
  RefreshWalGauges();

  IngestResult result;
  result.sequence = sequence;
  result.topic = FoldIntoEngine(record, sequence);
  if (result.topic >= 0) folded_->Increment();
  return result;
}

StatusOr<IngestService::RefreshOutcome> IngestService::Refresh() {
  if (!refresh_mu_.try_lock()) {
    return Status::Unavailable("a refresh cycle is already running");
  }
  std::lock_guard<std::mutex> lock(refresh_mu_, std::adopt_lock);
  refresh_attempts_->Increment();
  auto outcome = RefreshLocked();
  if (outcome.ok()) {
    refresh_success_->Increment();
  } else {
    refresh_failures_->Increment();
  }
  return outcome;
}

StatusOr<IngestService::RefreshOutcome> IngestService::RefreshWithRetry() {
  Rng rng(config_.refresh.backoff_seed);
  const int attempts = std::max(1, config_.refresh.max_attempts);
  Status last = Status::Internal("refresh: no attempts made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      double delay =
          BackoffDelayMillis(config_.refresh.backoff, attempt - 1, rng);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay));
    }
    auto outcome = Refresh();
    if (outcome.ok()) {
      outcome->attempts = attempt + 1;
      return outcome;
    }
    last = outcome.status();
  }
  return last;
}

StatusOr<IngestService::RefreshOutcome> IngestService::RefreshLocked() {
  obs::Tracer* tracer = config_.tracer;
  obs::TraceSpan cycle;
  if (tracer != nullptr) cycle = tracer->StartSpan("refresh_cycle");
  auto child = [&](const char* name) {
    return tracer != nullptr
               ? tracer->StartSpanWithParent(name, cycle.span_id())
               : obs::TraceSpan();
  };
  if (base_corpus_ == nullptr) {
    return Status::FailedPrecondition(
        "refresh: no base corpus attached to the ingest service");
  }
  const RefreshTrainConfig& refresh = config_.refresh;
  if (refresh.model_dir.empty()) {
    return Status::InvalidArgument("refresh: model_dir must be set");
  }

  // --- 1. Snapshot the accepted records -------------------------------
  std::vector<IngestRecord> absorbed_copy;
  std::vector<IngestRecord> fresh;
  uint64_t covered = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    absorbed_copy = absorbed_;
    fresh.reserve(live_.size());
    for (const auto& [sequence, record] : live_) fresh.push_back(record);
    covered = live_.empty() ? absorbed_sequence_ : live_.rbegin()->first;
  }

  // --- 2. Combined dataset: base corpus + absorbed + fresh -------------
  // The vocabulary is extended append-only (base ids first, then each new
  // term in first-seen order over the stable absorbed-then-fresh record
  // order), so every id in the latest checkpoint keeps its meaning and
  // the warm start's prefix validation passes.
  obs::TraceSpan build_span = child("build_dataset");
  recipe::Dataset combined;
  combined.term_vocab = base_corpus_->term_vocab;
  combined.documents = base_corpus_->documents;
  combined.funnel = base_corpus_->funnel;
  auto add_record = [&](const IngestRecord& record) {
    recipe::Document doc;
    doc.recipe_index = combined.documents.size();
    doc.term_ids.reserve(record.terms.size());
    for (const std::string& term : record.terms) {
      doc.term_ids.push_back(combined.term_vocab.Add(term));
    }
    doc.gel_concentration = record.gel;
    doc.emulsion_concentration = record.emulsion;
    doc.gel_feature = recipe::ToFeature(record.gel, refresh.feature);
    doc.emulsion_feature =
        recipe::ToFeature(record.emulsion, refresh.feature);
    combined.documents.push_back(std::move(doc));
  };
  for (const IngestRecord& record : absorbed_copy) add_record(record);
  for (const IngestRecord& record : fresh) add_record(record);
  build_span.End();

  // --- 3. Warm-start Gibbs from the latest checkpoint ------------------
  obs::TraceSpan train_span = child("train");
  core::JointTopicModelConfig train_config = refresh.train;
  TEXRHEO_ASSIGN_OR_RETURN(
      core::JointTopicModel model,
      core::JointTopicModel::Create(train_config, &combined));
  model.SetObservability(engine_->metrics(), tracer);
  int sweeps = refresh.refresh_sweeps;
  if (!train_config.checkpoint_dir.empty()) {
    auto checkpoint =
        core::LoadLatestValidCheckpoint(train_config.checkpoint_dir);
    if (checkpoint.ok()) {
      TEXRHEO_RETURN_IF_ERROR(model.WarmStartFromCheckpoint(*checkpoint));
    } else {
      // First refresh of a fresh deployment: no checkpoint yet, cold
      // start with the full schedule.
      sweeps = std::max(sweeps, train_config.sweeps);
    }
  }
  TEXRHEO_RETURN_IF_ERROR(model.RunSweeps(sweeps));
  TEXRHEO_RETURN_IF_ERROR(model.CheckNumericalHealth());
  if (!train_config.checkpoint_dir.empty()) {
    TEXRHEO_RETURN_IF_ERROR(model.WriteCheckpointNow());
  }
  train_span.End();

  // --- 4. Pack and verify the refreshed model --------------------------
  obs::TraceSpan pack_span = child("pack");
  std::error_code ec;
  fs::create_directories(refresh.model_dir, ec);
  if (ec) {
    return Status::Internal("refresh: cannot create '" + refresh.model_dir +
                            "': " + ec.message());
  }
  core::ModelSnapshot snapshot =
      core::MakeSnapshot(model.Estimate(), combined.term_vocab);
  ++refresh_count_;
  const std::string base =
      refresh.model_dir + "/model-r" + std::to_string(refresh_count_);
  TEXRHEO_RETURN_IF_ERROR(core::WriteModelBinary(snapshot, base, ops_));
  core::ModelBinaryPaths paths = core::ModelBinaryPathsFor(base);
  TEXRHEO_ASSIGN_OR_RETURN(
      std::shared_ptr<const serve::ServingSnapshot> verify,
      serve::ServingSnapshot::FromFile(paths.idx));
  pack_span.End();

  // --- 5. Publish (engine reload or router rolling reload) -------------
  obs::TraceSpan reload_span = child("reload");
  TEXRHEO_RETURN_IF_ERROR(reload_cb_(paths.idx));
  reload_span.End();

  // --- 6. Absorb covered records, persist, compact the WAL -------------
  obs::TraceSpan compact_span = child("compact");
  std::vector<IngestRecord> refold_absorbed;
  std::vector<std::pair<uint64_t, IngestRecord>> refold_live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = live_.begin();
         it != live_.end() && it->first <= covered;) {
      absorbed_.push_back(std::move(it->second));
      it = live_.erase(it);
    }
    if (covered > absorbed_sequence_) absorbed_sequence_ = covered;
    TEXRHEO_RETURN_IF_ERROR(PersistDeltaCorpus());
    refold_absorbed = absorbed_;
    for (const auto& [sequence, record] : live_) {
      refold_live.emplace_back(sequence, record);
    }
    live_gauge_->Set(static_cast<double>(live_.size()));
    absorbed_gauge_->Set(static_cast<double>(absorbed_.size()));
  }
  TEXRHEO_RETURN_IF_ERROR(wal_->SealAndRotate());
  wal_rotations_->Increment();
  TEXRHEO_ASSIGN_OR_RETURN(int removed, wal_->Compact(covered));
  if (removed > 0) {
    wal_segments_removed_->Increment(static_cast<uint64_t>(removed));
  }
  RefreshWalGauges();
  compact_span.End();

  // --- 7. Rebuild the engine delta against the new snapshot ------------
  // The reload dropped the old delta (the refreshed model absorbed those
  // recipes into its statistics); re-fold so they stay visible to SIMILAR,
  // plus any records that arrived after the covered high-water mark.
  for (const IngestRecord& record : refold_absorbed) {
    FoldIntoEngine(record, 0);
  }
  for (const auto& [sequence, record] : refold_live) {
    FoldIntoEngine(record, sequence);
  }

  RefreshOutcome outcome;
  outcome.fingerprint = verify->fingerprint();
  outcome.model_idx_path = paths.idx;
  outcome.covered_sequence = covered;
  outcome.trained_documents = combined.documents.size();
  outcome.vocab_size = combined.term_vocab.size();
  return outcome;
}

std::string IngestService::RenderIngestz() {
  RefreshWalGauges();
  serve::DeltaStats delta = engine_->GetDeltaStats();
  std::ostringstream out;
  out << "texrheo_ingest ingestz\n";
  {
    std::lock_guard<std::mutex> lock(mu_);
    out << "pipeline: accepted=" << accepted_->Value()
        << " deduped=" << deduped_->Value()
        << " folded=" << folded_->Value()
        << " fold_failed=" << fold_failed_->Value()
        << " recovered=" << recovered_->Value() << "\n";
    out << "wal: segments=" << static_cast<uint64_t>(wal_segments_->Value())
        << " open_bytes="
        << static_cast<uint64_t>(wal_open_bytes_->Value())
        << " next_sequence=" << wal_->next_sequence()
        << " appends=" << wal_appends_->Value() << "\n";
    out << "delta: live=" << live_.size()
        << " absorbed=" << absorbed_.size()
        << " absorbed_sequence=" << absorbed_sequence_ << "\n";
  }
  out << "refresh: attempts=" << refresh_attempts_->Value()
      << " success=" << refresh_success_->Value()
      << " failures=" << refresh_failures_->Value() << "\n";
  out << "engine: delta_docs=" << delta.delta_docs
      << " pending_terms=" << delta.pending_terms
      << " stale_vocab_queries=" << delta.stale_vocab_queries
      << " generation=" << delta.delta_generation << "\n";
  return out.str();
}

uint64_t IngestService::high_water_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.empty() ? absorbed_sequence_ : live_.rbegin()->first;
}

uint64_t IngestService::absorbed_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return absorbed_sequence_;
}

size_t IngestService::live_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

size_t IngestService::absorbed_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return absorbed_.size();
}

// --- IngestCommandHandler -----------------------------------------------

std::string IngestCommandHandler::Handle(const std::string& line, bool* quit,
                                         serve::Deadline deadline) {
  (void)deadline;
  *quit = false;
  auto err = [](const Status& status) {
    return "ERR " + status.ToString();
  };
  std::vector<std::string> tokens = serve::SplitProtocolTokens(line);
  if (tokens.empty()) {
    return err(Status::InvalidArgument("empty command"));
  }
  const std::string& cmd = tokens[0];

  if (cmd == "PING") return "OK pong";
  if (cmd == "QUIT") {
    *quit = true;
    return "OK bye";
  }

  if (cmd == "INGEST") {
    auto query_or = serve::ParseQueryCommand(tokens, nullptr);
    if (!query_or.ok()) return err(query_or.status());
    auto result_or = service_->Ingest(RecordFromQuery(*query_or));
    if (!result_or.ok()) return err(result_or.status());
    return "OK seq=" + std::to_string(result_or->sequence) +
           " dedup=" + (result_or->deduped ? std::string("1") : "0") +
           " topic=" + std::to_string(result_or->topic);
  }

  if (cmd == "REFRESH") {
    auto outcome_or = service_->RefreshWithRetry();
    if (!outcome_or.ok()) return err(outcome_or.status());
    char fp[16];
    std::snprintf(fp, sizeof(fp), "%08x", outcome_or->fingerprint);
    return std::string("OK refreshed fingerprint=") + fp +
           " covered=" + std::to_string(outcome_or->covered_sequence) +
           " documents=" + std::to_string(outcome_or->trained_documents) +
           " vocab=" + std::to_string(outcome_or->vocab_size) +
           " attempts=" + std::to_string(outcome_or->attempts);
  }

  if (cmd == "INGESTZ" || cmd == "STATSZ") {
    std::string stats = service_->RenderIngestz();
    if (!stats.empty() && stats.back() == '\n') stats.pop_back();
    return stats + "\n.";
  }

  if (cmd == "METRICSZ") return engine_->MetricszJson();

  return err(Status::InvalidArgument("unknown command '" + cmd + "'"));
}

}  // namespace texrheo::ingest
