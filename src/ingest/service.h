#ifndef TEXRHEO_INGEST_SERVICE_H_
#define TEXRHEO_INGEST_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/joint_topic_model.h"
#include "ingest/record.h"
#include "ingest/wal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recipe/dataset.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "util/backoff.h"

namespace texrheo::ingest {

/// How a refresh cycle retrains and republishes the model.
struct RefreshTrainConfig {
  /// Hyperparameters of the model being refreshed. Must match the run
  /// that produced the checkpoints in `train.checkpoint_dir` — the warm
  /// start validates this and refuses a mismatched resume. The dataset
  /// grows between refreshes; num_documents/vocab_size are derived, not
  /// taken from here.
  core::JointTopicModelConfig train;
  /// Gibbs sweeps per refresh on top of the warm-started state. When no
  /// checkpoint exists yet (first deployment), train.sweeps cold-start
  /// sweeps run instead.
  int refresh_sweeps = 5;
  /// Directory receiving the packed model pairs (model-r<N>.dat/.idx).
  std::string model_dir;
  /// Feature map used to lift concentration ratios into feature space for
  /// the training documents (must match the base corpus funnel).
  recipe::FeatureConfig feature;
  /// Retry schedule for RefreshWithRetry.
  BackoffPolicy backoff;
  int max_attempts = 3;
  uint64_t backoff_seed = 0x16e57;
};

struct IngestServiceConfig {
  /// WAL segments, the delta-corpus file, and recovery state live here.
  std::string wal_dir;
  size_t wal_segment_bytes = 64 * 1024;
  RefreshTrainConfig refresh;
  /// Optional; refresh cycles emit refresh_cycle/build_dataset/train/
  /// pack/reload/compact spans when set. Not owned.
  obs::Tracer* tracer = nullptr;
};

/// Durable streaming ingestion in front of a serving QueryEngine.
///
/// Accept path (Ingest): canonicalize -> content-key dedup -> CRC-framed
/// WAL append + fsync -> acknowledge -> fold into the live engine delta
/// (eq. 5, queryable within one batch linger) -> register still-unknown
/// terms as pending. The acknowledgement is durable: after a crash,
/// Recover() replays the WAL and re-folds every acknowledged record
/// exactly once (redelivery of the same content re-acknowledges the
/// original sequence without a second WAL append).
///
/// Refresh path (Refresh / RefreshWithRetry): snapshot the accepted
/// records, rebuild the combined dataset (base corpus + previously
/// absorbed records + fresh WAL records; vocabulary extended append-only
/// so checkpointed term ids stay valid), warm-start Gibbs from the latest
/// checkpoint, run refresh sweeps, pack a fresh .dat/.idx pair, verify it
/// loads, drive the reload callback (engine reload or router rolling
/// reload), then absorb the covered records into the delta corpus and
/// compact the WAL. Every failure leaves the old snapshot serving and the
/// WAL accepting; RefreshWithRetry retries under util/backoff.
///
/// Counters register in pipeline order (accepted before deduped before
/// folded) in the *engine's* registry, so any METRICSZ snapshot obeys
/// ingest.records.accepted >= deduped >= folded.
class IngestService {
 public:
  struct IngestResult {
    uint64_t sequence = 0;  ///< Durable WAL sequence (original's on dedup).
    bool deduped = false;   ///< Content already acknowledged earlier.
    /// Topic the fold-in landed in; -1 when the fold was skipped (dedup)
    /// or shed under load (the record is still durable and will be
    /// covered by recovery/refresh).
    int topic = -1;
  };

  struct RefreshOutcome {
    uint32_t fingerprint = 0;
    std::string model_idx_path;
    uint64_t covered_sequence = 0;
    size_t trained_documents = 0;
    size_t vocab_size = 0;
    int attempts = 1;
  };

  /// `engine` executes fold-ins and (by default) reloads; `base_corpus`
  /// is the dataset the base model was trained on (may be null only if no
  /// refresh will ever run). Both must outlive the service. Counters
  /// register in the engine's metrics registry.
  static StatusOr<std::unique_ptr<IngestService>> Create(
      const IngestServiceConfig& config, serve::QueryEngine* engine,
      const recipe::Dataset* base_corpus, FileOps& ops = FileOps::Real());

  /// Replays the WAL and delta corpus: rebuilds the dedup index, re-folds
  /// every acknowledged record into the engine delta exactly once, and
  /// re-registers pending vocabulary terms. Call once, before serving.
  Status Recover();

  /// Accepts one record (see class comment). A returned OK is a durable
  /// acknowledgement.
  StatusOr<IngestResult> Ingest(const IngestRecord& record);

  /// One refresh cycle; see class comment. No-op Unavailable when another
  /// refresh is already running.
  StatusOr<RefreshOutcome> Refresh();

  /// Refresh with up to config.refresh.max_attempts attempts under the
  /// configured backoff. Sleeps between attempts.
  StatusOr<RefreshOutcome> RefreshWithRetry();

  /// Replaces the reload step (default: engine->ReloadFromFile). Used to
  /// drive a router's rolling reload across a replica fleet instead.
  void SetReloadCallback(std::function<Status(const std::string&)> cb);

  /// INGESTZ page: ingest pipeline + WAL + engine delta state.
  std::string RenderIngestz();

  uint64_t high_water_sequence() const;
  uint64_t absorbed_sequence() const;
  size_t live_records() const;
  size_t absorbed_records() const;

 private:
  IngestService(const IngestServiceConfig& config,
                serve::QueryEngine* engine,
                const recipe::Dataset* base_corpus, FileOps& ops);

  /// Folds one record into the engine delta and registers its unknown
  /// terms; returns the topic (or -1 on shed) without failing the caller.
  int FoldIntoEngine(const IngestRecord& record, uint64_t sequence);
  /// Refreshes the WAL gauges from the log's current state.
  void RefreshWalGauges();
  /// Serializes absorbed records + high-water mark to the delta-corpus
  /// file (atomic rewrite).
  Status PersistDeltaCorpus();
  StatusOr<RefreshOutcome> RefreshLocked();

  const IngestServiceConfig config_;
  serve::QueryEngine* engine_;            ///< Not owned.
  const recipe::Dataset* base_corpus_;    ///< Not owned; may be null.
  FileOps& ops_;

  std::unique_ptr<WriteAheadLog> wal_;

  mutable std::mutex mu_;
  /// Content key -> acknowledged sequence (0 for records absorbed before
  /// sequence tracking began). Guarded by mu_.
  std::unordered_map<std::string, uint64_t> dedup_;
  /// Acknowledged, not yet absorbed, by sequence. Guarded by mu_.
  std::map<uint64_t, IngestRecord> live_;
  /// Records absorbed into a refreshed model, in absorption order (this
  /// order is the model's document order beyond the base corpus, so it
  /// must stay stable for checkpoint warm starts). Guarded by mu_.
  std::vector<IngestRecord> absorbed_;
  uint64_t absorbed_sequence_ = 0;  // Guarded by mu_.
  uint64_t refresh_count_ = 0;      // Guarded by refresh_mu_.

  std::mutex refresh_mu_;  ///< At most one refresh cycle at a time.

  std::function<Status(const std::string&)> reload_cb_;

  // Pre-registered handles into the engine's registry.
  obs::Counter* accepted_ = nullptr;
  obs::Counter* deduped_ = nullptr;
  obs::Counter* folded_ = nullptr;
  obs::Counter* fold_failed_ = nullptr;
  obs::Counter* recovered_ = nullptr;
  obs::Counter* wal_appends_ = nullptr;
  obs::Counter* wal_rotations_ = nullptr;
  obs::Counter* wal_segments_removed_ = nullptr;
  obs::Counter* refresh_attempts_ = nullptr;
  obs::Counter* refresh_failures_ = nullptr;
  obs::Counter* refresh_success_ = nullptr;
  obs::Gauge* wal_segments_ = nullptr;
  obs::Gauge* wal_open_bytes_ = nullptr;
  obs::Gauge* wal_next_sequence_ = nullptr;
  obs::Gauge* live_gauge_ = nullptr;
  obs::Gauge* absorbed_gauge_ = nullptr;
};

/// Line-protocol command surface of texrheo_ingest (fronted by
/// serve::LineProtocolServer in handler mode):
///
///   PING
///   INGEST <name=ratio,...|-> [terms=a,b,...]   -> OK seq=N dedup=0|1 topic=K
///   REFRESH                                      -> OK refreshed fingerprint=..
///   INGESTZ                                      (multi-line, "." terminated)
///   STATSZ                                       (alias of INGESTZ)
///   METRICSZ                                     (engine registry JSON)
///   QUIT
class IngestCommandHandler : public serve::CommandHandler {
 public:
  /// Both must outlive the handler.
  IngestCommandHandler(IngestService* service, serve::QueryEngine* engine)
      : service_(service), engine_(engine) {}

  std::string Handle(const std::string& line, bool* quit,
                     serve::Deadline deadline) override;

 private:
  IngestService* service_;
  serve::QueryEngine* engine_;
};

}  // namespace texrheo::ingest

#endif  // TEXRHEO_INGEST_SERVICE_H_
