// texrheo_ingest: durable streaming ingestion front-end.
//
//   texrheo_ingest --toy [--port=0] [--selftest] [--data-dir=DIR]
//
// --toy trains a small base model in-process (checkpointing enabled, so
// the first REFRESH warm-starts from the batch run's Gibbs state), then
// serves the ingest line protocol (see ingest/service.h): INGEST appends
// to the WAL and folds the recipe into the live engine, REFRESH retrains
// over old+new data and hot-swaps the packed model, INGESTZ/METRICSZ
// expose the pipeline. --selftest drives a scripted session — drifting-
// stream recipes, wire redelivery dedup, stale-vocab behaviour, a full
// refresh cycle — against the freshly started server and exits 0/1; this
// is the CI smoke mode.
//
// Knobs:
//   --data-dir=DIR        WAL + checkpoints + refreshed models (default: a
//                         per-process directory under TMPDIR)
//   --toy-scale=X         base-corpus scale (as texrheo_serve)
//   --refresh-sweeps=N    Gibbs sweeps per warm-started refresh

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "corpus/stream.h"
#include "eval/experiment.h"
#include "ingest/record.h"
#include "ingest/service.h"
#include "obs/trace.h"
#include "recipe/dataset.h"
#include "rheology/gel_model.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "text/texture_dictionary.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/logging.h"

namespace {

using texrheo::Status;
using texrheo::StatusOr;

/// Everything the toy deployment needs alive for the process lifetime.
struct ToyDeployment {
  std::unique_ptr<texrheo::recipe::Dataset> corpus;
  std::shared_ptr<texrheo::obs::MetricsRegistry> metrics;
  std::unique_ptr<texrheo::obs::Tracer> tracer;
  std::unique_ptr<texrheo::serve::QueryEngine> engine;
  std::unique_ptr<texrheo::ingest::IngestService> service;
};

StatusOr<ToyDeployment> BuildToy(double scale, int refresh_sweeps,
                                 const std::string& data_dir) {
  texrheo::eval::ExperimentConfig config =
      texrheo::eval::DefaultExperimentConfig(scale);
  // Checkpoint the base run: REFRESH resumes Gibbs from this state instead
  // of burning in cold (the streaming-refresh contract of
  // JointTopicModel::WarmStartFromCheckpoint).
  config.model.checkpoint_dir = data_dir + "/checkpoints";
  config.model.checkpoint_interval = std::max(1, config.model.sweeps / 2);
  TEXRHEO_ASSIGN_OR_RETURN(texrheo::eval::ExperimentResult result,
                           texrheo::eval::RunJointExperiment(config));

  ToyDeployment toy;
  toy.metrics = std::make_shared<texrheo::obs::MetricsRegistry>();
  toy.tracer = std::make_unique<texrheo::obs::Tracer>(
      nullptr, texrheo::obs::Tracer::Options{0});
  toy.tracer->ExportDurationsTo(toy.metrics.get());

  texrheo::core::ModelSnapshot model = texrheo::core::MakeSnapshot(
      result.estimates, result.dataset.term_vocab);
  TEXRHEO_ASSIGN_OR_RETURN(
      std::shared_ptr<const texrheo::serve::ServingSnapshot> snapshot,
      texrheo::serve::ServingSnapshot::FromModel(std::move(model),
                                                 "ingest-toy"));
  toy.corpus = std::make_unique<texrheo::recipe::Dataset>(
      std::move(result.dataset));

  texrheo::serve::QueryEngineConfig engine_config;
  engine_config.num_threads = 0;
  engine_config.metrics = toy.metrics;
  engine_config.tracer = toy.tracer.get();
  engine_config.feature = config.dataset.feature;
  TEXRHEO_ASSIGN_OR_RETURN(
      toy.engine, texrheo::serve::QueryEngine::Create(engine_config, snapshot,
                                                      toy.corpus.get()));

  texrheo::ingest::IngestServiceConfig service_config;
  service_config.wal_dir = data_dir + "/wal";
  service_config.tracer = toy.tracer.get();
  // The refresh trains with the *same* hyperparameters as the base run —
  // the warm start refuses a mismatched resume — over the grown corpus.
  service_config.refresh.train = config.model;
  service_config.refresh.refresh_sweeps = refresh_sweeps;
  service_config.refresh.model_dir = data_dir + "/models";
  service_config.refresh.feature = config.dataset.feature;
  TEXRHEO_ASSIGN_OR_RETURN(
      toy.service,
      texrheo::ingest::IngestService::Create(service_config, toy.engine.get(),
                                             toy.corpus.get()));
  TEXRHEO_RETURN_IF_ERROR(toy.service->Recover());
  return toy;
}

/// Scripted ingestion session: drifting-stream recipes over the wire,
/// redelivery dedup, INGESTZ, a full REFRESH cycle (fingerprint change +
/// vocabulary growth), stale-vocab fail-clean, and METRICSZ consistency.
Status RunSelftest(int port, ToyDeployment& toy) {
  using texrheo::serve::LineClient;
  texrheo::serve::LineClientOptions client_options;
  client_options.max_connect_attempts = 3;
  client_options.io_timeout_millis = 120000;  // REFRESH retrains in-line.
  TEXRHEO_ASSIGN_OR_RETURN(
      std::unique_ptr<LineClient> client,
      LineClient::Connect("127.0.0.1", port, client_options));
  auto expect_ok = [&](const std::string& command) -> StatusOr<std::string> {
    TEXRHEO_ASSIGN_OR_RETURN(std::string reply, client->RoundTrip(command));
    if (reply.rfind("OK", 0) != 0) {
      return Status::Internal("selftest: '" + command + "' -> " + reply);
    }
    TEXRHEO_LOG(Info) << command << " -> " << reply;
    return reply;
  };
  TEXRHEO_RETURN_IF_ERROR(expect_ok("PING").status());

  // Drifting-stream arrivals: aggressive drift intervals so template
  // unlocks and vocabulary churn happen within the first few positions.
  texrheo::corpus::RecipeStreamConfig stream_config;
  stream_config.template_unlock_interval = 4;
  stream_config.season_period = 8;
  stream_config.vocab_churn_interval = 3;
  stream_config.churn_term_prob = 1.0;
  texrheo::corpus::RecipeStream stream(
      stream_config, &texrheo::rheology::GelPhysicsModel::Calibrated(),
      &texrheo::text::TextureDictionary::Embedded());
  const texrheo::recipe::IngredientDatabase& db =
      texrheo::recipe::IngredientDatabase::Embedded();
  std::vector<std::string> sent_commands;
  std::string first_reply;
  for (int i = 0; i < 10; ++i) {
    texrheo::corpus::StreamRecipe item = stream.Next();
    TEXRHEO_ASSIGN_OR_RETURN(texrheo::ingest::IngestRecord record,
                             texrheo::ingest::RecordFromStream(item, db));
    const std::string command = texrheo::ingest::IngestCommandFor(record);
    TEXRHEO_ASSIGN_OR_RETURN(std::string reply, expect_ok(command));
    if (reply.find(" dedup=0 ") == std::string::npos) {
      return Status::Internal("selftest: fresh recipe claimed dedup: " +
                              reply);
    }
    sent_commands.push_back(command);
    if (first_reply.empty()) first_reply = reply;
  }

  // Wire redelivery of the first recipe: byte-identical acknowledgement of
  // the *original* sequence, no second WAL append.
  TEXRHEO_ASSIGN_OR_RETURN(std::string redelivered,
                           expect_ok(sent_commands.front()));
  if (redelivered.find(" dedup=1") == std::string::npos ||
      redelivered.rfind(first_reply.substr(0, first_reply.find(" dedup=")),
                        0) != 0) {
    return Status::Internal("selftest: redelivery not deduped to " +
                            first_reply + ", got " + redelivered);
  }

  // A recipe naming a term the served vocabulary does not know: accepted
  // durably, and queries on that term fail clean (FailedPrecondition)
  // until a refresh brings the term into the vocabulary.
  const std::string churn_term = "mochimochi-n";
  TEXRHEO_RETURN_IF_ERROR(
      expect_ok("INGEST gelatin=0.015,milk=0.22 terms=" + churn_term)
          .status());
  texrheo::serve::TextureQuery stale_query;
  stale_query.texture_terms = {churn_term};
  auto stale = toy.engine->PredictTexture(stale_query);
  if (stale.ok() ||
      stale.status().code() != texrheo::StatusCode::kFailedPrecondition) {
    return Status::Internal(
        "selftest: stale-vocab query should FailedPrecondition, got " +
        (stale.ok() ? std::string("OK") : stale.status().ToString()));
  }
  if (toy.engine->GetDeltaStats().stale_vocab_queries < 1) {
    return Status::Internal("selftest: stale_vocab counter did not move");
  }

  // Folded recipes are queryable before any refresh: the engine's delta
  // carries them.
  if (toy.engine->GetDeltaStats().delta_docs < 10) {
    return Status::Internal("selftest: ingested recipes missing from the "
                            "engine delta");
  }

  TEXRHEO_ASSIGN_OR_RETURN(std::string ingestz_reply,
                           client->RoundTrip("INGESTZ"));
  std::string ingestz = ingestz_reply + "\n";
  {
    TEXRHEO_ASSIGN_OR_RETURN(std::string rest, client->ReadUntilDot());
    ingestz += rest;
  }
  for (const char* section :
       {"pipeline:", "wal:", "delta:", "refresh:", "engine:"}) {
    if (ingestz.find(section) == std::string::npos) {
      return Status::Internal(std::string("selftest: ingestz missing '") +
                              section + "' section:\n" + ingestz);
    }
  }
  TEXRHEO_LOG(Info) << "ingestz:\n" << ingestz;

  // Full refresh cycle over the wire: retrain on base + streamed recipes,
  // pack, hot-swap, compact. The served fingerprint must change and the
  // pending term must resolve into the vocabulary.
  const uint32_t fingerprint_before = toy.engine->snapshot()->fingerprint();
  TEXRHEO_ASSIGN_OR_RETURN(std::string refreshed, expect_ok("REFRESH"));
  if (refreshed.find("fingerprint=") == std::string::npos) {
    return Status::Internal("selftest: REFRESH reply malformed: " +
                            refreshed);
  }
  if (toy.engine->snapshot()->fingerprint() == fingerprint_before) {
    return Status::Internal("selftest: fingerprint unchanged after REFRESH");
  }
  auto fresh = toy.engine->PredictTexture(stale_query);
  if (!fresh.ok()) {
    return Status::Internal(
        "selftest: churned term still unqueryable after REFRESH: " +
        fresh.status().ToString());
  }
  // Absorbed recipes stay visible to SIMILAR across the swap (the ingest
  // layer re-folds its delta against the new snapshot).
  if (toy.service->absorbed_records() < 11 ||
      toy.engine->GetDeltaStats().delta_docs <
          toy.service->absorbed_records()) {
    return Status::Internal("selftest: delta lost across refresh");
  }

  // Ingestion continues against the refreshed model.
  TEXRHEO_ASSIGN_OR_RETURN(std::string post_reply,
                           expect_ok("INGEST kanten=0.008 terms=katai"));
  if (post_reply.find(" dedup=0 ") == std::string::npos) {
    return Status::Internal("selftest: post-refresh ingest deduped: " +
                            post_reply);
  }

  // METRICSZ: one page carries the whole stack; the ingest chain must be
  // monotone (registration order makes this invariant, not luck).
  TEXRHEO_ASSIGN_OR_RETURN(std::string metricsz,
                           client->RoundTrip("METRICSZ"));
  TEXRHEO_ASSIGN_OR_RETURN(texrheo::JsonValue metrics,
                           texrheo::JsonValue::Parse(metricsz));
  const texrheo::JsonValue* counters = metrics.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return Status::Internal("selftest: metricsz missing counters:\n" +
                            metricsz);
  }
  auto counter = [&](const char* name) -> double {
    const texrheo::JsonValue* v = counters->Find(name);
    return v != nullptr && v->is_number() ? v->AsNumber() : 0.0;
  };
  if (counter("ingest.records.accepted") < counter("ingest.records.deduped") ||
      counter("ingest.records.deduped") < counter("ingest.records.folded") ||
      counter("ingest.records.folded") < 1.0 ||
      counter("ingest.refresh.attempts") < counter("ingest.refresh.success") ||
      counter("ingest.refresh.success") < 1.0 ||
      counter("serve.queries.stale_vocab") < 1.0) {
    return Status::Internal("selftest: metricsz ingest counters "
                            "inconsistent:\n" + metricsz);
  }
  TEXRHEO_RETURN_IF_ERROR(expect_ok("QUIT").status());
  return Status::OK();
}

int Main(int argc, char** argv) {
  texrheo::FlagParser flags;
  Status parse = flags.Parse(argc, argv);
  if (!parse.ok()) {
    std::fprintf(stderr, "%s\n", parse.ToString().c_str());
    return 2;
  }
  const bool toy = flags.GetBool("toy", false);
  const bool selftest = flags.GetBool("selftest", false);
  auto port_or = flags.GetInt("port", selftest ? 0 : 7334);
  auto scale_or = flags.GetDouble("toy-scale", 0.06);
  auto refresh_sweeps_or = flags.GetInt("refresh-sweeps", 5);
  if (!port_or.ok() || !scale_or.ok() || !refresh_sweeps_or.ok()) {
    std::fprintf(stderr, "bad --port / --toy-scale / --refresh-sweeps\n");
    return 2;
  }
  if (!toy) {
    // The streaming service needs a base model *and* the corpus it was
    // trained on (the refresh trains over both); only the in-process toy
    // pipeline provides that today.
    std::fprintf(stderr,
                 "usage: texrheo_ingest --toy [--port=N] [--selftest] "
                 "[--data-dir=DIR]\n");
    return 2;
  }
  std::string data_dir = flags.GetString("data-dir", "");
  if (data_dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    data_dir = std::string(tmp != nullptr ? tmp : "/tmp") +
               "/texrheo_ingest." + std::to_string(static_cast<long>(getpid()));
  }

  StatusOr<ToyDeployment> toy_or =
      BuildToy(*scale_or, static_cast<int>(*refresh_sweeps_or), data_dir);
  if (!toy_or.ok()) {
    std::fprintf(stderr, "toy deployment failed: %s\n",
                 toy_or.status().ToString().c_str());
    return 1;
  }
  ToyDeployment deployment = std::move(toy_or).value();

  texrheo::ingest::IngestCommandHandler handler(deployment.service.get(),
                                                deployment.engine.get());
  texrheo::serve::ServerOptions server_options;
  server_options.port = static_cast<int>(*port_or);
  // REFRESH retrains inline; never let the idle reaper or a request
  // deadline kill the cycle mid-swap.
  server_options.idle_timeout_millis = 300000;
  texrheo::serve::LineProtocolServer server(
      &handler, deployment.engine->metrics(), server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("texrheo_ingest listening on 127.0.0.1:%d (model %08x, wal %s)\n",
              server.port(), deployment.engine->snapshot()->fingerprint(),
              data_dir.c_str());
  std::fflush(stdout);

  if (selftest) {
    Status result = RunSelftest(server.port(), deployment);
    server.Stop();
    if (!result.ok()) {
      std::fprintf(stderr, "SELFTEST FAILED: %s\n", result.ToString().c_str());
      return 1;
    }
    std::printf("selftest passed\n");
    return 0;
  }

  for (;;) pause();
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
