#include "rheology/gel_model.h"

#include <cassert>
#include <cmath>

#include "math/regression.h"

namespace texrheo::rheology {
namespace {

using recipe::EmulsionType;
using recipe::GelType;

constexpr size_t kGelatin = static_cast<size_t>(GelType::kGelatin);
constexpr size_t kKanten = static_cast<size_t>(GelType::kKanten);
constexpr size_t kAgar = static_cast<size_t>(GelType::kAgar);

double EmulsionAt(const math::Vector& e, EmulsionType t) {
  return e[static_cast<size_t>(t)];
}

// "Foam formers" build secondary protein/fat networks: whipped cream, egg
// yolk, egg albumen. They dominate the Bavarois texture shift.
double FoamFraction(const math::Vector& e) {
  return EmulsionAt(e, EmulsionType::kRawCream) +
         EmulsionAt(e, EmulsionType::kEggYolk) +
         EmulsionAt(e, EmulsionType::kEggAlbumen);
}

double DairyFraction(const math::Vector& e) {
  return EmulsionAt(e, EmulsionType::kMilk) +
         EmulsionAt(e, EmulsionType::kYogurt);
}

}  // namespace

texrheo::StatusOr<GelPhysicsModel> GelPhysicsModel::Calibrate() {
  GelPhysicsModel model;
  const auto& table = TableI();

  for (int g = 0; g < recipe::kNumGelTypes; ++g) {
    // Rows where this gel is the only one present.
    std::vector<double> conc, hardness, cohesiveness;
    std::vector<double> adh_conc, adh_value;
    for (const auto& row : table) {
      double c = row.gel[static_cast<size_t>(g)];
      if (c <= 0.0) continue;
      bool pure = true;
      for (int other = 0; other < recipe::kNumGelTypes; ++other) {
        if (other != g && row.gel[static_cast<size_t>(other)] > 0.0) {
          pure = false;
        }
      }
      if (!pure) continue;
      conc.push_back(c);
      hardness.push_back(row.attributes.hardness);
      cohesiveness.push_back(row.attributes.cohesiveness);
      if (row.attributes.adhesiveness >= 0.005) {
        adh_conc.push_back(c);
        adh_value.push_back(row.attributes.adhesiveness);
      }
    }
    if (conc.size() < 2) {
      return Status::FailedPrecondition(
          "Table I has too few pure rows for gel type " +
          std::string(GelTypeName(static_cast<GelType>(g))));
    }
    PerGel& pg = model.gels_[static_cast<size_t>(g)];

    TEXRHEO_ASSIGN_OR_RETURN(math::PowerLawFit h_fit,
                             math::FitPowerLaw(conc, hardness));
    pg.hardness_amplitude = h_fit.amplitude;
    pg.hardness_exponent = h_fit.exponent;

    TEXRHEO_ASSIGN_OR_RETURN(math::ExponentialFit c_fit,
                             math::FitExponential(conc, cohesiveness));
    pg.cohesiveness_at_zero = c_fit.amplitude;
    pg.cohesiveness_decay = -c_fit.rate;  // Stored as a positive decay rate.

    if (adh_conc.size() >= 2) {
      TEXRHEO_ASSIGN_OR_RETURN(math::ExponentialFit a_fit,
                               math::FitExponential(adh_conc, adh_value));
      pg.adhesive_amplitude = a_fit.amplitude;
      pg.adhesive_rate = a_fit.rate;
    } else {
      // Kanten: zero adhesiveness at every published setting.
      pg.adhesive_amplitude = 0.0;
      pg.adhesive_rate = 0.0;
    }
  }

  // Gelatin x agar synergy from row 5 (gelatin 3% + agar 3%): the huge
  // measured adhesiveness (12.6) far exceeds the sum of the pure curves.
  for (const auto& row : table) {
    double cg = row.gel[kGelatin];
    double ca = row.gel[kAgar];
    if (cg > 0.0 && ca > 0.0) {
      double pure_sum = model.PureAdhesiveness(GelType::kGelatin, cg) +
                        model.PureAdhesiveness(GelType::kAgar, ca);
      double excess = row.attributes.adhesiveness - pure_sum;
      if (excess > 0.0) model.gelatin_agar_synergy_ = excess / (cg * ca);
    }
  }

  // Emulsion coefficients from Table II(b). Both dishes share the gelatin
  // 2.5% base; their attribute ratios to the pure-gel prediction pin down
  // the foam/dairy coefficients (sugar hardness coefficient fixed at a
  // small prior value: sugar mildly stiffens gels).
  const auto& dishes = TableIIb();
  if (dishes.size() >= 2) {
    const EmulsionDish& bavarois = dishes[0];
    const EmulsionDish& milk_jelly = dishes[1];
    double base_c = bavarois.gel[kGelatin];
    double h_base = model.PureHardness(GelType::kGelatin, base_c);
    double c_base = model.PureCohesiveness(GelType::kGelatin, base_c);
    double a_base = model.PureAdhesiveness(GelType::kGelatin, base_c);

    model.hardness_sugar_coeff_ = 1.0;
    double dairy_m = DairyFraction(milk_jelly.emulsion);
    double sugar_m = EmulsionAt(milk_jelly.emulsion, EmulsionType::kSugar);
    model.hardness_dairy_coeff_ =
        (milk_jelly.attributes.hardness / h_base - 1.0 -
         model.hardness_sugar_coeff_ * sugar_m) /
        dairy_m;
    double foam_b = FoamFraction(bavarois.emulsion);
    double dairy_b = DairyFraction(bavarois.emulsion);
    model.hardness_foam_coeff_ =
        (bavarois.attributes.hardness / h_base - 1.0 -
         model.hardness_dairy_coeff_ * dairy_b) /
        foam_b;

    model.cohesiveness_dairy_coeff_ =
        (milk_jelly.attributes.cohesiveness - c_base) / dairy_m;
    model.cohesiveness_foam_coeff_ =
        (bavarois.attributes.cohesiveness - c_base -
         model.cohesiveness_dairy_coeff_ * dairy_b) /
        foam_b;

    model.adhesion_dairy_damping_ =
        -std::log(milk_jelly.attributes.adhesiveness / a_base) / dairy_m;
    model.adhesion_foam_damping_ =
        (-std::log(bavarois.attributes.adhesiveness / a_base) -
         model.adhesion_dairy_damping_ * dairy_b) /
        foam_b;
  }
  return model;
}

const GelPhysicsModel& GelPhysicsModel::Calibrated() {
  static const GelPhysicsModel& model = *new GelPhysicsModel([] {
    auto model_or = Calibrate();
    assert(model_or.ok() && "embedded Table I failed calibration");
    return std::move(model_or).value();
  }());
  return model;
}

double GelPhysicsModel::PureHardness(GelType type,
                                     double concentration) const {
  if (concentration <= 0.0) return 0.0;
  const PerGel& pg = gels_[static_cast<size_t>(type)];
  return pg.hardness_amplitude *
         std::pow(concentration, pg.hardness_exponent);
}

double GelPhysicsModel::PureCohesiveness(GelType type,
                                         double concentration) const {
  if (concentration <= 0.0) return 0.0;
  const PerGel& pg = gels_[static_cast<size_t>(type)];
  double c = pg.cohesiveness_at_zero *
             std::exp(-pg.cohesiveness_decay * concentration);
  return std::min(0.95, std::max(0.01, c));
}

double GelPhysicsModel::PureAdhesiveness(GelType type,
                                         double concentration) const {
  if (concentration <= 0.0) return 0.0;
  const PerGel& pg = gels_[static_cast<size_t>(type)];
  if (pg.adhesive_amplitude <= 0.0) return 0.0;
  return pg.adhesive_amplitude * std::exp(pg.adhesive_rate * concentration);
}

TpaAttributes GelPhysicsModel::Predict(const math::Vector& gel,
                                       const math::Vector& emulsion) const {
  assert(gel.size() == recipe::kNumGelTypes);
  assert(emulsion.size() == recipe::kNumEmulsionTypes);
  double total_gel = gel.Sum();
  TpaAttributes out;
  if (total_gel <= 0.0) return out;  // Ungelled: no measurable TPA solid.

  // Concentration-weighted blend of the pure-gel curves (the network of a
  // gel mixture is dominated by its constituents proportionally).
  double hardness = 0.0, cohesiveness = 0.0, adhesiveness = 0.0;
  for (int g = 0; g < recipe::kNumGelTypes; ++g) {
    double c = gel[static_cast<size_t>(g)];
    if (c <= 0.0) continue;
    GelType type = static_cast<GelType>(g);
    double w = c / total_gel;
    hardness += w * PureHardness(type, c);
    cohesiveness += w * PureCohesiveness(type, c);
    adhesiveness += PureAdhesiveness(type, c);  // Adhesion is additive.
  }
  adhesiveness += gelatin_agar_synergy_ * gel[kGelatin] * gel[kAgar];

  // Subordinate emulsion effects.
  double foam = FoamFraction(emulsion);
  double dairy = DairyFraction(emulsion);
  double sugar = EmulsionAt(emulsion, EmulsionType::kSugar);
  hardness *= 1.0 + hardness_foam_coeff_ * foam +
              hardness_dairy_coeff_ * dairy + hardness_sugar_coeff_ * sugar;
  cohesiveness += cohesiveness_foam_coeff_ * foam +
                  cohesiveness_dairy_coeff_ * dairy;
  adhesiveness *= std::exp(-adhesion_foam_damping_ * foam -
                           adhesion_dairy_damping_ * dairy);

  // The steep per-gel power laws are calibrated on concentrations up to 3%;
  // extrapolating a gelatin gummy at 6-7% would predict absurd forces.
  // Real gels saturate as the network approaches close packing; cap well
  // above the calibrated range (Table I max is 5.67 RU) so fitted values
  // are untouched.
  constexpr double kHardnessSaturationRu = 25.0;
  out.hardness = std::min(kHardnessSaturationRu, std::max(0.0, hardness));
  out.cohesiveness = std::min(0.95, std::max(0.01, cohesiveness));
  out.adhesiveness = std::max(0.0, adhesiveness);
  return out;
}

}  // namespace texrheo::rheology
