#ifndef TEXRHEO_RHEOLOGY_EMPIRICAL_DATA_H_
#define TEXRHEO_RHEOLOGY_EMPIRICAL_DATA_H_

#include <string>
#include <vector>

#include "math/linalg.h"
#include "recipe/ingredient.h"

namespace texrheo::rheology {

/// Quantitative texture attributes measured by texture profile analysis,
/// in rheological units (RU).
struct TpaAttributes {
  double hardness = 0.0;      ///< Peak force of the first compression (F1).
  double cohesiveness = 0.0;  ///< Second/first compression work ratio (c/a).
  double adhesiveness = 0.0;  ///< |negative work| during first withdrawal.
};

/// One empirical food-science measurement: a gel composition and the TPA
/// attributes the literature reports for it.
struct EmpiricalSetting {
  int id = 0;                ///< Row id as used in the paper's Table I.
  std::string source;        ///< Abbreviated citation.
  math::Vector gel = math::Vector(recipe::kNumGelTypes);            ///< Concentration ratios.
  math::Vector emulsion = math::Vector(recipe::kNumEmulsionTypes);  ///< Zero for Table I.
  TpaAttributes attributes;
};

/// The paper's Table I: 13 gel-only settings collected from six
/// food-science studies (refs. [3]-[5], [15]-[17] in the paper).
const std::vector<EmpiricalSetting>& TableI();

/// The paper's Table II(b): Bavarois and Milk jelly, gelatin dishes with
/// substantial emulsion fractions (refs. [20], [21]).
struct EmulsionDish {
  std::string name;
  math::Vector gel = math::Vector(recipe::kNumGelTypes);
  math::Vector emulsion = math::Vector(recipe::kNumEmulsionTypes);
  TpaAttributes attributes;
};
const std::vector<EmulsionDish>& TableIIb();

/// Force/work unit systems used by different rheometer products; the paper
/// normalizes all sources to RU ("rheological unit").
enum class ForceUnit {
  kRheologicalUnit,  ///< The common scale used by the paper.
  kNewton,
  kGramForce,
  kKiloPascalCm2,  ///< Stress over the standard 1 cm^2 probe face.
};

/// Multiplier converting one unit of `unit` to RU. The RU scale is anchored
/// so that 1 RU ~ 0.98 N on the Texturometer the paper's references used.
double ToRuFactor(ForceUnit unit);

/// Converts a measured value to RU.
double ConvertToRu(double value, ForceUnit unit);

}  // namespace texrheo::rheology

#endif  // TEXRHEO_RHEOLOGY_EMPIRICAL_DATA_H_
