#include "rheology/empirical_data.h"

namespace texrheo::rheology {
namespace {

EmpiricalSetting Setting(int id, const char* source, double gelatin,
                         double kanten, double agar, double hardness,
                         double cohesiveness, double adhesiveness) {
  EmpiricalSetting s;
  s.id = id;
  s.source = source;
  s.gel[static_cast<size_t>(recipe::GelType::kGelatin)] = gelatin;
  s.gel[static_cast<size_t>(recipe::GelType::kKanten)] = kanten;
  s.gel[static_cast<size_t>(recipe::GelType::kAgar)] = agar;
  s.attributes = TpaAttributes{hardness, cohesiveness, adhesiveness};
  return s;
}

std::vector<EmpiricalSetting> BuildTableI() {
  // Verbatim from the paper's Table I. The paper prints two rows labelled
  // "8"; following the row order we number them 8 and 9 (so ids run 1..13).
  return {
      Setting(1, "Kawamura1978", 0.018, 0, 0, 0.20, 0.60, 0.10),
      Setting(2, "Kawamura1978", 0.020, 0, 0, 0.30, 0.59, 0.04),
      Setting(3, "Kawamura1980", 0.025, 0, 0, 0.72, 0.17, 0.57),
      Setting(4, "Kawamura1980", 0.030, 0, 0, 2.78, 0.31, 0.42),
      Setting(5, "Kurimoto1997", 0.030, 0, 0.03, 3.01, 0.35, 12.6),
      Setting(6, "Okuma1978", 0, 0.008, 0, 2.20, 0.12, 0.0),
      Setting(7, "Okuma1978", 0, 0.010, 0, 3.50, 0.10, 0.0),
      Setting(8, "Okuma1978", 0, 0.012, 0, 5.00, 0.80, 0.0),
      Setting(9, "Okuma1978", 0, 0.020, 0, 5.67, 0.03, 0.0),
      Setting(10, "Suzuno1992", 0, 0, 0.008, 1.00, 0.48, 0.0),
      Setting(11, "Suzuno1992", 0, 0, 0.010, 1.50, 0.33, 0.01),
      Setting(12, "Suzuno1992", 0, 0, 0.012, 2.70, 0.28, 0.02),
      Setting(13, "Murayama1992", 0, 0, 0.030, 2.21, 0.20, 1.95),
  };
}

std::vector<EmulsionDish> BuildTableIIb() {
  EmulsionDish bavarois;
  bavarois.name = "Bavarois";
  bavarois.gel[static_cast<size_t>(recipe::GelType::kGelatin)] = 0.025;
  bavarois.emulsion[static_cast<size_t>(recipe::EmulsionType::kEggYolk)] =
      0.08;
  bavarois.emulsion[static_cast<size_t>(recipe::EmulsionType::kRawCream)] =
      0.2;
  bavarois.emulsion[static_cast<size_t>(recipe::EmulsionType::kMilk)] = 0.4;
  bavarois.attributes = TpaAttributes{3.860, 0.809, 0.095};

  EmulsionDish milk_jelly;
  milk_jelly.name = "Milk jelly";
  milk_jelly.gel[static_cast<size_t>(recipe::GelType::kGelatin)] = 0.025;
  milk_jelly.emulsion[static_cast<size_t>(recipe::EmulsionType::kSugar)] =
      0.032;
  milk_jelly.emulsion[static_cast<size_t>(recipe::EmulsionType::kMilk)] =
      0.787;
  milk_jelly.attributes = TpaAttributes{1.83, 0.27, 0.44};

  return {bavarois, milk_jelly};
}

}  // namespace

const std::vector<EmpiricalSetting>& TableI() {
  static const std::vector<EmpiricalSetting>& table =
      *new std::vector<EmpiricalSetting>(BuildTableI());
  return table;
}

const std::vector<EmulsionDish>& TableIIb() {
  static const std::vector<EmulsionDish>& table =
      *new std::vector<EmulsionDish>(BuildTableIIb());
  return table;
}

double ToRuFactor(ForceUnit unit) {
  switch (unit) {
    case ForceUnit::kRheologicalUnit:
      return 1.0;
    case ForceUnit::kNewton:
      // 1 RU anchored at 0.98 N (1 kgf-class Texturometer deflection).
      return 1.0 / 0.98;
    case ForceUnit::kGramForce:
      return 9.80665e-3 / 0.98;  // gf -> N -> RU.
    case ForceUnit::kKiloPascalCm2:
      return 0.1 / 0.98;  // kPa over 1 cm^2 = 0.1 N -> RU.
  }
  return 1.0;
}

double ConvertToRu(double value, ForceUnit unit) {
  return value * ToRuFactor(unit);
}

}  // namespace texrheo::rheology
