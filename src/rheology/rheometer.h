#ifndef TEXRHEO_RHEOLOGY_RHEOMETER_H_
#define TEXRHEO_RHEOLOGY_RHEOMETER_H_

#include <vector>

#include "math/linalg.h"
#include "rheology/empirical_data.h"
#include "rheology/gel_model.h"
#include "util/status.h"

namespace texrheo::rheology {

/// Mechanical parameters the probe "feels" when compressing one sample.
/// GelPhysicsModel output is converted to these via SampleFromAttributes.
struct MechanicalSample {
  /// Linear-elastic stiffness: force (RU) per unit engineering strain.
  double stiffness = 0.0;
  /// Strain at which the network fractures; beyond it force plateaus.
  double yield_strain = 1.0;
  /// Force retention factor after fracture (plateau / peak).
  double post_yield_factor = 0.3;
  /// Fraction of network stiffness surviving into the second compression.
  double damage_retention = 1.0;
  /// Peak adhesive (negative) force at probe lift-off, RU.
  double tackiness = 0.0;
  /// Separation distance (mm) over which the adhesive bond releases.
  double adhesion_decay_mm = 1.0;
};

/// Probe programme of the two-bite texture profile analysis (Fig. 2 of the
/// paper): descend, compress, ascend past lift-off, pause, repeat.
struct RheometerConfig {
  double sample_height_mm = 15.0;
  double compression_fraction = 0.30;  ///< Max strain of each bite.
  double probe_speed_mm_s = 5.0;
  double retract_mm = 4.0;  ///< Travel above the sample surface, where
                            ///< adhesive tails are recorded.
  double pause_s = 0.5;     ///< Dwell between the two bites.
  double dt_s = 0.002;      ///< Sampling interval of the force transducer.
};

/// One recorded point of the force-time curve.
struct ForceSample {
  double time_s = 0.0;
  /// Probe depth below the undisturbed sample surface (mm); negative while
  /// the probe is above the surface.
  double depth_mm = 0.0;
  double force_ru = 0.0;
  int cycle = 0;  ///< 1 or 2.
};

/// A complete simulated TPA measurement.
struct Measurement {
  std::vector<ForceSample> curve;
  double peak_force_1 = 0.0;  ///< F1 in the paper's Fig. 2.
  double peak_force_2 = 0.0;
  double area_1 = 0.0;        ///< Positive work of bite 1 ("a").
  double area_2 = 0.0;        ///< Positive work of bite 2 ("c").
  double negative_area = 0.0; ///< |adhesive work| of bite 1's ascent ("b").
  /// Attributes extracted from the curve exactly as a rheometer does:
  /// hardness = peak_force_1, cohesiveness = area_2 / area_1,
  /// adhesiveness = negative_area (scaled to RU).
  TpaAttributes attributes;
};

/// Simulates the two-bite TPA cycle on a lumped viscoelastic-fracture
/// sample and extracts the standard attributes from the force curve.
class Rheometer {
 public:
  explicit Rheometer(const RheometerConfig& config = RheometerConfig());

  /// Runs the full probe programme. Fails on nonsensical configuration
  /// (non-positive speeds/heights).
  texrheo::StatusOr<Measurement> Measure(const MechanicalSample& sample) const;

  const RheometerConfig& config() const { return config_; }

 private:
  RheometerConfig config_;
};

/// Inverts the rheometer relations: builds mechanical parameters such that
/// the simulated measurement reproduces `target` (used to turn
/// GelPhysicsModel predictions into probe-able samples). The round trip
/// Measure(SampleFromAttributes(t)).attributes ~ t holds to within a few
/// percent (verified by tests).
MechanicalSample SampleFromAttributes(const TpaAttributes& target,
                                      const RheometerConfig& config);

/// Convenience: full pipeline composition -> physics -> probe -> attributes.
texrheo::StatusOr<Measurement> SimulateDish(const GelPhysicsModel& model,
                                            const math::Vector& gel,
                                            const math::Vector& emulsion,
                                            const RheometerConfig& config);

}  // namespace texrheo::rheology

#endif  // TEXRHEO_RHEOLOGY_RHEOMETER_H_
