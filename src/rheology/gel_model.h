#ifndef TEXRHEO_RHEOLOGY_GEL_MODEL_H_
#define TEXRHEO_RHEOLOGY_GEL_MODEL_H_

#include <array>

#include "math/linalg.h"
#include "recipe/ingredient.h"
#include "rheology/empirical_data.h"
#include "util/status.h"

namespace texrheo::rheology {

/// Constitutive model mapping (gel concentrations, emulsion concentrations)
/// to TPA attributes, self-calibrated against the embedded Table I at
/// construction:
///
///  * hardness of a pure gel follows a power law H_i(c) = a_i c^{b_i}
///    (classical gel-network scaling), fit per gel type in log-log space;
///  * cohesiveness decays exponentially with concentration,
///    C_i(c) = c0_i exp(-k_i c) (denser networks fracture rather than
///    recover), fit per gel type;
///  * adhesiveness rises exponentially once concentration passes the
///    syneresis onset, A_i(c) = s_i exp(r_i c) fit on rows with nonzero
///    adhesion; kanten is non-adhesive at all Table I settings;
///  * gel mixtures combine by concentration-weighted means for hardness /
///    cohesiveness plus a gelatin x agar adhesive synergy term calibrated
///    to Table I row 5 (gelatin 3% + agar 3% -> adhesiveness 12.6);
///  * emulsions act as the paper's "subordinate effects" ([19]): fillers
///    multiply hardness, foam-formers (cream / yolk / albumen) raise
///    cohesiveness, and both poles damp adhesiveness. Coefficients are
///    calibrated to Table II(b) (Bavarois, Milk jelly).
class GelPhysicsModel {
 public:
  /// Builds the model calibrated to TableI() / TableIIb(). Construction
  /// performs the regressions; failure indicates corrupt embedded data.
  static texrheo::StatusOr<GelPhysicsModel> Calibrate();

  /// The process-wide calibrated instance.
  static const GelPhysicsModel& Calibrated();

  /// Predicts TPA attributes for a composition (concentration ratios).
  TpaAttributes Predict(const math::Vector& gel,
                        const math::Vector& emulsion) const;

  /// Pure-gel attribute curves (exposed for tests and benches).
  double PureHardness(recipe::GelType type, double concentration) const;
  double PureCohesiveness(recipe::GelType type, double concentration) const;
  double PureAdhesiveness(recipe::GelType type, double concentration) const;

 private:
  GelPhysicsModel() = default;

  struct PerGel {
    // Hardness power law.
    double hardness_amplitude = 0.0;
    double hardness_exponent = 1.0;
    // Cohesiveness exponential decay.
    double cohesiveness_at_zero = 0.5;
    double cohesiveness_decay = 0.0;
    // Adhesiveness exponential rise; amplitude 0 => never adhesive.
    double adhesive_amplitude = 0.0;
    double adhesive_rate = 0.0;
    // Adhesion onset: below this concentration adhesion is clamped to ~0.
    double adhesive_onset = 0.0;
  };

  std::array<PerGel, recipe::kNumGelTypes> gels_;
  // Gelatin x agar adhesive synergy coefficient (Table I row 5).
  double gelatin_agar_synergy_ = 0.0;
  // Emulsion coefficients (Table II(b) calibration).
  double hardness_foam_coeff_ = 0.0;    // cream + yolk + albumen
  double hardness_dairy_coeff_ = 0.0;   // milk + yogurt
  double hardness_sugar_coeff_ = 0.0;
  double cohesiveness_foam_coeff_ = 0.0;
  double cohesiveness_dairy_coeff_ = 0.0;
  double adhesion_foam_damping_ = 0.0;
  double adhesion_dairy_damping_ = 0.0;
};

}  // namespace texrheo::rheology

#endif  // TEXRHEO_RHEOLOGY_GEL_MODEL_H_
