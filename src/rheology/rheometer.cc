#include "rheology/rheometer.h"

#include <algorithm>
#include <cmath>

namespace texrheo::rheology {
namespace {

// Phases of the two-bite probe programme.
enum class Phase { kDescend, kAscend, kPause };

}  // namespace

Rheometer::Rheometer(const RheometerConfig& config) : config_(config) {}

texrheo::StatusOr<Measurement> Rheometer::Measure(
    const MechanicalSample& sample) const {
  const RheometerConfig& cfg = config_;
  if (cfg.sample_height_mm <= 0.0 || cfg.probe_speed_mm_s <= 0.0 ||
      cfg.dt_s <= 0.0 || cfg.compression_fraction <= 0.0 ||
      cfg.compression_fraction >= 1.0) {
    return Status::InvalidArgument("rheometer: invalid probe programme");
  }
  if (sample.stiffness < 0.0 || sample.tackiness < 0.0 ||
      sample.yield_strain <= 0.0 || sample.adhesion_decay_mm <= 0.0) {
    return Status::InvalidArgument("rheometer: invalid sample parameters");
  }

  const double h = cfg.sample_height_mm;
  const double max_depth = cfg.compression_fraction * h;
  const double v = cfg.probe_speed_mm_s;
  const double dt = cfg.dt_s;

  Measurement m;
  bool fractured = false;
  double residual_strain = 0.0;  // Plastic set left by a fracture.

  double time = 0.0;
  for (int cycle = 1; cycle <= 2; ++cycle) {
    double stiffness = sample.stiffness;
    if (cycle == 2) stiffness *= sample.damage_retention;

    double max_strain_this_cycle = 0.0;
    // Descend from the retract position through the sample, then ascend
    // back out. Depth < 0 means the probe is above the surface.
    for (Phase phase : {Phase::kDescend, Phase::kAscend}) {
      double start = phase == Phase::kDescend ? -cfg.retract_mm : max_depth;
      double end = phase == Phase::kDescend ? max_depth : -cfg.retract_mm;
      double dir = phase == Phase::kDescend ? 1.0 : -1.0;
      double travel = std::fabs(end - start);
      int steps = static_cast<int>(std::ceil(travel / (v * dt)));
      for (int s = 0; s <= steps; ++s) {
        double depth =
            start + dir * std::min(travel, static_cast<double>(s) * v * dt);
        double force = 0.0;
        if (depth > 0.0) {
          double strain = depth / h;
          max_strain_this_cycle = std::max(max_strain_this_cycle, strain);
          double effective = strain - residual_strain;
          if (effective > 0.0) {
            if (cycle == 1 && strain >= sample.yield_strain) {
              // Fractured network: force plateaus below the pre-fracture
              // peak and creeps up slowly with further compression.
              fractured = true;
              force = stiffness * sample.yield_strain *
                          sample.post_yield_factor +
                      0.05 * stiffness * (strain - sample.yield_strain);
            } else {
              force = stiffness * effective;
              if (phase == Phase::kAscend) {
                // Unloading hysteresis: gels return less force on the way
                // up than they resisted on the way down.
                double frac = max_strain_this_cycle > 0.0
                                  ? effective / max_strain_this_cycle
                                  : 1.0;
                force *= std::max(0.0, frac);
              }
            }
          }
        } else if (phase == Phase::kAscend && sample.tackiness > 0.0) {
          // Probe above the surface but still bonded: adhesive tail
          // F(sep) = -tack * (sep/d) * exp(-sep/d), peaking near sep = d.
          double sep = -depth;
          double d = sample.adhesion_decay_mm;
          force = -sample.tackiness * (sep / d) * std::exp(-sep / d) *
                  std::exp(1.0);  // Normalize so the peak equals -tackiness.
        }

        m.curve.push_back(ForceSample{time, depth, force, cycle});
        if (cycle == 1) {
          m.peak_force_1 = std::max(m.peak_force_1, force);
          if (force > 0.0) m.area_1 += force * dt;
          if (force < 0.0) m.negative_area += -force * dt;
        } else {
          m.peak_force_2 = std::max(m.peak_force_2, force);
          if (force > 0.0) m.area_2 += force * dt;
        }
        time += dt;
      }
    }
    if (fractured) {
      residual_strain =
          0.5 * std::max(0.0, max_strain_this_cycle - sample.yield_strain);
    }
    // Dwell between bites (zero force, probe off the sample).
    if (cycle == 1) {
      int pause_steps = static_cast<int>(cfg.pause_s / dt);
      for (int s = 0; s < pause_steps; ++s) {
        m.curve.push_back(ForceSample{time, -cfg.retract_mm, 0.0, cycle});
        time += dt;
      }
    }
  }

  m.attributes.hardness = m.peak_force_1;
  m.attributes.cohesiveness = m.area_1 > 0.0 ? m.area_2 / m.area_1 : 0.0;
  m.attributes.adhesiveness = m.negative_area;
  return m;
}

MechanicalSample SampleFromAttributes(const TpaAttributes& target,
                                      const RheometerConfig& config) {
  MechanicalSample s;
  double strain_max = config.compression_fraction;

  // Brittleness from cohesiveness: weak-cohesion gels fracture within the
  // first bite; cohesive (elastic) gels survive the full stroke.
  double c = std::clamp(target.cohesiveness, 0.01, 0.95);
  s.yield_strain = strain_max * (0.6 + 0.8 * c);
  s.post_yield_factor = 0.25 + 0.5 * c;
  s.damage_retention = c;
  s.adhesion_decay_mm = 1.0;

  double peak_strain = std::min(strain_max, s.yield_strain);
  s.stiffness = peak_strain > 0.0 ? target.hardness / peak_strain : 0.0;
  s.tackiness = target.adhesiveness > 0.0 ? 1.0 : 0.0;

  if (target.hardness <= 0.0) {
    s.stiffness = 0.0;
    s.tackiness = 0.0;
    return s;
  }

  // Self-calibrate against the actual probe programme: stiffness and
  // tackiness scale linearly with their attributes; damage retention is
  // adjusted by fixed-point iteration.
  Rheometer probe(config);
  for (int iter = 0; iter < 3; ++iter) {
    auto measured_or = probe.Measure(s);
    if (!measured_or.ok()) break;
    const TpaAttributes& got = measured_or.value().attributes;
    if (got.hardness > 0.0) {
      s.stiffness *= target.hardness / got.hardness;
    }
    if (target.adhesiveness > 0.0 && got.adhesiveness > 0.0) {
      s.tackiness *= target.adhesiveness / got.adhesiveness;
    }
    if (got.cohesiveness > 0.0) {
      double adjust = target.cohesiveness / got.cohesiveness;
      s.damage_retention =
          std::clamp(s.damage_retention * adjust, 0.005, 1.5);
    }
  }
  return s;
}

texrheo::StatusOr<Measurement> SimulateDish(const GelPhysicsModel& model,
                                            const math::Vector& gel,
                                            const math::Vector& emulsion,
                                            const RheometerConfig& config) {
  TpaAttributes predicted = model.Predict(gel, emulsion);
  MechanicalSample sample = SampleFromAttributes(predicted, config);
  Rheometer probe(config);
  return probe.Measure(sample);
}

}  // namespace texrheo::rheology
