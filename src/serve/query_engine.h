#ifndef TEXRHEO_SERVE_QUERY_ENGINE_H_
#define TEXRHEO_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/linkage.h"
#include "embed/embedding_index.h"
#include "math/linalg.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recipe/dataset.h"
#include "rheology/empirical_data.h"
#include "serve/batcher.h"
#include "serve/snapshot.h"
#include "util/histogram.h"
#include "util/lru_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace texrheo::serve {

/// Tuning of a QueryEngine instance. Defaults are sized for the toy serving
/// path; a production deployment raises cache_capacity / max_queue.
struct QueryEngineConfig {
  /// Gibbs sweeps per fold-in (eq.-5 scoring of an unseen recipe).
  int fold_in_sweeps = 25;
  /// Symmetric Dirichlet on the query document's theta. The model file does
  /// not persist training alpha, so serving declares its own (default
  /// matches JointTopicModelConfig::alpha).
  double alpha = 0.3;
  /// Seed of the per-query RNG streams: query N draws from
  /// Rng::ForStream(seed, N), so a single-client session is reproducible.
  uint64_t seed = 1234;
  /// ThreadPool parallelism used *inside* a fold-in batch. 0 = hardware
  /// concurrency, 1 = run batches on the dispatcher thread alone.
  int num_threads = 1;

  /// PredictTexture result cache (canonicalized keys). 0 disables.
  size_t cache_capacity = 4096;
  /// Quantization step of the canonical key, in concentration-ratio units.
  double cache_quantum = 1e-4;

  /// Admission control + micro-batching (see FoldInBatcher).
  size_t max_queue = 256;
  size_t batch_max_size = 16;
  int batch_linger_micros = 200;

  /// Result sizing.
  int top_terms = 8;
  size_t max_similar = 20;

  /// SimilarRecipes result cache (keyed by canonical query key + mode +
  /// top_n, flushed on reload). 0 disables.
  size_t similar_cache_capacity = 1024;

  /// Weighted reciprocal-rank fusion of the three SIMILAR backends
  /// (mode=fused): score(d) = sum_m w_m / (rrf_k + rank_m(d)), ranks
  /// 1-based within the query's topic. The KL backend carries the paper's
  /// Section V.B signal and dominates; embeddings and term overlap are
  /// corrective perspectives. Defaults tuned on bench_similarity's
  /// template-precision sweep (ci.sh --bench gates fused >= every single
  /// backend at these values).
  double fusion_kl_weight = 1.0;
  double fusion_embed_weight = 0.1;
  double fusion_lexical_weight = 0.1;
  double fusion_rrf_k = 60.0;

  /// Concentration -> feature transform; must match training.
  recipe::FeatureConfig feature;
  /// Default Table-I linkage scoring for NearestRheology.
  core::LinkageOptions linkage;

  /// Registry every serve.* metric lives in — the single source of truth
  /// STATSZ and METRICSZ render from. Shared so the protocol server and
  /// the periodic metrics writer see the same counters. Null => the engine
  /// creates (and owns) its own.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Optional tracer (not owned; must outlive the engine). When set, every
  /// query produces an admission span, and each dispatched batch produces
  /// a batch_dispatch span with per-job fold_in children parented to the
  /// requests' admission spans. Never consulted on the RNG path.
  obs::Tracer* tracer = nullptr;
};

/// One texture query: the observables of an *unseen* recipe. Concentration
/// vectors are raw ratios (same space as recipe::Concentrations); either
/// may be empty, meaning all-zero. texture_terms are optional surface
/// forms; words outside the model vocabulary are ignored (counted in
/// stats, not errors — recipe text is noisy).
struct TextureQuery {
  math::Vector gel_concentration;
  math::Vector emulsion_concentration;
  std::vector<std::string> texture_terms;
};

/// Builds a TextureQuery from free-form (ingredient name, concentration
/// ratio) pairs, resolving names through the embedded ingredient database.
/// Order-independent: {gelatin: .02, milk: .1} == {milk: .1, gelatin: .02}.
/// Non-gel, non-emulsion ingredients (water, fruit...) are ignored — they
/// do not enter the model's concentration space. Unknown names are errors.
/// Duplicate names accumulate.
StatusOr<TextureQuery> QueryFromIngredients(
    const std::vector<std::pair<std::string, double>>& ingredients,
    std::vector<std::string> texture_terms = {});

/// PredictTexture answer: where the recipe lands in topic space and what
/// texture its topic's terms describe.
struct TexturePrediction {
  std::vector<double> theta;  ///< Eq.-5 fold-in estimate.
  int topic = 0;              ///< argmax theta.
  /// Theta-weighted per-pole term mass across topics (the per-category
  /// texture-term distribution of the query).
  CategoryMasses categories;
  /// Theta-weighted phi, top terms descending: (surface, probability).
  std::vector<std::pair<std::string, double>> top_terms;
  bool from_cache = false;
  uint32_t model_fingerprint = 0;
};

/// One Table-I rheometer setting ranked against a topic.
struct RheologyMatch {
  int setting_id = 0;
  std::string source;
  double divergence = 0.0;
  rheology::TpaAttributes attributes;
};

/// Ranking backend of SimilarRecipes. All modes rank within the query's
/// topic (the paper's Section V.B scoping); they differ in the distance:
///  - kKl: emulsion-concentration KL (the paper's ranking, the default);
///  - kEmbed: cosine distance between mean ingredient-embedding vectors
///    (requires a snapshot with embeddings and in-vocabulary terms=);
///  - kLexical: 1 - Jaccard overlap of the term bags;
///  - kFused: weighted reciprocal-rank fusion of all three (see
///    QueryEngineConfig fusion_* weights; requires embeddings).
enum class SimilarityMode : uint8_t {
  kKl = 0,
  kEmbed = 1,
  kLexical = 2,
  kFused = 3,
};
inline constexpr size_t kNumSimilarityModes = 4;

/// Wire/display name: "kl", "embed", "lexical", "fused".
const char* SimilarityModeName(SimilarityMode mode);

/// Inverse of SimilarityModeName; InvalidArgument on anything else.
StatusOr<SimilarityMode> ParseSimilarityMode(std::string_view name);

struct SimilarRecipe {
  size_t recipe_index = 0;  ///< Document index in the indexed corpus.
  /// Distance under the query's mode, ascending: emulsion KL (kl),
  /// 1 - cosine (embed), 1 - Jaccard (lexical), or the negated RRF score
  /// (fused) so "smaller is nearer" holds across all four.
  double divergence = 0.0;
};

struct SimilarRecipesResult {
  int topic = 0;
  SimilarityMode mode = SimilarityMode::kKl;
  bool from_cache = false;
  std::vector<SimilarRecipe> recipes;  ///< Nearest first.
};

/// TopicCard answer: a one-topic summary (phi top terms + Gaussian means
/// mapped back to concentration space).
struct TopicCardResult {
  int topic = 0;
  int recipe_count = 0;
  std::vector<std::pair<std::string, double>> top_terms;
  CategoryMasses categories;
  math::Vector gel_mean_concentration;
  math::Vector emulsion_mean_concentration;
};

/// Point-in-time view of the engine's streamed-delta state (INGESTZ).
struct DeltaStats {
  uint64_t folded = 0;        ///< Lifetime recipes folded via FoldInDelta.
  uint64_t delta_docs = 0;    ///< Currently resident (cleared on reload).
  uint64_t pending_terms = 0;
  uint64_t stale_vocab_queries = 0;
  uint64_t delta_generation = 0;
};

/// Point-in-time engine statistics.
struct QueryEngineStats {
  LatencyHistogram::Snapshot predict;
  LatencyHistogram::Snapshot nearest;
  LatencyHistogram::Snapshot similar;
  LatencyHistogram::Snapshot topic_card;
  LruCacheStats cache;
  FoldInBatcher::Stats batcher;
  uint64_t reloads = 0;
  uint64_t errors = 0;
  uint64_t unknown_terms = 0;
  uint32_t model_fingerprint = 0;
};

/// Concurrent serving layer over one trained model.
///
/// All four query methods are safe to call from any number of threads.
/// The model lives in an immutable ServingSnapshot behind a
/// shared_ptr swap: readers take a reference under a short lock, then work
/// entirely on their private reference, so Reload never blocks or fails an
/// in-flight query — it only changes what *subsequent* queries see.
/// PredictTexture misses flow through the FoldInBatcher (bounded queue,
/// micro-batching, shed-with-Unavailable under overload) and land in a
/// canonicalized LRU result cache.
class QueryEngine {
 public:
  /// `corpus` (optional, may be null) enables SimilarRecipes: its documents
  /// are indexed by topic at construction and on every reload. The corpus
  /// must outlive the engine.
  static StatusOr<std::unique_ptr<QueryEngine>> Create(
      const QueryEngineConfig& config,
      std::shared_ptr<const ServingSnapshot> snapshot,
      const recipe::Dataset* corpus);

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Folds the query into the model and reports its per-category
  /// texture-term distribution (paper eq. 5). Cached by canonical key.
  /// `deadline` is the request's absolute budget: a query that has already
  /// blown it is shed with DeadlineExceeded at batcher admission (or while
  /// queued) instead of occupying a batch slot. Cache hits always succeed —
  /// answering from memory is cheaper than shedding.
  /// `trace_parent` (0 = root) parents the query's admission span, letting
  /// a protocol front-end stitch request -> admission across layers.
  StatusOr<TexturePrediction> PredictTexture(const TextureQuery& query,
                                             Deadline deadline = kNoDeadline,
                                             uint64_t trace_parent = 0);

  /// Ranks the paper's Table-I rheometer settings by divergence to
  /// `topic`'s gel Gaussian (Section III.C.4 linkage), nearest first.
  /// `options` overrides the config default when non-null.
  StatusOr<std::vector<RheologyMatch>> NearestRheology(
      int topic, const core::LinkageOptions* options = nullptr);

  /// Places the query in its topic, then ranks that topic's indexed
  /// recipes under `mode` (see SimilarityMode), nearest first. top_n == 0
  /// uses config.max_similar. `deadline` guards the embedded fold-in
  /// exactly as in PredictTexture. Results are cached per (canonical
  /// query, mode, top_n) — the mode is part of the key, so a kl answer
  /// can never be served for a fused query.
  StatusOr<SimilarRecipesResult> SimilarRecipes(
      const TextureQuery& query, size_t top_n = 0,
      Deadline deadline = kNoDeadline, uint64_t trace_parent = 0,
      SimilarityMode mode = SimilarityMode::kKl);

  /// Summarizes one topic (phi top terms + Gaussian summaries).
  StatusOr<TopicCardResult> TopicCard(int topic);

  /// Folds an accepted streamed recipe into the live serving state via the
  /// eq.-5 path (through the batcher, so it is queryable within one batch
  /// linger) and returns the topic it landed in. Delta documents join
  /// SimilarRecipes rankings with recipe_index >= the indexed corpus size;
  /// the whole delta is dropped on Reload (a refreshed model has absorbed
  /// the recipes; the ingest layer re-folds any it has not). Not counted
  /// as a query — the ingest layer keeps its own pipeline counters.
  StatusOr<int> FoldInDelta(const TextureQuery& query,
                            uint64_t ingest_sequence,
                            Deadline deadline = kNoDeadline);

  /// Registers surface terms the ingest layer has durably accepted but the
  /// served vocabulary does not know yet. Queries naming a pending term
  /// get a clean FailedPrecondition (counted in serve.queries.stale_vocab)
  /// instead of a silently degraded answer; terms resolve automatically at
  /// the reload that brings them into the vocabulary. Terms already in the
  /// served vocabulary are ignored.
  void NotePendingTerms(const std::vector<std::string>& terms);

  DeltaStats GetDeltaStats() const;

  /// Renders the engine's INGESTZ section (delta + pending-term state).
  std::string RenderIngestz() const;

  /// Atomically swaps in a new model snapshot: validates it, rebuilds the
  /// corpus topic index against it, flushes the (now stale) result cache,
  /// and publishes. In-flight queries complete against the snapshot they
  /// started with; zero queries fail due to a reload.
  Status Reload(std::shared_ptr<const ServingSnapshot> snapshot);

  /// Reload() from a model file on disk: `.idx`/`.dat` paths mmap the
  /// packed binary pair (reload becomes an mmap + pointer swap), anything
  /// else parses the v2 text format.
  Status ReloadFromFile(const std::string& path);

  /// Snapshot currently being served.
  std::shared_ptr<const ServingSnapshot> snapshot() const;

  QueryEngineStats GetStats() const;

  /// The registry backing this engine (never null). The protocol server
  /// registers its serve.server.* counters here so one snapshot covers the
  /// whole serving stack.
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }
  obs::Tracer* tracer() const { return config_.tracer; }

  /// Refreshes derived gauges (cache occupancy and friends) and takes one
  /// consistent snapshot of the registry. Every STATSZ/METRICSZ render
  /// starts here, so the two pages can never disagree with each other.
  obs::MetricsSnapshot TakeMetricsSnapshot() const;

  /// Renders the engine sections of the /statsz page from an
  /// already-taken snapshot (so server sections can share the same one).
  std::string RenderStatsz(const obs::MetricsSnapshot& snap) const;

  /// Human-readable multi-line counters dump (the /statsz page).
  std::string Statsz() const;

  /// METRICSZ payload: the registry snapshot JSON with a "model" object
  /// (fingerprint/topics/vocab/source) spliced into the root.
  std::string MetricszJson() const;

  const QueryEngineConfig& config() const { return config_; }

 private:
  /// Immutable serving state bundle; replaced wholesale on reload so the
  /// snapshot and the corpus index built against it can never be observed
  /// out of sync.
  struct ServingState {
    std::shared_ptr<const ServingSnapshot> snapshot;
    /// topic_docs[k]: corpus document indices whose gel features place
    /// them in topic k. Empty when no corpus is attached.
    std::vector<std::vector<size_t>> topic_docs;
    /// Per corpus document: its term ids remapped into *this snapshot's*
    /// vocabulary (sorted, deduplicated; out-of-vocabulary terms dropped).
    /// The lexical and embed backends read these. Empty without a corpus.
    std::vector<std::vector<int32_t>> doc_terms;
    /// Cosine scan index over doc_terms; null when the snapshot carries no
    /// embeddings or no corpus is attached. Views into `snapshot`, which
    /// this bundle co-owns.
    std::unique_ptr<embed::EmbeddingIndex> embedding_index;
  };

  /// One streamed recipe folded in ahead of the next refresh. Lives beside
  /// the immutable ServingState (append-only under delta_mu_) so the hot
  /// reload path stays a pure pointer swap.
  struct DeltaDoc {
    uint64_t ingest_sequence = 0;
    int topic = 0;
    math::Vector emulsion_concentration;
    std::vector<int32_t> term_ids;  ///< Snapshot vocab ids, sorted-unique.
  };

  QueryEngine(const QueryEngineConfig& config, const recipe::Dataset* corpus);

  std::shared_ptr<const ServingState> state() const;
  static std::shared_ptr<const ServingState> BuildState(
      std::shared_ptr<const ServingSnapshot> snapshot,
      const recipe::Dataset* corpus);

  /// Resolves surface terms to vocab ids against `snapshot`; unknown
  /// surfaces are dropped and counted.
  std::vector<int32_t> ResolveTerms(const ServingSnapshot& snapshot,
                                    const std::vector<std::string>& terms);
  /// FailedPrecondition when a query term is out of the served vocabulary
  /// but known to be pending in the ingest pipeline (satellite contract:
  /// fail clean, never silently drop a term the WAL already holds).
  Status CheckTermFreshness(const ServingSnapshot& snapshot,
                            const std::vector<std::string>& terms);
  /// Delta documents currently assigned to `topic` with their resident
  /// indices (recipe_index = corpus size + resident index).
  std::vector<std::pair<size_t, DeltaDoc>> DeltaOfTopic(int topic) const;
  Status ValidateQuery(const TextureQuery& query) const;
  /// Fills the derived fields of a prediction from theta.
  TexturePrediction BuildPrediction(const ServingSnapshot& snapshot,
                                    std::vector<double> theta) const;
  void RunBatch(std::vector<FoldInJob>& batch);
  void RefreshDerivedGauges() const;

  const QueryEngineConfig config_;
  const recipe::Dataset* corpus_;  ///< Not owned; may be null.

  mutable std::mutex state_mu_;
  std::shared_ptr<const ServingState> state_;  // Guarded by state_mu_.

  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<FoldInBatcher> batcher_;
  LruCache<std::string, TexturePrediction> cache_;
  /// SIMILAR results keyed by canonical query key + mode + top_n; flushed
  /// together with cache_ on reload.
  LruCache<std::string, SimilarRecipesResult> similar_cache_;

  /// All counters/gauges/latency histograms live in the registry; the
  /// members below are pre-registered handles (lock-free on the hot path).
  /// serve.queries.accepted is registered before the batcher's pipeline
  /// counters and serve.queries.completed after them, matching the order a
  /// request touches them, so registry snapshots are monotone-consistent:
  /// accepted >= batcher.submitted >= batcher.jobs_processed and
  /// accepted >= completed in every snapshot.
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* queries_accepted_ = nullptr;
  obs::Counter* queries_completed_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* unknown_terms_ = nullptr;
  obs::Counter* stale_vocab_ = nullptr;
  obs::Counter* delta_folded_ = nullptr;
  obs::Counter* reloads_ = nullptr;
  obs::Gauge* delta_docs_gauge_ = nullptr;
  obs::Gauge* pending_terms_gauge_ = nullptr;
  /// serve.similar.mode.{kl,embed,lexical,fused}, indexed by
  /// SimilarityMode. Registered right after accepted, so snapshots obey
  /// accepted >= sum(mode counters).
  obs::Counter* similar_mode_[kNumSimilarityModes] = {};
  obs::Counter* similar_cache_hits_ = nullptr;
  obs::Counter* similar_cache_misses_ = nullptr;
  obs::Gauge* cache_size_ = nullptr;
  obs::Gauge* cache_capacity_ = nullptr;
  obs::Gauge* cache_evictions_ = nullptr;
  obs::Gauge* cache_insertions_ = nullptr;
  LatencyHistogram* predict_latency_ = nullptr;
  LatencyHistogram* nearest_latency_ = nullptr;
  LatencyHistogram* similar_latency_ = nullptr;
  LatencyHistogram* topic_card_latency_ = nullptr;

  std::atomic<uint64_t> sequence_{0};

  /// Streamed-delta state (see DeltaDoc). delta_generation_ versions the
  /// SIMILAR cache key so a fold-in or reload invalidates cached rankings
  /// without flushing unrelated entries.
  mutable std::mutex delta_mu_;
  std::vector<DeltaDoc> delta_docs_;                 // Guarded by delta_mu_.
  std::unordered_set<std::string> pending_terms_;    // Guarded by delta_mu_.
  std::atomic<uint64_t> delta_generation_{0};
};

}  // namespace texrheo::serve

#endif  // TEXRHEO_SERVE_QUERY_ENGINE_H_
