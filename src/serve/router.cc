#include "serve/router.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "serve/cache.h"
#include "serve/protocol.h"
#include "util/json.h"

namespace texrheo::serve {

namespace {

using std::chrono::steady_clock;

int64_t MicrosSince(steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             steady_clock::now() - t0)
      .count();
}

Deadline MinDeadline(Deadline a, Deadline b) { return a < b ? a : b; }

std::string HexFingerprint(uint32_t fp) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", fp);
  return buf;
}

/// Fingerprint out of a replica's METRICSZ JSON ({"model":
/// {"fingerprint": "deadbeef", ...}, ...}); 0 when absent/unparseable
/// (a probe against a non-engine peer still proves liveness).
uint32_t FingerprintFromMetricsz(const std::string& json) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(json);
  if (!parsed.ok()) return 0;
  const JsonValue* model = parsed.value().Find("model");
  if (model == nullptr) return 0;
  const JsonValue* fp = model->Find("fingerprint");
  if (fp == nullptr || !fp->is_string()) return 0;
  return static_cast<uint32_t>(
      std::strtoul(fp->AsString().c_str(), nullptr, 16));
}

/// Fingerprint out of a replica's "OK reloaded fingerprint=deadbeef" line.
uint32_t FingerprintFromReloadReply(const std::string& reply) {
  const std::string marker = "fingerprint=";
  size_t pos = reply.find(marker);
  if (pos == std::string::npos) return 0;
  return static_cast<uint32_t>(
      std::strtoul(reply.c_str() + pos + marker.size(), nullptr, 16));
}

}  // namespace

/// Per-replica runtime state. The vector of these is immutable after
/// Create; every field is either atomic, internally locked, or a
/// registry-owned handle, so replicas are shared freely across connection
/// threads, the probe thread, and ROLLING_RELOAD.
struct ReplicaRouter::Replica {
  Replica(int id_in, ReplicaAddress address_in,
          const CircuitBreaker::Options& breaker_options)
      : id(id_in), address(std::move(address_in)), breaker(breaker_options) {}

  const int id;
  const ReplicaAddress address;
  CircuitBreaker breaker;
  /// ROLLING_RELOAD: no new legs while set. Written under inflight_mu_
  /// (atomic so views/probes can read it without the lock).
  std::atomic<bool> draining{false};
  /// Data-path legs currently running against this replica. Raised under
  /// inflight_mu_ (in NextEligible), lowered under it (leg completion).
  std::atomic<uint64_t> inflight{0};
  std::atomic<uint32_t> fingerprint{0};  ///< Last observed; 0 = unknown.

  std::mutex pool_mu;
  std::vector<std::unique_ptr<LineClient>> pool;  // Idle; guarded by pool_mu.

  obs::Gauge* healthy_gauge = nullptr;      ///< 1 = breaker closed.
  obs::Gauge* fingerprint_gauge = nullptr;  ///< Mirrors `fingerprint`.
};

/// One attempt against one replica. Owned by ForwardLine's stack; when the
/// leg runs on a thread, the coordinator joins it before the leg dies.
/// `mu`/`cv` are shared across the (up to two) legs of one request.
struct ReplicaRouter::Leg {
  Replica* replica = nullptr;
  const std::string* line = nullptr;
  bool trial = false;  ///< Admission was the breaker's half-open trial.

  std::mutex* mu = nullptr;
  std::condition_variable* cv = nullptr;
  // --- Guarded by *mu ---------------------------------------------------
  std::unique_ptr<LineClient> conn;  ///< Published for cross-thread Abort.
  StatusOr<std::string> reply{Status::Unavailable("leg not run")};
  bool done = false;
  bool aborted = false;  ///< Coordinator gave up on this leg.
  // ----------------------------------------------------------------------
  std::thread thread;
};

StatusOr<std::unique_ptr<ReplicaRouter>> ReplicaRouter::Create(
    const RouterOptions& options) {
  if (options.replicas.empty()) {
    return Status::InvalidArgument("router needs at least one replica");
  }
  if (options.vnodes_per_replica < 1) {
    return Status::InvalidArgument("vnodes_per_replica must be >= 1");
  }
  if (options.max_tries < 1) {
    return Status::InvalidArgument("max_tries must be >= 1");
  }
  if (options.cache_quantum <= 0.0) {
    return Status::InvalidArgument("cache_quantum must be positive");
  }
  return std::unique_ptr<ReplicaRouter>(new ReplicaRouter(options));
}

ReplicaRouter::ReplicaRouter(const RouterOptions& options)
    : options_(options),
      ops_(options.socket_ops != nullptr ? options.socket_ops
                                         : &SocketOps::Real()),
      ring_(options.vnodes_per_replica),
      metrics_(options.metrics != nullptr
                   ? options.metrics
                   : std::make_shared<obs::MetricsRegistry>()) {
  // requests is registered first and answered last; each request bumps
  // requests on entry and answered on exit, so no registry snapshot ever
  // shows answered > requests (see MetricsRegistry::TakeSnapshot).
  requests_ = metrics_->RegisterCounter("router.requests");
  retries_ = metrics_->RegisterCounter("router.retries");
  hedges_ = metrics_->RegisterCounter("router.hedges");
  hedge_wins_ = metrics_->RegisterCounter("router.hedge_wins");
  breaker_skips_ = metrics_->RegisterCounter("router.breaker.skips");
  breaker_trips_ = metrics_->RegisterCounter("router.breaker.trips");
  breaker_half_open_ =
      metrics_->RegisterCounter("router.breaker.half_open_trials");
  breaker_recoveries_ = metrics_->RegisterCounter("router.breaker.recoveries");
  probes_ = metrics_->RegisterCounter("router.probes");
  probe_failures_ = metrics_->RegisterCounter("router.probe_failures");
  rolling_reloads_ = metrics_->RegisterCounter("router.rolling_reloads");
  rolling_reload_failures_ =
      metrics_->RegisterCounter("router.rolling_reload_failures");
  unavailable_ = metrics_->RegisterCounter("router.unavailable");
  answered_ = metrics_->RegisterCounter("router.answered");
  try_latency_ = metrics_->RegisterHistogram("router.try_us");
  request_latency_ = metrics_->RegisterHistogram("router.request_us");

  for (size_t i = 0; i < options_.replicas.size(); ++i) {
    auto replica = std::make_unique<Replica>(
        static_cast<int>(i), options_.replicas[i], options_.breaker);
    // All replicas feed one router.breaker.* family: the fleet-level
    // trip/recovery story is what METRICSZ consumers alert on; per-replica
    // state is in the healthy gauges and GetReplicaViews.
    replica->breaker.SetListeners(CircuitBreaker::TransitionListeners{
        [c = breaker_trips_] { c->Increment(); },
        [c = breaker_half_open_] { c->Increment(); },
        [c = breaker_recoveries_] { c->Increment(); }});
    const std::string prefix = "router.replica." + std::to_string(i);
    replica->healthy_gauge = metrics_->RegisterGauge(prefix + ".healthy");
    replica->healthy_gauge->Set(1.0);
    replica->fingerprint_gauge =
        metrics_->RegisterGauge(prefix + ".fingerprint");
    ring_.AddNode(static_cast<int>(i),
                  options_.replicas[i].host + ":" +
                      std::to_string(options_.replicas[i].port));
    replicas_.push_back(std::move(replica));
  }
}

ReplicaRouter::~ReplicaRouter() { Stop(); }

CircuitBreaker::TimePoint ReplicaRouter::Now() const {
  return options_.now_fn ? options_.now_fn() : steady_clock::now();
}

Status ReplicaRouter::Start() {
  // Synchronous first pass: fingerprints and dead-replica ejection are in
  // place before the first query, not one probe interval later.
  ProbeAllOnce();
  if (options_.probe_interval_millis > 0) {
    probe_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(stop_mu_);
      while (!stopping_) {
        if (stop_cv_.wait_for(
                lock,
                std::chrono::milliseconds(options_.probe_interval_millis),
                [this] { return stopping_; })) {
          break;
        }
        lock.unlock();
        ProbeAllOnce();
        lock.lock();
      }
    });
  }
  return Status::OK();
}

void ReplicaRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  for (auto& replica : replicas_) {
    std::lock_guard<std::mutex> lock(replica->pool_mu);
    replica->pool.clear();
  }
}

// --- Connection pool -------------------------------------------------------

StatusOr<std::unique_ptr<LineClient>> ReplicaRouter::CheckoutConnection(
    Replica& replica) {
  {
    std::lock_guard<std::mutex> lock(replica.pool_mu);
    if (!replica.pool.empty()) {
      std::unique_ptr<LineClient> conn = std::move(replica.pool.back());
      replica.pool.pop_back();
      return conn;
    }
  }
  LineClientOptions copts;
  copts.io_timeout_millis = options_.replica_io_timeout_millis;
  copts.socket_ops = ops_;
  return LineClient::Connect(replica.address.host, replica.address.port,
                             copts);
}

void ReplicaRouter::ReturnConnection(Replica& replica,
                                     std::unique_ptr<LineClient> conn) {
  if (conn == nullptr) return;
  std::lock_guard<std::mutex> lock(replica.pool_mu);
  if (replica.pool.size() < options_.max_pool_per_replica) {
    replica.pool.push_back(std::move(conn));
  }
  // else: drop -> closed. Only connections whose last round trip fully
  // succeeded are ever returned, so the pool never holds a stream with
  // leftover bytes or a half-finished exchange.
}

// --- Candidate selection ---------------------------------------------------

ReplicaRouter::Replica* ReplicaRouter::NextEligible(
    const std::vector<int>& candidates, size_t* cursor, bool* was_trial) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  while (*cursor < candidates.size()) {
    Replica& replica = *replicas_[candidates[*cursor]];
    ++*cursor;
    if (replica.draining.load(std::memory_order_acquire)) continue;
    if (!replica.breaker.Allow(Now())) {
      breaker_skips_->Increment();
      continue;
    }
    // An admission that left the breaker half-open claimed its single
    // trial slot; that leg is obligated to report an outcome (see RunLeg).
    *was_trial =
        replica.breaker.state() == CircuitBreaker::State::kHalfOpen;
    replica.inflight.fetch_add(1, std::memory_order_acq_rel);
    return &replica;
  }
  return nullptr;
}

// --- One leg ---------------------------------------------------------------

void ReplicaRouter::RunLeg(Leg& leg, Deadline try_deadline) {
  Replica& replica = *leg.replica;
  const auto t0 = steady_clock::now();
  StatusOr<std::string> reply = Status::Unavailable("leg did not run");
  StatusOr<std::unique_ptr<LineClient>> conn_or = CheckoutConnection(replica);
  if (!conn_or.ok()) {
    reply = conn_or.status();
  } else {
    LineClient* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(*leg.mu);
      leg.conn = std::move(conn_or).value();
      conn = leg.conn.get();
      // Lost the race with an abort that fired before the connection was
      // published: apply it now so the round trip fails promptly.
      if (leg.aborted) conn->Abort();
    }
    // leg.conn is stable until the coordinator joins this thread, so the
    // raw pointer is safe to use outside the lock (Abort is the documented
    // cross-thread cancellation path).
    reply = conn->RoundTrip(*leg.line, try_deadline);
  }
  try_latency_->Record(MicrosSince(t0));

  const bool ok = reply.ok();
  bool aborted;
  {
    std::lock_guard<std::mutex> lock(*leg.mu);
    aborted = leg.aborted;
    leg.reply = std::move(reply);
    leg.done = true;
  }
  // Breaker bookkeeping. An aborted leg's transport error is the router's
  // own doing (hedge loser cancelled), so it must not count against the
  // replica — unless this leg held the breaker's half-open trial, which
  // has to conclude one way or the other or the breaker would reject
  // everything forever. Concluding it as a failure is the conservative
  // choice: the replica stays ejected until the next probe re-trials it.
  if (ok) {
    replica.breaker.RecordSuccess();
  } else if (!aborted || leg.trial) {
    replica.breaker.RecordFailure(Now());
  }
  replica.healthy_gauge->Set(
      replica.breaker.state() == CircuitBreaker::State::kClosed ? 1.0 : 0.0);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    replica.inflight.fetch_sub(1, std::memory_order_acq_rel);
  }
  inflight_cv_.notify_all();
  leg.cv->notify_all();
}

// --- Forward path ----------------------------------------------------------

int ReplicaRouter::HedgeDelayMillis() const {
  if (options_.hedge_delay_millis == 0) return 0;
  if (options_.hedge_delay_millis > 0) return options_.hedge_delay_millis;
  // Auto mode: hedge above the observed tail. Until there is enough signal
  // the delay falls back to a conservative constant so cold starts do not
  // hedge every request.
  LatencyHistogram::Snapshot snap = try_latency_->TakeSnapshot();
  int64_t delay_ms = 10;
  if (snap.count >= 20) {
    delay_ms = static_cast<int64_t>(snap.QuantileUpperBound(0.99) / 1000);
  }
  return static_cast<int>(
      std::max<int64_t>(options_.min_hedge_delay_millis, delay_ms));
}

StatusOr<std::string> ReplicaRouter::ForwardLine(const std::string& line,
                                                 const std::string& key,
                                                 Deadline deadline) {
  requests_->Increment();
  const auto t0 = steady_clock::now();
  obs::TraceSpan span;
  if (options_.tracer != nullptr) {
    span = options_.tracer->StartSpan("router.forward");
  }

  const std::vector<int> candidates = ring_.NodesFor(key, replicas_.size());
  size_t cursor = 0;
  int tries = 0;
  const int hedge_delay = HedgeDelayMillis();
  Status last_error = Status::Unavailable("no live replica for key");

  while (tries < options_.max_tries) {
    if (DeadlineExpired(deadline)) {
      last_error = Status::DeadlineExceeded("request budget exhausted after " +
                                            std::to_string(tries) + " tries");
      break;
    }
    std::mutex mu;
    std::condition_variable cv;
    Leg legs[2];
    for (Leg& leg : legs) {
      leg.line = &line;
      leg.mu = &mu;
      leg.cv = &cv;
    }
    legs[0].replica = NextEligible(candidates, &cursor, &legs[0].trial);
    if (legs[0].replica == nullptr) break;
    ++tries;
    if (tries > 1) retries_->Increment();
    const Deadline try_deadline = MinDeadline(
        deadline, DeadlineAfterMillis(options_.replica_io_timeout_millis));

    bool hedged = false;
    if (hedge_delay <= 0 || tries >= options_.max_tries) {
      // No hedge possible: run the leg inline, no thread.
      RunLeg(legs[0], try_deadline);
    } else {
      legs[0].thread =
          std::thread([this, &legs, try_deadline] { RunLeg(legs[0], try_deadline); });
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait_for(lock, std::chrono::milliseconds(hedge_delay),
                    [&] { return legs[0].done; });
      }
      bool primary_done;
      {
        std::lock_guard<std::mutex> lock(mu);
        primary_done = legs[0].done;
      }
      if (!primary_done) {
        // Primary is slow: race a second leg on the next live replica.
        legs[1].replica = NextEligible(candidates, &cursor, &legs[1].trial);
        if (legs[1].replica != nullptr) {
          ++tries;
          hedges_->Increment();
          hedged = true;
          legs[1].thread = std::thread(
              [this, &legs, try_deadline] { RunLeg(legs[1], try_deadline); });
        }
      }
      int winner = -1;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
          if (legs[0].done && legs[0].reply.ok()) return true;
          if (hedged && legs[1].done && legs[1].reply.ok()) return true;
          return legs[0].done && (!hedged || legs[1].done);
        });
        if (legs[0].done && legs[0].reply.ok()) {
          winner = 0;
        } else if (hedged && legs[1].done && legs[1].reply.ok()) {
          winner = 1;
        }
        // Cancel the leg that lost (or became moot): Abort unblocks its
        // thread promptly instead of letting it run out its I/O budget.
        for (int i = 0; i < 2; ++i) {
          if (i == winner) continue;
          if (i == 1 && !hedged) continue;
          if (!legs[i].done) {
            legs[i].aborted = true;
            if (legs[i].conn != nullptr) legs[i].conn->Abort();
          }
        }
      }
      legs[0].thread.join();
      if (hedged) legs[1].thread.join();
      if (winner == 1) hedge_wins_->Increment();
      // From here both legs are finished and single-threaded again.
      if (winner >= 0) {
        ReturnConnection(*legs[winner].replica,
                         std::move(legs[winner].conn));
        answered_->Increment();
        request_latency_->Record(MicrosSince(t0));
        return std::move(legs[winner].reply);
      }
      last_error = legs[0].reply.status();
      continue;
    }

    // Inline (unhedged) leg outcome.
    if (legs[0].reply.ok()) {
      ReturnConnection(*legs[0].replica, std::move(legs[0].conn));
      answered_->Increment();
      request_latency_->Record(MicrosSince(t0));
      return std::move(legs[0].reply);
    }
    last_error = legs[0].reply.status();
  }

  unavailable_->Increment();
  request_latency_->Record(MicrosSince(t0));
  if (last_error.code() == StatusCode::kDeadlineExceeded) return last_error;
  return Status::Unavailable("no replica answered (" +
                             std::to_string(tries) + " tries): " +
                             last_error.ToString());
}

// --- Routing keys ----------------------------------------------------------

StatusOr<std::string> ReplicaRouter::RoutingKeyFor(
    const std::vector<std::string>& tokens) const {
  const std::string& cmd = tokens[0];
  if (cmd == "PREDICT" || cmd == "SIMILAR") {
    // Text-level twin of the engine's canonical cache key: quantized
    // concentrations + the sorted term bag + (for SIMILAR) the ranking
    // mode. The router has no vocabulary (term ids are a model artifact),
    // so terms enter as sorted surface strings — same recipe text, same
    // key, same replica, hot cache. Folding the mode in mirrors the
    // replica's own cache keying, so each mode's working set pins to one
    // replica instead of thrashing a shared one.
    size_t top_n = 0;
    SimilarityMode mode = SimilarityMode::kKl;
    const bool is_similar = cmd == "SIMILAR";
    TEXRHEO_ASSIGN_OR_RETURN(
        TextureQuery query,
        ParseQueryCommand(tokens, is_similar ? &top_n : nullptr,
                          is_similar ? &mode : nullptr));
    std::string key = CanonicalQueryKey(
        query.gel_concentration, query.emulsion_concentration, {},
        options_.cache_quantum,
        is_similar ? std::string_view(SimilarityModeName(mode))
                   : std::string_view());
    std::vector<std::string> terms = query.texture_terms;
    std::sort(terms.begin(), terms.end());
    key += "|terms:";
    for (const std::string& term : terms) {
      key += term;
      key += ',';
    }
    return key;
  }
  // NEAREST / TOPIC are deterministic per token string; normalizing
  // whitespace is all the canonicalization they need.
  std::string key = cmd;
  for (size_t i = 1; i < tokens.size(); ++i) {
    key += '|';
    key += tokens[i];
  }
  return key;
}

std::vector<int> ReplicaRouter::CandidatesFor(const std::string& line) const {
  std::vector<std::string> tokens = SplitProtocolTokens(line);
  if (tokens.empty()) return {};
  const std::string& cmd = tokens[0];
  if (cmd != "PREDICT" && cmd != "NEAREST" && cmd != "SIMILAR" &&
      cmd != "TOPIC") {
    return {};
  }
  StatusOr<std::string> key = RoutingKeyFor(tokens);
  if (!key.ok()) return {};
  return ring_.NodesFor(key.value(), replicas_.size());
}

// --- Probing ---------------------------------------------------------------

void ReplicaRouter::ProbeReplica(Replica& replica) {
  if (replica.draining.load(std::memory_order_acquire)) return;
  probes_->Increment();
  if (!replica.breaker.Allow(Now())) {
    // Open and still cooling down: stay ejected, keep the gauge honest.
    replica.healthy_gauge->Set(0.0);
    return;
  }
  StatusOr<std::string> reply = Status::Unavailable("probe did not run");
  StatusOr<std::unique_ptr<LineClient>> conn_or = CheckoutConnection(replica);
  if (!conn_or.ok()) {
    reply = conn_or.status();
  } else {
    std::unique_ptr<LineClient> conn = std::move(conn_or).value();
    // METRICSZ rather than PING: one round trip buys liveness *and* the
    // served snapshot's fingerprint (drift detection for free).
    reply = conn->RoundTrip(
        "METRICSZ", DeadlineAfterMillis(options_.probe_timeout_millis));
    if (reply.ok()) ReturnConnection(replica, std::move(conn));
  }
  if (reply.ok()) {
    replica.breaker.RecordSuccess();
    uint32_t fp = FingerprintFromMetricsz(reply.value());
    if (fp != 0) {
      replica.fingerprint.store(fp, std::memory_order_release);
      replica.fingerprint_gauge->Set(static_cast<double>(fp));
    }
  } else {
    probe_failures_->Increment();
    replica.breaker.RecordFailure(Now());
  }
  replica.healthy_gauge->Set(
      replica.breaker.state() == CircuitBreaker::State::kClosed ? 1.0 : 0.0);
}

void ReplicaRouter::ProbeAllOnce() {
  for (auto& replica : replicas_) ProbeReplica(*replica);
}

// --- Rolling reload --------------------------------------------------------

Status ReplicaRouter::ReloadOneReplica(Replica& replica,
                                       const std::string& model_file,
                                       std::vector<uint32_t>* fingerprints) {
  LineClientOptions copts;
  copts.io_timeout_millis = options_.reload_timeout_millis;
  copts.socket_ops = ops_;
  // Fresh control connection: pooled data-path connections keep their
  // tighter I/O budget, and a reload that dies mid-exchange never poisons
  // the pool.
  TEXRHEO_ASSIGN_OR_RETURN(
      std::unique_ptr<LineClient> conn,
      LineClient::Connect(replica.address.host, replica.address.port, copts));
  TEXRHEO_ASSIGN_OR_RETURN(std::string reply,
                           conn->RoundTrip("RELOAD " + model_file));
  if (reply.rfind("OK", 0) != 0) {
    return Status::Internal("replica rejected RELOAD: " + reply);
  }
  uint32_t fp = FingerprintFromReloadReply(reply);
  if (fp == 0) {
    return Status::Internal("replica RELOAD reply carried no fingerprint: " +
                            reply);
  }
  replica.fingerprint.store(fp, std::memory_order_release);
  replica.fingerprint_gauge->Set(static_cast<double>(fp));
  fingerprints->push_back(fp);
  return Status::OK();
}

Status ReplicaRouter::RollingReload(const std::string& model_file,
                                    std::string* summary) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  rolling_reloads_->Increment();
  std::vector<uint32_t> fingerprints;
  const size_t fleet = replicas_.size();
  for (auto& replica_ptr : replicas_) {
    Replica& replica = *replica_ptr;
    // Drain: new legs stop selecting this replica (NextEligible checks
    // draining under the same mutex that guards the inflight count, so a
    // concurrently-selected leg is either counted here or never ran), then
    // wait for the counted ones to finish and flush their responses.
    bool drained;
    {
      std::unique_lock<std::mutex> lock(inflight_mu_);
      replica.draining.store(true, std::memory_order_release);
      drained = inflight_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.rolling_drain_millis),
          [&] { return replica.inflight.load() == 0; });
    }
    Status step =
        drained ? ReloadOneReplica(replica, model_file, &fingerprints)
                : Status::DeadlineExceeded(
                      "replica did not drain within " +
                      std::to_string(options_.rolling_drain_millis) + "ms");
    replica.draining.store(false, std::memory_order_release);
    if (!step.ok()) {
      rolling_reload_failures_->Increment();
      return Status::Internal(
          "rolling reload aborted at replica " + std::to_string(replica.id) +
          "/" + std::to_string(fleet) + " (" +
          std::to_string(fingerprints.size()) +
          " already on the new snapshot): " + step.ToString());
    }
  }
  for (uint32_t fp : fingerprints) {
    if (fp != fingerprints.front()) {
      rolling_reload_failures_->Increment();
      return Status::Internal(
          "rolling reload finished with diverged fingerprints: replicas "
          "do not serve one model");
    }
  }
  if (summary != nullptr) {
    *summary = "OK rolled replicas=" + std::to_string(fleet) +
               " fingerprint=" + HexFingerprint(fingerprints.front());
  }
  return Status::OK();
}

// --- Introspection ---------------------------------------------------------

std::vector<ReplicaRouter::ReplicaView> ReplicaRouter::GetReplicaViews()
    const {
  std::vector<ReplicaView> views;
  views.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    ReplicaView view;
    view.id = replica->id;
    view.address = replica->address;
    view.state = replica->breaker.state();
    view.breaker = replica->breaker.GetStats();
    view.draining = replica->draining.load(std::memory_order_acquire);
    view.inflight = replica->inflight.load(std::memory_order_acquire);
    view.fingerprint = replica->fingerprint.load(std::memory_order_acquire);
    views.push_back(std::move(view));
  }
  return views;
}

std::string ReplicaRouter::RenderStatsz() const {
  obs::MetricsSnapshot snap = metrics_->TakeSnapshot();
  std::ostringstream out;
  out << "texrheo_router statsz\n";
  out << "router: requests=" << snap.CounterValue("router.requests")
      << " answered=" << snap.CounterValue("router.answered")
      << " unavailable=" << snap.CounterValue("router.unavailable")
      << " retries=" << snap.CounterValue("router.retries")
      << " hedges=" << snap.CounterValue("router.hedges")
      << " hedge_wins=" << snap.CounterValue("router.hedge_wins") << "\n";
  out << "breaker: skips=" << snap.CounterValue("router.breaker.skips")
      << " trips=" << snap.CounterValue("router.breaker.trips")
      << " half_open_trials="
      << snap.CounterValue("router.breaker.half_open_trials")
      << " recoveries=" << snap.CounterValue("router.breaker.recoveries")
      << "\n";
  out << "probes: probes=" << snap.CounterValue("router.probes")
      << " failures=" << snap.CounterValue("router.probe_failures")
      << " rolling_reloads=" << snap.CounterValue("router.rolling_reloads")
      << " rolling_reload_failures="
      << snap.CounterValue("router.rolling_reload_failures") << "\n";
  out << "latency: try " << try_latency_->ToString() << "\n";
  out << "latency: request " << request_latency_->ToString() << "\n";
  for (const ReplicaView& view : GetReplicaViews()) {
    out << "replica " << view.id << ": " << view.address.host << ":"
        << view.address.port << " state="
        << CircuitBreaker::StateName(view.state)
        << " draining=" << (view.draining ? 1 : 0)
        << " inflight=" << view.inflight
        << " fingerprint=" << HexFingerprint(view.fingerprint) << "\n";
  }
  out << ".";
  return out.str();
}

std::string ReplicaRouter::MetricszJson() const {
  obs::MetricsSnapshot snap = metrics_->TakeSnapshot();
  JsonValue root = snap.ToJson();
  JsonValue fleet = JsonValue::MakeObject();
  JsonValue states = JsonValue::MakeArray();
  JsonValue fingerprints = JsonValue::MakeArray();
  int healthy = 0;
  for (const ReplicaView& view : GetReplicaViews()) {
    if (view.state == CircuitBreaker::State::kClosed && !view.draining) {
      ++healthy;
    }
    states.AsArray().push_back(
        JsonValue::String(CircuitBreaker::StateName(view.state)));
    fingerprints.AsArray().push_back(
        JsonValue::String(HexFingerprint(view.fingerprint)));
  }
  fleet.AsObject()["replicas"] =
      JsonValue::Number(static_cast<double>(replicas_.size()));
  fleet.AsObject()["healthy"] = JsonValue::Number(healthy);
  fleet.AsObject()["states"] = std::move(states);
  fleet.AsObject()["fingerprints"] = std::move(fingerprints);
  root.AsObject()["fleet"] = std::move(fleet);
  return root.Serialize();
}

// --- Protocol surface ------------------------------------------------------

std::string ReplicaRouter::Err(const Status& status) {
  return "ERR " + status.ToString();
}

std::string ReplicaRouter::Handle(const std::string& line, bool* quit,
                                  Deadline deadline) {
  std::vector<std::string> tokens = SplitProtocolTokens(line);
  if (tokens.empty()) return Err(Status::InvalidArgument("empty command"));
  const std::string& cmd = tokens[0];

  if (cmd == "PING") return "OK pong";
  if (cmd == "QUIT") {
    *quit = true;
    return "OK bye";
  }
  if (cmd == "STATSZ") return RenderStatsz();
  if (cmd == "METRICSZ") return MetricszJson();
  if (cmd == "ROLLING_RELOAD") {
    if (tokens.size() != 2) {
      return Err(Status::InvalidArgument("usage: ROLLING_RELOAD <model-file>"));
    }
    std::string summary;
    Status status = RollingReload(tokens[1], &summary);
    return status.ok() ? summary : Err(status);
  }
  if (cmd == "RELOAD") {
    return Err(Status::InvalidArgument(
        "RELOAD targets a single replica; use ROLLING_RELOAD <model-file> "
        "for a zero-downtime fleet swap"));
  }
  if (cmd == "PREDICT" || cmd == "NEAREST" || cmd == "SIMILAR" ||
      cmd == "TOPIC") {
    StatusOr<std::string> key = RoutingKeyFor(tokens);
    // A line the replicas would reject anyway is answered locally — same
    // parser, same error, no replica leg burned.
    if (!key.ok()) return Err(key.status());
    StatusOr<std::string> reply = ForwardLine(line, key.value(), deadline);
    if (!reply.ok()) return Err(reply.status());
    // Replica responses (including replica-side ERR lines) pass through
    // byte-for-byte: the router adds fault tolerance, not a dialect.
    return std::move(reply).value();
  }
  return Err(Status::InvalidArgument("unknown command '" + cmd + "'"));
}

}  // namespace texrheo::serve
