// texrheo_router: fault-tolerant front tier over N texrheo_serve replicas.
//
//   texrheo_router --replicas=127.0.0.1:7334,127.0.0.1:7335 [--port=7333]
//
// The router speaks the same line protocol as the replicas (PREDICT /
// NEAREST / SIMILAR / TOPIC forwarded; PING / STATSZ / METRICSZ local;
// ROLLING_RELOAD <model-file> drains and reloads the fleet one replica at
// a time), so existing clients point at the router unchanged.
//
// Fleet knobs (defaults in serve/router.h):
//   --max-tries=N            legs per request across distinct replicas
//   --hedge-delay-ms=N       tail hedging: 0 off, -1 auto (p99-derived),
//                            >0 fixed delay before the second leg
//   --probe-interval-ms=N    health-probe cadence (METRICSZ per replica)
//   --replica-timeout-ms=N   per-leg round-trip budget
//   --breaker-failures=N     consecutive failures that eject a replica
//   --breaker-cooldown-ms=N  ejection cooldown before a readmission trial
//   --cache-quantum=X        must match the replicas' cache_quantum
//
// Front-socket robustness flags mirror texrheo_serve:
//   --idle-timeout-ms / --request-deadline-ms / --max-connections /
//   --max-line-bytes / --drain-deadline-ms

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "serve/router.h"
#include "serve/server.h"
#include "util/flags.h"

namespace {

using texrheo::Status;
using texrheo::StatusOr;

StatusOr<std::vector<texrheo::serve::ReplicaAddress>> ParseReplicas(
    const std::string& spec) {
  std::vector<texrheo::serve::ReplicaAddress> replicas;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > start) {
      const std::string entry = spec.substr(start, comma - start);
      size_t colon = entry.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= entry.size()) {
        return Status::InvalidArgument("bad replica '" + entry +
                                       "' (expected host:port)");
      }
      texrheo::serve::ReplicaAddress address;
      address.host = entry.substr(0, colon);
      char* end = nullptr;
      long port = std::strtol(entry.c_str() + colon + 1, &end, 10);
      if (*end != '\0' || port <= 0 || port > 65535) {
        return Status::InvalidArgument("bad replica port in '" + entry + "'");
      }
      address.port = static_cast<int>(port);
      replicas.push_back(std::move(address));
    }
    start = comma + 1;
  }
  if (replicas.empty()) {
    return Status::InvalidArgument("--replicas lists no host:port entries");
  }
  return replicas;
}

int Main(int argc, char** argv) {
  texrheo::FlagParser flags;
  Status parse = flags.Parse(argc, argv);
  if (!parse.ok()) {
    std::fprintf(stderr, "%s\n", parse.ToString().c_str());
    return 2;
  }
  const std::string replicas_spec = flags.GetString("replicas", "");
  if (replicas_spec.empty()) {
    std::fprintf(stderr,
                 "usage: texrheo_router --replicas=host:port[,host:port...] "
                 "[--port=N]\n");
    return 2;
  }
  StatusOr<std::vector<texrheo::serve::ReplicaAddress>> replicas_or =
      ParseReplicas(replicas_spec);
  if (!replicas_or.ok()) {
    std::fprintf(stderr, "%s\n", replicas_or.status().ToString().c_str());
    return 2;
  }

  texrheo::serve::RouterOptions router_options;
  router_options.replicas = std::move(replicas_or).value();
  auto port_or = flags.GetInt("port", 7333);
  auto max_tries_or = flags.GetInt("max-tries", router_options.max_tries);
  auto hedge_or =
      flags.GetInt("hedge-delay-ms", router_options.hedge_delay_millis);
  auto probe_or =
      flags.GetInt("probe-interval-ms", router_options.probe_interval_millis);
  auto replica_timeout_or = flags.GetInt(
      "replica-timeout-ms", router_options.replica_io_timeout_millis);
  auto breaker_failures_or = flags.GetInt(
      "breaker-failures", router_options.breaker.failure_threshold);
  auto breaker_cooldown_or = flags.GetInt(
      "breaker-cooldown-ms", router_options.breaker.cooldown_millis);
  auto quantum_or =
      flags.GetDouble("cache-quantum", router_options.cache_quantum);
  if (!port_or.ok() || !max_tries_or.ok() || !hedge_or.ok() ||
      !probe_or.ok() || !replica_timeout_or.ok() ||
      !breaker_failures_or.ok() || !breaker_cooldown_or.ok() ||
      !quantum_or.ok()) {
    std::fprintf(stderr, "bad fleet flag (expected number)\n");
    return 2;
  }
  router_options.max_tries = static_cast<int>(*max_tries_or);
  router_options.hedge_delay_millis = static_cast<int>(*hedge_or);
  router_options.probe_interval_millis = static_cast<int>(*probe_or);
  router_options.replica_io_timeout_millis =
      static_cast<int>(*replica_timeout_or);
  router_options.breaker.failure_threshold =
      static_cast<int>(*breaker_failures_or);
  router_options.breaker.cooldown_millis =
      static_cast<int>(*breaker_cooldown_or);
  router_options.cache_quantum = *quantum_or;

  auto router_or = texrheo::serve::ReplicaRouter::Create(router_options);
  if (!router_or.ok()) {
    std::fprintf(stderr, "router: %s\n",
                 router_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<texrheo::serve::ReplicaRouter> router =
      std::move(router_or).value();
  Status router_started = router->Start();
  if (!router_started.ok()) {
    std::fprintf(stderr, "router: %s\n", router_started.ToString().c_str());
    return 1;
  }

  texrheo::serve::ServerOptions server_options;
  server_options.port = static_cast<int>(*port_or);
  auto idle_or =
      flags.GetInt("idle-timeout-ms", server_options.idle_timeout_millis);
  auto deadline_or = flags.GetInt("request-deadline-ms",
                                  server_options.request_deadline_millis);
  auto max_conns_or = flags.GetInt(
      "max-connections", static_cast<int64_t>(server_options.max_connections));
  auto max_line_or = flags.GetInt(
      "max-line-bytes", static_cast<int64_t>(server_options.max_line_bytes));
  auto drain_or =
      flags.GetInt("drain-deadline-ms", server_options.drain_deadline_millis);
  if (!idle_or.ok() || !deadline_or.ok() || !max_conns_or.ok() ||
      !max_line_or.ok() || !drain_or.ok()) {
    std::fprintf(stderr, "bad robustness flag (expected integer)\n");
    return 2;
  }
  server_options.idle_timeout_millis = static_cast<int>(*idle_or);
  server_options.request_deadline_millis = static_cast<int>(*deadline_or);
  server_options.max_connections =
      static_cast<size_t>(std::max<int64_t>(1, *max_conns_or));
  server_options.max_line_bytes =
      static_cast<size_t>(std::max<int64_t>(64, *max_line_or));
  server_options.drain_deadline_millis = static_cast<int>(*drain_or);

  texrheo::serve::LineProtocolServer server(router.get(), router->metrics(),
                                            server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("texrheo_router listening on 127.0.0.1:%d (%zu replicas)\n",
              server.port(), router_options.replicas.size());
  std::fflush(stdout);

  // Foreground serve: block until killed (ctrl-C).
  for (;;) pause();
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
