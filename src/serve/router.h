#ifndef TEXRHEO_SERVE_ROUTER_H_
#define TEXRHEO_SERVE_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "util/backoff.h"
#include "util/hash_ring.h"
#include "util/histogram.h"
#include "util/socket_ops.h"
#include "util/status.h"

namespace texrheo::serve {

/// One replica backend (a LineProtocolServer + QueryEngine, typically
/// mmap-serving the same packed .idx/.dat pair as its siblings so the page
/// cache is shared across the fleet).
struct ReplicaAddress {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Tuning of a ReplicaRouter. Defaults suit an interactive fleet on
/// loopback; tests inject socket_ops / now_fn and drive probes manually.
struct RouterOptions {
  std::vector<ReplicaAddress> replicas;

  /// Virtual nodes per replica on the consistent-hash ring. More vnodes =
  /// smoother key split, slower ring build (lookup stays O(log points)).
  int vnodes_per_replica = 64;
  /// Quantization step for the canonical routing key; must match the
  /// replicas' QueryEngineConfig::cache_quantum or float-noise twins of
  /// one query land on different replicas and their caches double-fill.
  double cache_quantum = 1e-4;

  // --- Health probing ---------------------------------------------------

  /// Cadence of the background probe pass (METRICSZ round trip per
  /// replica: liveness + snapshot fingerprint in one probe). <= 0 disables
  /// the thread; tests call ProbeAllOnce() to step probes deterministically.
  int probe_interval_millis = 1000;
  /// Per-probe round-trip budget.
  int probe_timeout_millis = 1000;
  /// Per-replica ejection breaker: consecutive transport failures (data
  /// path and probes both count) trip it, the cooldown elapses, and the
  /// next Allow — usually a probe — is the half-open readmission trial.
  CircuitBreaker::Options breaker;

  // --- Data path --------------------------------------------------------

  /// Per-try round-trip budget against one replica ("replica slow").
  int replica_io_timeout_millis = 5000;
  /// Max legs dispatched per request across distinct replicas (first try,
  /// retries, and hedges all count). >= 1.
  int max_tries = 3;
  /// Tail-latency hedging: when the primary leg has not answered after
  /// this long, a second leg is sent to the next live replica and the
  /// first answer wins (the loser is aborted). 0 disables; < 0 derives the
  /// delay from the observed p99 of router.try_us (clamped below by
  /// min_hedge_delay_millis) — the classic "hedge above the tail" policy.
  int hedge_delay_millis = 0;
  int min_hedge_delay_millis = 1;
  /// Idle connections kept per replica.
  size_t max_pool_per_replica = 8;
  /// RELOAD round-trip budget (model loads outlast query budgets).
  int reload_timeout_millis = 30000;
  /// ROLLING_RELOAD: how long one replica may take to drain its in-flight
  /// router legs before the rollout aborts.
  int rolling_drain_millis = 5000;

  // --- Seams ------------------------------------------------------------

  /// Socket seam for the replica links; null = SocketOps::Real(). Not
  /// owned. Tests substitute the fault-injecting decorator here.
  SocketOps* socket_ops = nullptr;
  /// Breaker clock; null = steady_clock::now. Injecting it makes the
  /// ejection / readmission schedule fully deterministic in tests.
  std::function<CircuitBreaker::TimePoint()> now_fn;
  /// Registry the router.* metric family lives in; null => the router
  /// creates (and owns) its own.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Optional tracer (not owned; must outlive the router): request ->
  /// try / hedge legs and probe spans.
  obs::Tracer* tracer = nullptr;
};

/// Fault-tolerant front tier fanning line-protocol queries over N replica
/// backends. Plugged into LineProtocolServer as a CommandHandler, so the
/// router front speaks exactly the protocol the replicas speak:
///
///   PREDICT / NEAREST / SIMILAR / TOPIC   forwarded to the fleet
///   PING / STATSZ / METRICSZ / QUIT       answered locally
///   ROLLING_RELOAD <model-file>           drain-reload each replica in turn
///
/// Routing is consistent hashing on the canonical query key (quantized
/// concentrations + sorted term bag — the text-level twin of the engine's
/// CanonicalQueryKey), so each replica's LRU cache stays hot for its key
/// range. A request whose primary replica is ejected, down, or slow moves
/// to the next distinct replica on the ring under a per-request try budget
/// riding the Deadline; optional hedging sends a second leg after a
/// p99-derived delay and takes the first answer. Replica sickness is
/// tracked by a per-replica CircuitBreaker fed by probes and data-path
/// transport failures; ROLLING_RELOAD drains one replica at a time so a
/// fleet-wide snapshot swap loses zero in-flight queries.
///
/// Thread-safe: Handle may be called from any number of connection
/// threads; the probe thread and ROLLING_RELOAD run concurrently with
/// traffic.
class ReplicaRouter : public CommandHandler {
 public:
  static StatusOr<std::unique_ptr<ReplicaRouter>> Create(
      const RouterOptions& options);

  ~ReplicaRouter() override;

  ReplicaRouter(const ReplicaRouter&) = delete;
  ReplicaRouter& operator=(const ReplicaRouter&) = delete;

  /// Runs one synchronous probe pass (fingerprints + liveness), then
  /// starts the background probe thread (when probe_interval_millis > 0).
  Status Start();

  /// Stops probing and closes pooled replica connections. Idempotent.
  void Stop();

  /// CommandHandler: executes one front-tier protocol line.
  std::string Handle(const std::string& line, bool* quit,
                     Deadline deadline) override;

  /// One probe pass over every replica, synchronously on the caller's
  /// thread. Public so tests (and the selftest smoke) can step the health
  /// state machine deterministically instead of sleeping.
  void ProbeAllOnce();

  /// Drains + reloads each replica in turn; returns non-OK if any replica
  /// failed to drain or reload (replicas already rolled stay on the new
  /// snapshot — the error text says how far the rollout got).
  /// `summary` (optional) receives the OK response line.
  Status RollingReload(const std::string& model_file, std::string* summary);

  /// Point-in-time per-replica view (tests / introspection).
  struct ReplicaView {
    int id = 0;
    ReplicaAddress address;
    CircuitBreaker::State state = CircuitBreaker::State::kClosed;
    CircuitBreaker::Stats breaker;
    bool draining = false;
    uint64_t inflight = 0;
    uint32_t fingerprint = 0;  ///< Last observed; 0 = never probed.
  };
  std::vector<ReplicaView> GetReplicaViews() const;

  /// Replica candidate order (primary first) the router would use for
  /// `line`; empty for commands that are not forwarded. Exposed so tests
  /// can aim a query at a chosen replica without reverse-engineering the
  /// ring.
  std::vector<int> CandidatesFor(const std::string& line) const;

  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

 private:
  struct Replica;
  struct Leg;

  explicit ReplicaRouter(const RouterOptions& options);

  CircuitBreaker::TimePoint Now() const;
  /// Routing key for a forwarded command; error when the command cannot
  /// even be parsed (answered locally without burning a replica leg).
  StatusOr<std::string> RoutingKeyFor(
      const std::vector<std::string>& tokens) const;

  /// Next candidate (from `candidates`, advancing `*cursor`) that is not
  /// draining and whose breaker admits a call now; the replica's inflight
  /// count is already raised when this returns (the draining check and the
  /// count move together under inflight_mu_, so ROLLING_RELOAD's drain can
  /// never miss a leg selected concurrently). *was_trial is set when the
  /// admission was the breaker's half-open trial — that leg must report an
  /// outcome even if it is later abandoned. Null when exhausted.
  Replica* NextEligible(const std::vector<int>& candidates, size_t* cursor,
                        bool* was_trial);

  StatusOr<std::unique_ptr<LineClient>> CheckoutConnection(
      Replica& replica);
  void ReturnConnection(Replica& replica, std::unique_ptr<LineClient> conn);

  /// One leg: checkout -> round trip -> breaker + latency bookkeeping.
  /// Runs inline (no hedge) or on a leg thread (hedged).
  void RunLeg(Leg& leg, Deadline try_deadline);

  /// Full forward path: candidate walk, retries, hedging.
  StatusOr<std::string> ForwardLine(const std::string& line,
                                    const std::string& key,
                                    Deadline deadline);

  void ProbeReplica(Replica& replica);
  /// Drains one replica, then RELOADs it over a fresh control connection.
  Status ReloadOneReplica(Replica& replica, const std::string& model_file,
                          std::vector<uint32_t>* fingerprints);
  int HedgeDelayMillis() const;
  std::string RenderStatsz() const;
  std::string MetricszJson() const;
  static std::string Err(const Status& status);

  const RouterOptions options_;
  SocketOps* ops_;  ///< Not owned.
  HashRing ring_;   ///< Immutable after Create.
  std::vector<std::unique_ptr<Replica>> replicas_;  ///< Immutable vector.

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* requests_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* hedges_ = nullptr;
  obs::Counter* hedge_wins_ = nullptr;
  obs::Counter* breaker_skips_ = nullptr;
  obs::Counter* breaker_trips_ = nullptr;
  obs::Counter* breaker_half_open_ = nullptr;
  obs::Counter* breaker_recoveries_ = nullptr;
  obs::Counter* probes_ = nullptr;
  obs::Counter* probe_failures_ = nullptr;
  obs::Counter* rolling_reloads_ = nullptr;
  obs::Counter* rolling_reload_failures_ = nullptr;
  obs::Counter* unavailable_ = nullptr;
  obs::Counter* answered_ = nullptr;
  LatencyHistogram* try_latency_ = nullptr;
  LatencyHistogram* request_latency_ = nullptr;

  /// Signals every in-flight-leg count change (ROLLING_RELOAD's per-replica
  /// drain waits on it).
  mutable std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;

  std::mutex reload_mu_;  ///< One rolling reload at a time.

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  // Guarded by stop_mu_.
  bool stopped_ = false;   // Guarded by stop_mu_.
  std::thread probe_thread_;
};

}  // namespace texrheo::serve

#endif  // TEXRHEO_SERVE_ROUTER_H_
