#ifndef TEXRHEO_SERVE_CACHE_H_
#define TEXRHEO_SERVE_CACHE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "math/linalg.h"

namespace texrheo::serve {

/// Canonical cache key for a texture query.
///
/// Two queries that denote the same recipe must hash identically no matter
/// how the caller assembled them, so the key is built from:
///  - concentrations *quantized* to `quantum` (callers sending 0.02 and
///    0.020000001 — float noise, re-parsed text — land on one key),
///  - emitted sparsely as (dimension, quantized-count) pairs in dimension
///    order (ingredient order cannot leak in: the vectors are indexed by
///    GelType / EmulsionType, and zero entries are skipped so a query that
///    never mentions agar equals one that says agar=0),
///  - term ids sorted ascending (texture terms are a bag, not a sequence,
///    under eq. 5 fold-in: theta depends only on term counts).
///
/// Quantization is round-half-away-from-zero on value/quantum; quantum
/// must be positive (a serving config with quantum <= 0 is rejected at
/// engine construction).
///
/// `mode` distinguishes queries whose *answer semantics* differ even when
/// the recipe is identical — the SIMILAR ranking backend. A non-empty mode
/// is appended as a distinct trailing component, so a `kl` result can
/// never be served from the cache for a `fused` query. PredictTexture
/// passes the default empty mode and its keys are unchanged.
std::string CanonicalQueryKey(const math::Vector& gel_concentration,
                              const math::Vector& emulsion_concentration,
                              const std::vector<int32_t>& term_ids,
                              double quantum, std::string_view mode = {});

}  // namespace texrheo::serve

#endif  // TEXRHEO_SERVE_CACHE_H_
