#ifndef TEXRHEO_SERVE_PROTOCOL_H_
#define TEXRHEO_SERVE_PROTOCOL_H_

#include <string>
#include <utility>
#include <vector>

#include "core/linkage.h"
#include "serve/query_engine.h"
#include "util/status.h"

namespace texrheo::serve {

/// Text-level parsing of the line protocol (see server.h for the grammar).
/// Shared by the replica server (which executes commands against a
/// QueryEngine) and the router front tier (which parses just enough of a
/// command to compute its routing key and forwards the line verbatim) —
/// one grammar, two consumers, zero drift.

/// Whitespace-splits one protocol line into tokens.
std::vector<std::string> SplitProtocolTokens(const std::string& line);

/// Splits "a,b,c" into parts; empty segments are dropped.
std::vector<std::string> SplitCommaList(const std::string& s);

/// Parses "name=ratio,name=ratio" ("-" = none) into ingredient pairs.
StatusOr<std::vector<std::pair<std::string, double>>> ParseIngredientSpec(
    const std::string& spec);

/// Builds a TextureQuery from positional <ingredients> plus key=value
/// options (terms=..., n=..., mode=...). `top_n` (optional) receives n=
/// when the command supports it (SIMILAR); 0 = unset. `mode` (optional)
/// receives mode= the same way and is left untouched when absent, so the
/// caller's default (kl) survives; commands that pass nullptr (PREDICT)
/// reject mode= as an unknown option.
StatusOr<TextureQuery> ParseQueryCommand(
    const std::vector<std::string>& tokens, size_t* top_n,
    SimilarityMode* mode = nullptr);

/// Parses a topic index argument.
StatusOr<int> ParseTopicIndex(const std::string& token);

/// Parses a NEAREST method= value.
StatusOr<core::LinkageMethod> ParseLinkageMethod(const std::string& name);

/// snprintf's `v` with `fmt` onto `out` (fixed-width response fields).
void AppendFixed(std::string* out, const char* fmt, double v);

}  // namespace texrheo::serve

#endif  // TEXRHEO_SERVE_PROTOCOL_H_
