#include "serve/cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace texrheo::serve {

namespace {

void AppendQuantized(const math::Vector& v, double quantum, char tag,
                     std::string* out) {
  for (size_t i = 0; i < v.size(); ++i) {
    long long q = std::llround(v[i] / quantum);
    if (q == 0) continue;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%c%zu:%lld;", tag, i, q);
    *out += buf;
  }
}

}  // namespace

std::string CanonicalQueryKey(const math::Vector& gel_concentration,
                              const math::Vector& emulsion_concentration,
                              const std::vector<int32_t>& term_ids,
                              double quantum, std::string_view mode) {
  std::string key;
  key.reserve(64);
  AppendQuantized(gel_concentration, quantum, 'g', &key);
  AppendQuantized(emulsion_concentration, quantum, 'e', &key);
  std::vector<int32_t> sorted_terms = term_ids;
  std::sort(sorted_terms.begin(), sorted_terms.end());
  for (int32_t t : sorted_terms) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "t%d;", t);
    key += buf;
  }
  if (!mode.empty()) {
    // '|' cannot appear in the quantized components above, so the mode is
    // unambiguous and mode-less keys stay byte-identical to the old format.
    key += "|m:";
    key += mode;
    key += ';';
  }
  return key;
}

}  // namespace texrheo::serve
