#include "serve/snapshot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/checkpoint.h"
#include "core/joint_topic_model.h"
#include "math/special.h"
#include "util/crc32.h"

namespace texrheo::serve {

namespace {
constexpr int kTopTermsPerTopic = 12;
}  // namespace

ServingSnapshot::ServingSnapshot(core::ModelSnapshot model, std::string source)
    : model_(std::move(model)), source_(std::move(source)) {}

Status ServingSnapshot::Validate() const {
  const core::TopicEstimates& est = model_.estimates;
  size_t k_count = est.phi.size();
  if (k_count == 0) {
    return Status::InvalidArgument("serving snapshot: model has no topics");
  }
  for (const auto& row : est.phi) {
    if (row.size() != model_.vocab.size()) {
      return Status::InvalidArgument(
          "serving snapshot: phi row width disagrees with vocabulary");
    }
    for (double p : row) {
      if (!std::isfinite(p) || p < 0.0) {
        return Status::InvalidArgument(
            "serving snapshot: phi contains negative or non-finite mass");
      }
    }
  }
  if (est.gel_topics.size() != k_count ||
      est.emulsion_topics.size() != k_count) {
    return Status::InvalidArgument(
        "serving snapshot: per-topic Gaussian count disagrees with phi");
  }
  if (!est.topic_recipe_count.empty() &&
      est.topic_recipe_count.size() != k_count) {
    return Status::InvalidArgument(
        "serving snapshot: topic_recipe_count size disagrees with phi");
  }
  return Status::OK();
}

void ServingSnapshot::BuildSummaries(const text::TextureDictionary& dict,
                                     int top_terms) {
  const core::TopicEstimates& est = model_.estimates;
  summaries_.clear();
  summaries_.resize(est.phi.size());
  for (size_t k = 0; k < est.phi.size(); ++k) {
    TopicTermSummary& summary = summaries_[k];
    std::vector<std::pair<std::string, double>> terms;
    terms.reserve(est.phi[k].size());
    for (size_t v = 0; v < est.phi[k].size(); ++v) {
      double p = est.phi[k][v];
      const std::string& word = model_.vocab.WordOf(static_cast<int32_t>(v));
      terms.emplace_back(word, p);
      const text::TextureTerm* term = dict.Find(word);
      if (term == nullptr) {
        summary.masses.other += p;
        continue;
      }
      if (text::IsHardTerm(*term)) summary.masses.hard += p;
      else if (text::IsSoftTerm(*term)) summary.masses.soft += p;
      else if (text::IsElasticTerm(*term)) summary.masses.elastic += p;
      else if (text::IsCrumblyTerm(*term)) summary.masses.crumbly += p;
      else if (text::IsStickyTerm(*term)) summary.masses.sticky += p;
      else summary.masses.dry += p;
    }
    std::sort(terms.begin(), terms.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (terms.size() > static_cast<size_t>(top_terms)) {
      terms.resize(static_cast<size_t>(top_terms));
    }
    summary.top_terms = std::move(terms);
  }
}

StatusOr<std::shared_ptr<const ServingSnapshot>> ServingSnapshot::FromModel(
    core::ModelSnapshot model, std::string source) {
  auto snapshot = std::shared_ptr<ServingSnapshot>(
      new ServingSnapshot(std::move(model), std::move(source)));
  TEXRHEO_RETURN_IF_ERROR(snapshot->Validate());
  // The fingerprint hashes the canonical text serialization, so it is
  // stable across load paths: a model file and the checkpoint it was
  // exported from produce the same id when they encode the same estimates.
  snapshot->fingerprint_ = Crc32(core::SerializeModel(snapshot->model_));
  snapshot->BuildSummaries(text::TextureDictionary::Embedded(),
                           kTopTermsPerTopic);
  return std::shared_ptr<const ServingSnapshot>(std::move(snapshot));
}

StatusOr<std::shared_ptr<const ServingSnapshot>>
ServingSnapshot::FromModelFile(const std::string& path) {
  TEXRHEO_ASSIGN_OR_RETURN(core::ModelSnapshot model, core::LoadModel(path));
  return FromModel(std::move(model), path);
}

StatusOr<std::shared_ptr<const ServingSnapshot>>
ServingSnapshot::FromCheckpointFile(const std::string& path,
                                    const recipe::Dataset& dataset) {
  TEXRHEO_ASSIGN_OR_RETURN(core::CheckpointState state,
                           core::ReadCheckpointFile(path));
  if (state.fingerprint.sampler != core::SamplerKind::kJoint) {
    return Status::FailedPrecondition(
        "serving snapshot: checkpoint was written by a different sampler");
  }
  // Reconstruct the training configuration from the checkpoint fingerprint;
  // RestoreFromCheckpoint then re-verifies the fingerprint and cross-checks
  // the count matrices against `dataset`, refusing a corpus mismatch.
  core::JointTopicModelConfig config;
  config.num_topics = state.fingerprint.num_topics;
  config.alpha = state.fingerprint.alpha;
  config.gamma = state.fingerprint.gamma;
  config.seed = state.fingerprint.seed;
  config.num_threads = state.fingerprint.num_threads;
  config.optimize_alpha = state.fingerprint.optimize_alpha;
  config.use_emulsion_likelihood = state.fingerprint.use_emulsion_likelihood;
  config.gmm_init = state.fingerprint.gmm_init;
  TEXRHEO_ASSIGN_OR_RETURN(core::JointTopicModel model,
                           core::JointTopicModel::Create(config, &dataset));
  TEXRHEO_RETURN_IF_ERROR(model.RestoreFromCheckpoint(state));
  return FromModel(core::MakeSnapshot(model.Estimate(), dataset.term_vocab),
                   path);
}

StatusOr<std::vector<double>> ServingSnapshot::FoldInTheta(
    const std::vector<int32_t>& term_ids, const math::Vector& gel_feature,
    int sweeps, double alpha, Rng& rng) const {
  if (sweeps < 1) {
    return Status::InvalidArgument("fold-in: sweeps must be >= 1");
  }
  if (alpha <= 0.0) {
    return Status::InvalidArgument("fold-in: alpha must be positive");
  }
  const core::TopicEstimates& est = model_.estimates;
  int k_count = num_topics();
  for (int32_t term : term_ids) {
    if (term < 0 || static_cast<size_t>(term) >= vocab_size()) {
      return Status::OutOfRange("fold-in: term id outside model vocabulary");
    }
  }
  if (gel_feature.size() != est.gel_topics.front().dim()) {
    return Status::InvalidArgument(
        "fold-in: gel feature dimension does not match model");
  }

  // Same two-block Gibbs scan as JointTopicModel::FoldInTheta, with the
  // collapsed count ratios replaced by the snapshot's phi point estimates.
  std::vector<int> local_z(term_ids.size());
  std::vector<int> local_n_k(static_cast<size_t>(k_count), 0);
  for (size_t n = 0; n < term_ids.size(); ++n) {
    int k = static_cast<int>(rng.NextUint(static_cast<uint64_t>(k_count)));
    local_z[n] = k;
    ++local_n_k[static_cast<size_t>(k)];
  }
  int local_y =
      static_cast<int>(rng.NextUint(static_cast<uint64_t>(k_count)));

  std::vector<double> weights(static_cast<size_t>(k_count));
  std::vector<double> log_w(static_cast<size_t>(k_count));
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (size_t n = 0; n < term_ids.size(); ++n) {
      size_t v = static_cast<size_t>(term_ids[n]);
      --local_n_k[static_cast<size_t>(local_z[n])];
      for (int k = 0; k < k_count; ++k) {
        size_t ks = static_cast<size_t>(k);
        weights[ks] = (static_cast<double>(local_n_k[ks]) +
                       (local_y == k ? 1.0 : 0.0) + alpha) *
                      est.phi[ks][v];
      }
      double total = 0.0;
      for (double w : weights) total += w;
      if (total <= 0.0) {
        // Every topic gives this term zero mass (possible after reload onto
        // a model whose phi zeroes the term); fall back to the prior.
        for (double& w : weights) w = 1.0;
      }
      local_z[n] = static_cast<int>(rng.NextCategorical(weights));
      ++local_n_k[static_cast<size_t>(local_z[n])];
    }
    for (int k = 0; k < k_count; ++k) {
      size_t ks = static_cast<size_t>(k);
      double lw =
          std::log(static_cast<double>(local_n_k[ks]) + alpha) +
          est.gel_topics[ks].LogPdf(gel_feature);
      log_w[ks] = lw;
    }
    double norm = math::LogSumExp(log_w.data(), log_w.size());
    for (int k = 0; k < k_count; ++k) {
      weights[static_cast<size_t>(k)] =
          std::exp(log_w[static_cast<size_t>(k)] - norm);
    }
    local_y = static_cast<int>(rng.NextCategorical(weights));
  }

  double n_d = static_cast<double>(term_ids.size());
  double alpha_sum = alpha * static_cast<double>(k_count);
  std::vector<double> theta(static_cast<size_t>(k_count));
  for (int k = 0; k < k_count; ++k) {
    size_t ks = static_cast<size_t>(k);
    theta[ks] = (static_cast<double>(local_n_k[ks]) +
                 (local_y == k ? 1.0 : 0.0) + alpha) /
                (n_d + 1.0 + alpha_sum);
  }
  return theta;
}

int ServingSnapshot::InferTopicForFeatures(
    const math::Vector& gel_feature) const {
  const core::TopicEstimates& est = model_.estimates;
  int best = 0;
  double best_lw = -std::numeric_limits<double>::infinity();
  for (int k = 0; k < num_topics(); ++k) {
    size_t ks = static_cast<size_t>(k);
    double prior = 1.0;
    if (!est.topic_recipe_count.empty()) {
      prior += static_cast<double>(est.topic_recipe_count[ks]);
    }
    double lw = std::log(prior) + est.gel_topics[ks].LogPdf(gel_feature);
    if (lw > best_lw) {
      best_lw = lw;
      best = k;
    }
  }
  return best;
}

}  // namespace texrheo::serve
