#include "serve/snapshot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/checkpoint.h"
#include "core/joint_topic_model.h"
#include "math/special.h"
#include "util/crc32.h"

namespace texrheo::serve {

namespace {

constexpr int kTopTermsPerTopic = 12;

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// TPA pole a vocabulary word contributes to (see CategoryMasses).
enum class Pole : uint8_t { kHard, kSoft, kElastic, kCrumbly, kSticky, kDry,
                            kOther };

Pole ClassifyWord(const text::TextureDictionary& dict, std::string_view word) {
  const text::TextureTerm* term = dict.Find(word);
  if (term == nullptr) return Pole::kOther;
  if (text::IsHardTerm(*term)) return Pole::kHard;
  if (text::IsSoftTerm(*term)) return Pole::kSoft;
  if (text::IsElasticTerm(*term)) return Pole::kElastic;
  if (text::IsCrumblyTerm(*term)) return Pole::kCrumbly;
  if (text::IsStickyTerm(*term)) return Pole::kSticky;
  return Pole::kDry;
}

StatusOr<math::Gaussian> GaussianFromSpans(size_t dim,
                                           std::span<const double> mean,
                                           std::span<const double> precision) {
  math::Vector mu(dim);
  for (size_t i = 0; i < dim; ++i) mu[i] = mean[i];
  math::Matrix lambda(dim, dim);
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < dim; ++c) lambda(r, c) = precision[r * dim + c];
  }
  return math::Gaussian::FromPrecision(std::move(mu), std::move(lambda));
}

}  // namespace

int32_t ServingSnapshot::WordId(std::string_view term) const {
  if (mapped_ == nullptr) return model_.vocab.IdOf(term);
  auto it = word_index_.find(term);
  return it == word_index_.end() ? text::Vocabulary::kUnknownId : it->second;
}

Status ServingSnapshot::Validate() const {
  const core::TopicEstimates& est = estimates();
  if (num_topics_ < 1) {
    return Status::InvalidArgument("serving snapshot: model has no topics");
  }
  size_t k_count = static_cast<size_t>(num_topics_);
  for (int k = 0; k < num_topics_; ++k) {
    std::span<const double> row = phi(k);
    if (row.size() != vocab_size_) {
      return Status::InvalidArgument(
          "serving snapshot: phi row width disagrees with vocabulary");
    }
    for (double p : row) {
      if (!std::isfinite(p) || p < 0.0) {
        return Status::InvalidArgument(
            "serving snapshot: phi contains negative or non-finite mass");
      }
    }
  }
  if (est.gel_topics.size() != k_count ||
      est.emulsion_topics.size() != k_count) {
    return Status::InvalidArgument(
        "serving snapshot: per-topic Gaussian count disagrees with phi");
  }
  if (!est.topic_recipe_count.empty() &&
      est.topic_recipe_count.size() != k_count) {
    return Status::InvalidArgument(
        "serving snapshot: topic_recipe_count size disagrees with phi");
  }
  if (has_embeddings()) {
    embed::EmbeddingView view = embedding_view();
    if (view.vocab != vocab_size_) {
      return Status::InvalidArgument(
          "serving snapshot: embedding vocabulary disagrees with the model");
    }
    // Value-level finiteness was already enforced where the table entered
    // the process (ValidateEmbeddingTable on the heap path, MappedModel::
    // Open on the mmap path); only the alignment needs re-checking here.
  }
  return Status::OK();
}

void ServingSnapshot::BuildSummaries(const text::TextureDictionary& dict,
                                     int top_terms) {
  // Classify each vocabulary word into its pole once (V dictionary lookups
  // instead of K*V): summary building is on the reload path, and on the
  // mmap path it is most of the load cost.
  std::vector<Pole> poles(vocab_size_);
  for (size_t v = 0; v < vocab_size_; ++v) {
    poles[v] = ClassifyWord(dict, word(v));
  }
  summaries_.clear();
  summaries_.resize(static_cast<size_t>(num_topics_));
  std::vector<size_t> order(vocab_size_);
  for (int k = 0; k < num_topics_; ++k) {
    TopicTermSummary& summary = summaries_[static_cast<size_t>(k)];
    std::span<const double> row = phi(k);
    for (size_t v = 0; v < vocab_size_; ++v) {
      double p = row[v];
      switch (poles[v]) {
        case Pole::kHard: summary.masses.hard += p; break;
        case Pole::kSoft: summary.masses.soft += p; break;
        case Pole::kElastic: summary.masses.elastic += p; break;
        case Pole::kCrumbly: summary.masses.crumbly += p; break;
        case Pole::kSticky: summary.masses.sticky += p; break;
        case Pole::kDry: summary.masses.dry += p; break;
        case Pole::kOther: summary.masses.other += p; break;
      }
    }
    // Only the top terms are materialized as strings; sort ids, not pairs.
    size_t keep = std::min<size_t>(static_cast<size_t>(top_terms),
                                   vocab_size_);
    for (size_t v = 0; v < vocab_size_; ++v) order[v] = v;
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                      order.end(), [&row](size_t a, size_t b) {
                        if (row[a] != row[b]) return row[a] > row[b];
                        return a < b;  // Deterministic among ties.
                      });
    summary.top_terms.reserve(keep);
    for (size_t i = 0; i < keep; ++i) {
      summary.top_terms.emplace_back(std::string(word(order[i])),
                                     row[order[i]]);
    }
  }
}

Status ServingSnapshot::Finalize() {
  TEXRHEO_RETURN_IF_ERROR(Validate());
  BuildSummaries(text::TextureDictionary::Embedded(), kTopTermsPerTopic);
  return Status::OK();
}

StatusOr<std::shared_ptr<const ServingSnapshot>> ServingSnapshot::FromModel(
    core::ModelSnapshot model, std::string source,
    embed::EmbeddingTable embeddings) {
  TEXRHEO_RETURN_IF_ERROR(embed::ValidateEmbeddingTable(embeddings));
  auto snapshot = std::shared_ptr<ServingSnapshot>(new ServingSnapshot());
  snapshot->model_ = std::move(model);
  snapshot->embeddings_ = std::move(embeddings);
  snapshot->source_ = std::move(source);
  snapshot->num_topics_ = snapshot->model_.num_topics();
  snapshot->vocab_size_ = snapshot->model_.vocab.size();
  // The fingerprint hashes the canonical text serialization, so it is
  // stable across load paths: a model file, the checkpoint it was exported
  // from, and the packed binary all produce the same id when they encode
  // the same estimates.
  snapshot->fingerprint_ = Crc32(core::SerializeModel(snapshot->model_));
  TEXRHEO_RETURN_IF_ERROR(snapshot->Finalize());
  return std::shared_ptr<const ServingSnapshot>(std::move(snapshot));
}

StatusOr<std::shared_ptr<const ServingSnapshot>>
ServingSnapshot::FromModelFile(const std::string& path) {
  TEXRHEO_ASSIGN_OR_RETURN(core::ModelSnapshot model, core::LoadModel(path));
  return FromModel(std::move(model), path);
}

StatusOr<std::shared_ptr<const ServingSnapshot>>
ServingSnapshot::FromBinaryFile(const std::string& path,
                                core::MemoryMapOps& ops) {
  TEXRHEO_ASSIGN_OR_RETURN(std::shared_ptr<const core::MappedModel> mapped,
                           core::MappedModel::Open(path, ops));
  auto snapshot = std::shared_ptr<ServingSnapshot>(new ServingSnapshot());
  snapshot->source_ = mapped->idx_path();
  snapshot->num_topics_ = mapped->num_topics();
  snapshot->vocab_size_ = mapped->vocab_size();
  // MappedModel::Open already verified the index and every section CRC;
  // the stored fingerprint is the CRC32 of the canonical v2 serialization
  // computed at pack time, so loading does not re-serialize the model.
  snapshot->fingerprint_ = mapped->fingerprint();

  // Materialize the per-topic Gaussians (they need a Cholesky for LogPdf
  // anyway - tiny: K blocks of Dg^2 + De^2 doubles) and the Table-I
  // linkage counts. phi stays in the mapping.
  core::TopicEstimates& est = snapshot->gaussian_estimates_;
  int k_count = mapped->num_topics();
  est.gel_topics.reserve(static_cast<size_t>(k_count));
  est.emulsion_topics.reserve(static_cast<size_t>(k_count));
  for (int k = 0; k < k_count; ++k) {
    auto gel = GaussianFromSpans(mapped->gel_dim(), mapped->gel_mean(k),
                                 mapped->gel_precision(k));
    if (!gel.ok()) {
      return Status::InvalidArgument(
          "model binary: gel gaussian for topic " + std::to_string(k) +
          " is not positive definite: " + gel.status().message());
    }
    est.gel_topics.push_back(std::move(gel).value());
    auto emulsion =
        GaussianFromSpans(mapped->emulsion_dim(), mapped->emulsion_mean(k),
                          mapped->emulsion_precision(k));
    if (!emulsion.ok()) {
      return Status::InvalidArgument(
          "model binary: emulsion gaussian for topic " + std::to_string(k) +
          " is not positive definite: " + emulsion.status().message());
    }
    est.emulsion_topics.push_back(std::move(emulsion).value());
  }
  est.topic_recipe_count.reserve(static_cast<size_t>(k_count));
  for (int64_t n : mapped->recipe_counts()) {
    est.topic_recipe_count.push_back(static_cast<int>(n));
  }

  // Word -> id over string_views into the pool (stable while the mapping
  // lives). A duplicated word would make lookups ambiguous - reject.
  snapshot->word_index_.reserve(mapped->vocab_size());
  for (size_t v = 0; v < mapped->vocab_size(); ++v) {
    auto [it, inserted] =
        snapshot->word_index_.emplace(mapped->word(v),
                                      static_cast<int32_t>(v));
    if (!inserted) {
      return Status::InvalidArgument(
          "model binary: vocabulary pool contains duplicate words");
    }
  }

  snapshot->mapped_ = std::move(mapped);
  TEXRHEO_RETURN_IF_ERROR(snapshot->Finalize());
  return std::shared_ptr<const ServingSnapshot>(std::move(snapshot));
}

StatusOr<std::shared_ptr<const ServingSnapshot>> ServingSnapshot::FromFile(
    const std::string& path) {
  if (EndsWith(path, ".idx") || EndsWith(path, ".dat")) {
    return FromBinaryFile(path);
  }
  return FromModelFile(path);
}

StatusOr<std::shared_ptr<const ServingSnapshot>>
ServingSnapshot::FromCheckpointFile(const std::string& path,
                                    const recipe::Dataset& dataset) {
  TEXRHEO_ASSIGN_OR_RETURN(core::CheckpointState state,
                           core::ReadCheckpointFile(path));
  if (state.fingerprint.sampler != core::SamplerKind::kJoint) {
    return Status::FailedPrecondition(
        "serving snapshot: checkpoint was written by a different sampler");
  }
  // Reconstruct the training configuration from the checkpoint fingerprint;
  // RestoreFromCheckpoint then re-verifies the fingerprint and cross-checks
  // the count matrices against `dataset`, refusing a corpus mismatch.
  core::JointTopicModelConfig config;
  config.num_topics = state.fingerprint.num_topics;
  config.alpha = state.fingerprint.alpha;
  config.gamma = state.fingerprint.gamma;
  config.seed = state.fingerprint.seed;
  config.num_threads = state.fingerprint.num_threads;
  config.optimize_alpha = state.fingerprint.optimize_alpha;
  config.use_emulsion_likelihood = state.fingerprint.use_emulsion_likelihood;
  config.gmm_init = state.fingerprint.gmm_init;
  TEXRHEO_ASSIGN_OR_RETURN(core::JointTopicModel model,
                           core::JointTopicModel::Create(config, &dataset));
  TEXRHEO_RETURN_IF_ERROR(model.RestoreFromCheckpoint(state));
  return FromModel(core::MakeSnapshot(model.Estimate(), dataset.term_vocab),
                   path);
}

StatusOr<std::vector<double>> ServingSnapshot::FoldInTheta(
    const std::vector<int32_t>& term_ids, const math::Vector& gel_feature,
    int sweeps, double alpha, Rng& rng) const {
  if (sweeps < 1) {
    return Status::InvalidArgument("fold-in: sweeps must be >= 1");
  }
  if (alpha <= 0.0) {
    return Status::InvalidArgument("fold-in: alpha must be positive");
  }
  const core::TopicEstimates& est = estimates();
  int k_count = num_topics();
  for (int32_t term : term_ids) {
    if (term < 0 || static_cast<size_t>(term) >= vocab_size()) {
      return Status::OutOfRange("fold-in: term id outside model vocabulary");
    }
  }
  if (gel_feature.size() != est.gel_topics.front().dim()) {
    return Status::InvalidArgument(
        "fold-in: gel feature dimension does not match model");
  }
  // One phi view per topic, resolved up front (heap row or mapping).
  std::vector<std::span<const double>> phi_rows;
  phi_rows.reserve(static_cast<size_t>(k_count));
  for (int k = 0; k < k_count; ++k) phi_rows.push_back(phi(k));

  // Same two-block Gibbs scan as JointTopicModel::FoldInTheta, with the
  // collapsed count ratios replaced by the snapshot's phi point estimates.
  std::vector<int> local_z(term_ids.size());
  std::vector<int> local_n_k(static_cast<size_t>(k_count), 0);
  for (size_t n = 0; n < term_ids.size(); ++n) {
    int k = static_cast<int>(rng.NextUint(static_cast<uint64_t>(k_count)));
    local_z[n] = k;
    ++local_n_k[static_cast<size_t>(k)];
  }
  int local_y =
      static_cast<int>(rng.NextUint(static_cast<uint64_t>(k_count)));

  std::vector<double> weights(static_cast<size_t>(k_count));
  std::vector<double> log_w(static_cast<size_t>(k_count));
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (size_t n = 0; n < term_ids.size(); ++n) {
      size_t v = static_cast<size_t>(term_ids[n]);
      --local_n_k[static_cast<size_t>(local_z[n])];
      for (int k = 0; k < k_count; ++k) {
        size_t ks = static_cast<size_t>(k);
        weights[ks] = (static_cast<double>(local_n_k[ks]) +
                       (local_y == k ? 1.0 : 0.0) + alpha) *
                      phi_rows[ks][v];
      }
      double total = 0.0;
      for (double w : weights) total += w;
      if (total <= 0.0) {
        // Every topic gives this term zero mass (possible after reload onto
        // a model whose phi zeroes the term); fall back to the prior.
        for (double& w : weights) w = 1.0;
      }
      local_z[n] = static_cast<int>(rng.NextCategorical(weights));
      ++local_n_k[static_cast<size_t>(local_z[n])];
    }
    for (int k = 0; k < k_count; ++k) {
      size_t ks = static_cast<size_t>(k);
      double lw =
          std::log(static_cast<double>(local_n_k[ks]) + alpha) +
          est.gel_topics[ks].LogPdf(gel_feature);
      log_w[ks] = lw;
    }
    double norm = math::LogSumExp(log_w.data(), log_w.size());
    for (int k = 0; k < k_count; ++k) {
      weights[static_cast<size_t>(k)] =
          std::exp(log_w[static_cast<size_t>(k)] - norm);
    }
    local_y = static_cast<int>(rng.NextCategorical(weights));
  }

  double n_d = static_cast<double>(term_ids.size());
  double alpha_sum = alpha * static_cast<double>(k_count);
  std::vector<double> theta(static_cast<size_t>(k_count));
  for (int k = 0; k < k_count; ++k) {
    size_t ks = static_cast<size_t>(k);
    theta[ks] = (static_cast<double>(local_n_k[ks]) +
                 (local_y == k ? 1.0 : 0.0) + alpha) /
                (n_d + 1.0 + alpha_sum);
  }
  return theta;
}

int ServingSnapshot::InferTopicForFeatures(
    const math::Vector& gel_feature) const {
  const core::TopicEstimates& est = estimates();
  int best = 0;
  double best_lw = -std::numeric_limits<double>::infinity();
  for (int k = 0; k < num_topics(); ++k) {
    size_t ks = static_cast<size_t>(k);
    double prior = 1.0;
    if (!est.topic_recipe_count.empty()) {
      prior += static_cast<double>(est.topic_recipe_count[ks]);
    }
    double lw = std::log(prior) + est.gel_topics[ks].LogPdf(gel_feature);
    if (lw > best_lw) {
      best_lw = lw;
      best = k;
    }
  }
  return best;
}

}  // namespace texrheo::serve
