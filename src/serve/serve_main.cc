// texrheo_serve: line-protocol TCP front-end over the texture query engine.
//
//   texrheo_serve --model=model.txt [--port=7333]
//   texrheo_serve --toy [--port=0] [--selftest]
//
// Robustness knobs (defaults in serve/server.h):
//   --idle-timeout-ms=N       reap connections with no complete line for N ms
//   --request-deadline-ms=N   per-request budget (0 = unlimited)
//   --max-connections=N       accept-time shedding beyond N concurrent conns
//   --max-line-bytes=N        oversized request line => one ERR, then close
//   --drain-deadline-ms=N     graceful-drain budget on shutdown
//
// Observability:
//   --metrics-dir=DIR         periodically write DIR/metricsz.json (the
//                             METRICSZ snapshot) via atomic rename
//   --metrics-interval-ms=N   write cadence (default 10000)
//
// --toy trains a small synthetic-corpus model in-process (no files needed);
// --selftest additionally runs a scripted client session against the
// freshly started server and exits 0/1 — this is the CI smoke mode.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/model_binary.h"
#include "core/serialization.h"
#include "embed/sgns_trainer.h"
#include "eval/experiment.h"
#include "obs/exporter.h"
#include "obs/trace.h"
#include "recipe/dataset.h"
#include "serve/query_engine.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/logging.h"

namespace {

using texrheo::Status;
using texrheo::StatusOr;

struct LoadedModel {
  std::shared_ptr<const texrheo::serve::ServingSnapshot> snapshot;
  /// Non-null only for --toy (enables SIMILAR); kept alive by the caller.
  std::unique_ptr<texrheo::recipe::Dataset> corpus;
  /// Model file usable as a RELOAD target in selftest (toy mode only).
  std::string model_file;
  /// Packed binary twin (`.idx`) of model_file, also selftest-reloaded.
  std::string binary_idx;
};

StatusOr<LoadedModel> LoadToy(double scale, const std::string& dump_dir) {
  texrheo::eval::ExperimentConfig config =
      texrheo::eval::DefaultExperimentConfig(scale);
  TEXRHEO_ASSIGN_OR_RETURN(texrheo::eval::ExperimentResult result,
                           texrheo::eval::RunJointExperiment(config));
  LoadedModel loaded;
  texrheo::core::ModelSnapshot model = texrheo::core::MakeSnapshot(
      result.estimates, result.dataset.term_vocab);
  // Train SGNS ingredient embeddings over the corpus term bags. The toy
  // corpus was indexed against term_vocab — the snapshot's own vocabulary —
  // so sentences are the documents' term-id sequences verbatim.
  std::vector<std::vector<int32_t>> sentences;
  sentences.reserve(result.dataset.documents.size());
  for (const texrheo::recipe::Document& doc : result.dataset.documents) {
    sentences.push_back(doc.term_ids);
  }
  texrheo::embed::SgnsConfig sgns;
  sgns.dim = 16;
  sgns.epochs = 3;  // Startup-budget epochs; the bench trains for real.
  TEXRHEO_ASSIGN_OR_RETURN(
      texrheo::embed::EmbeddingTable embeddings,
      texrheo::embed::TrainSgns(sentences, result.dataset.term_vocab.size(),
                                sgns));
  if (!dump_dir.empty()) {
    // Per-process filename: a replica fleet started from the README's
    // multi-instance recipe must not race on one shared dump path (the
    // atomic-rename tmp files collide and the loser dies at startup).
    const std::string base = dump_dir + "/texrheo_serve_toy_model." +
                             std::to_string(static_cast<long>(getpid()));
    loaded.model_file = base + ".txt";
    TEXRHEO_RETURN_IF_ERROR(
        texrheo::core::SaveModel(loaded.model_file, model));
    // Pack the binary twin so selftest exercises the mmap reload path too —
    // with the embedding sections, so embed/fused survive a binary reload.
    // The text twin stays v2 (no embeddings): reloading it is the selftest's
    // legacy-model case, where embed-mode queries must fail cleanly.
    TEXRHEO_RETURN_IF_ERROR(texrheo::core::WriteModelBinary(
        model, base, texrheo::FileOps::Real(), &embeddings));
    loaded.binary_idx = base + ".idx";
  }
  TEXRHEO_ASSIGN_OR_RETURN(
      loaded.snapshot,
      texrheo::serve::ServingSnapshot::FromModel(
          std::move(model), "toy-experiment", std::move(embeddings)));
  loaded.corpus = std::make_unique<texrheo::recipe::Dataset>(
      std::move(result.dataset));
  return loaded;
}

StatusOr<LoadedModel> LoadFromFile(const std::string& path) {
  LoadedModel loaded;
  // FromFile dispatches on the extension: .idx/.dat mmap the packed binary
  // pair, anything else parses the v2 text format.
  TEXRHEO_ASSIGN_OR_RETURN(loaded.snapshot,
                           texrheo::serve::ServingSnapshot::FromFile(path));
  loaded.model_file = path;
  return loaded;
}

/// Scripted client session: every query type, a cache-hit repeat, a hot
/// reload, and a stats read. Returns non-OK on any unexpected response.
Status RunSelftest(int port, const std::string& reload_file,
                   const std::string& reload_binary) {
  using texrheo::serve::LineClient;
  // The selftest client exercises the hardened path: bounded round trips
  // and connect retry with backoff (harmless against a live server).
  texrheo::serve::LineClientOptions client_options;
  client_options.max_connect_attempts = 3;
  client_options.io_timeout_millis = 30000;
  TEXRHEO_ASSIGN_OR_RETURN(
      std::unique_ptr<LineClient> client,
      LineClient::Connect("127.0.0.1", port, client_options));
  auto expect_ok = [&](const std::string& command) -> Status {
    TEXRHEO_ASSIGN_OR_RETURN(std::string reply, client->RoundTrip(command));
    if (reply.rfind("OK", 0) != 0) {
      return Status::Internal("selftest: '" + command + "' -> " + reply);
    }
    TEXRHEO_LOG(Info) << command << " -> " << reply;
    return Status::OK();
  };
  TEXRHEO_RETURN_IF_ERROR(expect_ok("PING"));
  TEXRHEO_RETURN_IF_ERROR(
      expect_ok("PREDICT gelatin=0.012,milk=0.25 terms=jiggly,smooth"));
  // Identical query again: must be answered from the cache.
  TEXRHEO_ASSIGN_OR_RETURN(
      std::string cached,
      client->RoundTrip("PREDICT gelatin=0.012,milk=0.25 terms=jiggly,smooth"));
  if (cached.find("cached=1") == std::string::npos) {
    return Status::Internal("selftest: repeat PREDICT not cached: " + cached);
  }
  TEXRHEO_RETURN_IF_ERROR(expect_ok("NEAREST 0"));
  TEXRHEO_RETURN_IF_ERROR(expect_ok("NEAREST 0 method=mahalanobis"));
  TEXRHEO_RETURN_IF_ERROR(expect_ok("SIMILAR gelatin=0.02 n=3"));
  // Every similarity backend answers against the embedding-bearing toy
  // snapshot (embed/fused need terms to build a query vector).
  for (const char* mode : {"kl", "embed", "lexical", "fused"}) {
    TEXRHEO_RETURN_IF_ERROR(expect_ok(
        std::string("SIMILAR gelatin=0.02 terms=katai,purupuru n=3 mode=") +
        mode));
  }
  TEXRHEO_RETURN_IF_ERROR(expect_ok("TOPIC 0"));
  // A malformed command must produce a clean ERR, not a dropped connection.
  TEXRHEO_ASSIGN_OR_RETURN(std::string err, client->RoundTrip("NEAREST 9999"));
  if (err.rfind("ERR", 0) != 0) {
    return Status::Internal("selftest: expected ERR, got " + err);
  }
  if (!reload_file.empty()) {
    TEXRHEO_RETURN_IF_ERROR(expect_ok("RELOAD " + reload_file));
    // The text model is a legacy v2 pack with no embedding sections:
    // embed-backed modes must fail with a clean ERR, not serve garbage.
    TEXRHEO_ASSIGN_OR_RETURN(
        std::string legacy,
        client->RoundTrip("SIMILAR gelatin=0.02 terms=katai mode=embed"));
    if (legacy.rfind("ERR", 0) != 0) {
      return Status::Internal(
          "selftest: embed mode on a legacy model should ERR, got " + legacy);
    }
    TEXRHEO_RETURN_IF_ERROR(expect_ok("SIMILAR gelatin=0.02 mode=kl n=3"));
  }
  if (!reload_binary.empty()) {
    // Hot reload from the packed binary pair (mmap path), then prove the
    // swapped-in mapping actually serves — including its embedding
    // sections, which the text model just dropped.
    TEXRHEO_RETURN_IF_ERROR(expect_ok("RELOAD " + reload_binary));
    TEXRHEO_RETURN_IF_ERROR(expect_ok("TOPIC 0"));
    TEXRHEO_RETURN_IF_ERROR(expect_ok(
        "SIMILAR gelatin=0.02 terms=katai,purupuru n=3 mode=fused"));
  }
  TEXRHEO_RETURN_IF_ERROR(client->SendLine("STATSZ"));
  TEXRHEO_ASSIGN_OR_RETURN(std::string statsz, client->ReadUntilDot());
  if (statsz.find("cache:") == std::string::npos ||
      statsz.find("batcher:") == std::string::npos ||
      statsz.find("queries:") == std::string::npos ||
      statsz.find("server:") == std::string::npos ||
      statsz.find("reload_breaker:") == std::string::npos) {
    return Status::Internal("selftest: statsz missing sections:\n" + statsz);
  }
  TEXRHEO_LOG(Info) << "statsz:\n" << statsz;
  // INGESTZ surfaces the streamed-delta state the ingest tier feeds (docs
  // folded since the last reload, pending vocabulary); on a pure serve
  // front the page must still render, with its sections intact.
  TEXRHEO_RETURN_IF_ERROR(client->SendLine("INGESTZ"));
  TEXRHEO_ASSIGN_OR_RETURN(std::string ingestz, client->ReadUntilDot());
  if (ingestz.find("model: fingerprint=") == std::string::npos ||
      ingestz.find("delta: docs=") == std::string::npos ||
      ingestz.find("vocab: pending_terms=") == std::string::npos) {
    return Status::Internal("selftest: ingestz missing sections:\n" + ingestz);
  }
  // METRICSZ is STATSZ's machine-readable twin: one bare JSON line that
  // must parse, carry the documented schema, and be monotone-consistent.
  TEXRHEO_ASSIGN_OR_RETURN(std::string metricsz,
                           client->RoundTrip("METRICSZ"));
  TEXRHEO_ASSIGN_OR_RETURN(texrheo::JsonValue metrics,
                           texrheo::JsonValue::Parse(metricsz));
  const texrheo::JsonValue* version = metrics.Find("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->AsNumber() != 1.0) {
    return Status::Internal("selftest: metricsz missing schema_version 1:\n" +
                            metricsz);
  }
  for (const char* section : {"counters", "gauges", "histograms", "model"}) {
    const texrheo::JsonValue* value = metrics.Find(section);
    if (value == nullptr || !value->is_object()) {
      return Status::Internal(std::string("selftest: metricsz missing '") +
                              section + "' object:\n" + metricsz);
    }
  }
  const texrheo::JsonValue& counters = *metrics.Find("counters");
  auto counter = [&counters](const char* name) -> double {
    const texrheo::JsonValue* v = counters.Find(name);
    return v != nullptr && v->is_number() ? v->AsNumber() : 0.0;
  };
  if (counter("serve.queries.accepted") < counter("serve.queries.completed") ||
      counter("serve.server.requests_received") <
          counter("serve.server.requests_completed") ||
      counter("serve.queries.accepted") < 1.0) {
    return Status::Internal("selftest: metricsz counters inconsistent:\n" +
                            metricsz);
  }
  TEXRHEO_RETURN_IF_ERROR(expect_ok("QUIT"));
  return Status::OK();
}

/// Fleet smoke for the router front tier: three in-process replicas
/// serving the toy snapshot behind a ReplicaRouter. Proves the failover
/// story end to end — queries answer through the full fleet, keep
/// answering after one replica is killed (retry + breaker ejection, probe
/// stepped manually), and the ejection is visible in the router's
/// METRICSZ fleet object.
Status RunRouterSmoke(
    std::shared_ptr<const texrheo::serve::ServingSnapshot> snapshot,
    const texrheo::recipe::Dataset* corpus) {
  using texrheo::serve::LineProtocolServer;
  using texrheo::serve::QueryEngine;
  struct Replica {
    std::unique_ptr<QueryEngine> engine;
    std::unique_ptr<LineProtocolServer> server;
  };
  std::vector<Replica> fleet(3);
  texrheo::serve::RouterOptions router_options;
  for (Replica& replica : fleet) {
    texrheo::serve::QueryEngineConfig config;
    config.batch_linger_micros = 0;
    TEXRHEO_ASSIGN_OR_RETURN(replica.engine,
                             QueryEngine::Create(config, snapshot, corpus));
    replica.server = std::make_unique<LineProtocolServer>(
        replica.engine.get(), texrheo::serve::ServerOptions{});
    TEXRHEO_RETURN_IF_ERROR(replica.server->Start());
    router_options.replicas.push_back({"127.0.0.1", replica.server->port()});
  }
  router_options.probe_interval_millis = 0;  // Smoke steps probes manually.
  router_options.breaker.failure_threshold = 1;
  TEXRHEO_ASSIGN_OR_RETURN(
      std::unique_ptr<texrheo::serve::ReplicaRouter> router,
      texrheo::serve::ReplicaRouter::Create(router_options));
  TEXRHEO_RETURN_IF_ERROR(router->Start());
  bool quit = false;
  auto route_ok = [&](const std::string& command) -> Status {
    std::string reply =
        router->Handle(command, &quit, texrheo::serve::kNoDeadline);
    if (reply.rfind("OK", 0) != 0) {
      return Status::Internal("router smoke: '" + command + "' -> " + reply);
    }
    TEXRHEO_LOG(Info) << "router: " << command << " -> " << reply;
    return Status::OK();
  };
  TEXRHEO_RETURN_IF_ERROR(route_ok("PREDICT gelatin=0.012 terms=jiggly"));
  // A fused SIMILAR routed through the front tier: proves mode= survives
  // the router's parse/routing-key path and the replica-side fusion serves
  // end to end behind the fleet.
  TEXRHEO_RETURN_IF_ERROR(
      route_ok("SIMILAR gelatin=0.02 terms=katai,purupuru n=3 mode=fused"));
  // Kill one replica: the next probe pass ejects it (threshold 1) and
  // queries keep answering through the survivors.
  fleet[2].server->Stop();
  router->ProbeAllOnce();
  TEXRHEO_RETURN_IF_ERROR(route_ok("PREDICT gelatin=0.02 terms=smooth"));
  TEXRHEO_RETURN_IF_ERROR(route_ok("NEAREST 0"));
  std::string metricsz =
      router->Handle("METRICSZ", &quit, texrheo::serve::kNoDeadline);
  TEXRHEO_ASSIGN_OR_RETURN(texrheo::JsonValue metrics,
                           texrheo::JsonValue::Parse(metricsz));
  const texrheo::JsonValue* fleet_obj = metrics.Find("fleet");
  if (fleet_obj == nullptr || fleet_obj->Find("healthy") == nullptr ||
      fleet_obj->Find("healthy")->AsNumber() != 2.0) {
    return Status::Internal(
        "router smoke: METRICSZ fleet does not show the ejection:\n" +
        metricsz);
  }
  TEXRHEO_LOG(Info) << "router: one replica ejected, fleet.healthy=2";
  router->Stop();
  return Status::OK();
}

int Main(int argc, char** argv) {
  texrheo::FlagParser flags;
  Status parse = flags.Parse(argc, argv);
  if (!parse.ok()) {
    std::fprintf(stderr, "%s\n", parse.ToString().c_str());
    return 2;
  }
  const bool toy = flags.GetBool("toy", false);
  const bool selftest = flags.GetBool("selftest", false);
  const std::string model_path = flags.GetString("model", "");
  auto port_or = flags.GetInt("port", selftest ? 0 : 7333);
  auto scale_or = flags.GetDouble("toy-scale", 0.06);
  if (!port_or.ok() || !scale_or.ok()) {
    std::fprintf(stderr, "bad --port / --toy-scale\n");
    return 2;
  }
  if (toy == !model_path.empty()) {
    std::fprintf(stderr,
                 "usage: texrheo_serve (--toy | --model=FILE) [--port=N] "
                 "[--selftest]\n");
    return 2;
  }

  const char* tmp = std::getenv("TMPDIR");
  StatusOr<LoadedModel> loaded_or =
      toy ? LoadToy(*scale_or, tmp != nullptr ? tmp : "/tmp")
          : LoadFromFile(model_path);
  if (!loaded_or.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 loaded_or.status().ToString().c_str());
    return 1;
  }
  LoadedModel loaded = std::move(loaded_or).value();

  // Production tracing: steady clock, durations mirrored into the shared
  // registry as trace.<name>_us histograms (ring disabled — METRICSZ only
  // needs the aggregates, and serving must not grow per-span state).
  auto metrics = std::make_shared<texrheo::obs::MetricsRegistry>();
  texrheo::obs::Tracer tracer(nullptr, texrheo::obs::Tracer::Options{0});
  tracer.ExportDurationsTo(metrics.get());

  texrheo::serve::QueryEngineConfig config;
  config.num_threads = 0;  // Serving: use the hardware.
  config.metrics = metrics;
  config.tracer = &tracer;
  auto engine_or = texrheo::serve::QueryEngine::Create(
      config, loaded.snapshot, loaded.corpus.get());
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<texrheo::serve::QueryEngine> engine =
      std::move(engine_or).value();

  texrheo::serve::ServerOptions server_options;
  server_options.port = static_cast<int>(*port_or);
  auto idle_or = flags.GetInt("idle-timeout-ms",
                              server_options.idle_timeout_millis);
  auto deadline_or = flags.GetInt("request-deadline-ms",
                                  server_options.request_deadline_millis);
  auto max_conns_or = flags.GetInt(
      "max-connections", static_cast<int64_t>(server_options.max_connections));
  auto max_line_or = flags.GetInt(
      "max-line-bytes", static_cast<int64_t>(server_options.max_line_bytes));
  auto drain_or = flags.GetInt("drain-deadline-ms",
                               server_options.drain_deadline_millis);
  if (!idle_or.ok() || !deadline_or.ok() || !max_conns_or.ok() ||
      !max_line_or.ok() || !drain_or.ok()) {
    std::fprintf(stderr, "bad robustness flag (expected integer)\n");
    return 2;
  }
  server_options.idle_timeout_millis = static_cast<int>(*idle_or);
  server_options.request_deadline_millis = static_cast<int>(*deadline_or);
  server_options.max_connections = static_cast<size_t>(
      std::max<int64_t>(1, *max_conns_or));
  server_options.max_line_bytes = static_cast<size_t>(
      std::max<int64_t>(64, *max_line_or));
  server_options.drain_deadline_millis = static_cast<int>(*drain_or);
  texrheo::serve::LineProtocolServer server(engine.get(), server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }

  const std::string metrics_dir = flags.GetString("metrics-dir", "");
  auto metrics_interval_or = flags.GetInt("metrics-interval-ms", 10000);
  if (!metrics_interval_or.ok()) {
    std::fprintf(stderr, "bad --metrics-interval-ms (expected integer)\n");
    return 2;
  }
  std::unique_ptr<texrheo::obs::PeriodicMetricsWriter> metrics_writer;
  if (!metrics_dir.empty()) {
    texrheo::obs::PeriodicMetricsWriter::Options writer_options;
    writer_options.path = metrics_dir + "/metricsz.json";
    writer_options.interval_millis = static_cast<int>(*metrics_interval_or);
    texrheo::serve::QueryEngine* raw_engine = engine.get();
    metrics_writer = std::make_unique<texrheo::obs::PeriodicMetricsWriter>(
        [raw_engine] { return raw_engine->MetricszJson() + "\n"; },
        writer_options);
    Status write_started = metrics_writer->Start();
    if (!write_started.ok()) {
      std::fprintf(stderr, "metrics writer: %s\n",
                   write_started.ToString().c_str());
      return 1;
    }
  }
  std::printf("texrheo_serve listening on 127.0.0.1:%d (model %08x, %d "
              "topics)\n",
              server.port(), loaded.snapshot->fingerprint(),
              loaded.snapshot->num_topics());
  std::fflush(stdout);

  if (selftest) {
    Status result =
        RunSelftest(server.port(), loaded.model_file, loaded.binary_idx);
    if (result.ok()) {
      result = RunRouterSmoke(loaded.snapshot, loaded.corpus.get());
    }
    server.Stop();
    if (!result.ok()) {
      std::fprintf(stderr, "SELFTEST FAILED: %s\n",
                   result.ToString().c_str());
      return 1;
    }
    std::printf("selftest passed\n");
    return 0;
  }

  // Foreground serve: block until the accept thread exits (ctrl-C kills us).
  for (;;) pause();
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
