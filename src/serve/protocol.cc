#include "serve/protocol.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace texrheo::serve {

std::vector<std::string> SplitProtocolTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

std::vector<std::string> SplitCommaList(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

StatusOr<std::vector<std::pair<std::string, double>>> ParseIngredientSpec(
    const std::string& spec) {
  std::vector<std::pair<std::string, double>> out;
  if (spec == "-") return out;
  for (const std::string& part : SplitCommaList(spec)) {
    size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected name=ratio, got '" + part +
                                     "'");
    }
    char* end = nullptr;
    double value = std::strtod(part.c_str() + eq + 1, &end);
    if (end == part.c_str() + eq + 1 || *end != '\0') {
      return Status::InvalidArgument("bad ratio in '" + part + "'");
    }
    out.emplace_back(part.substr(0, eq), value);
  }
  return out;
}

StatusOr<TextureQuery> ParseQueryCommand(
    const std::vector<std::string>& tokens, size_t* top_n,
    SimilarityMode* mode) {
  if (tokens.size() < 2) {
    return Status::InvalidArgument(
        "usage: " + tokens[0] +
        " <name=ratio,...|-> [terms=a,b]" +
        (top_n != nullptr ? " [n=N] [mode=kl|embed|lexical|fused]" : ""));
  }
  std::vector<std::string> terms;
  if (top_n != nullptr) *top_n = 0;
  for (size_t i = 2; i < tokens.size(); ++i) {
    const std::string& opt = tokens[i];
    if (opt.rfind("terms=", 0) == 0) {
      terms = SplitCommaList(opt.substr(6));
    } else if (top_n != nullptr && opt.rfind("n=", 0) == 0) {
      *top_n = static_cast<size_t>(std::strtoul(opt.c_str() + 2, nullptr, 10));
    } else if (mode != nullptr && opt.rfind("mode=", 0) == 0) {
      TEXRHEO_ASSIGN_OR_RETURN(*mode, ParseSimilarityMode(opt.substr(5)));
    } else {
      return Status::InvalidArgument("unknown option '" + opt + "'");
    }
  }
  TEXRHEO_ASSIGN_OR_RETURN(auto ingredients, ParseIngredientSpec(tokens[1]));
  return QueryFromIngredients(ingredients, std::move(terms));
}

StatusOr<int> ParseTopicIndex(const std::string& token) {
  char* end = nullptr;
  long topic = std::strtol(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad topic index '" + token + "'");
  }
  return static_cast<int>(topic);
}

StatusOr<core::LinkageMethod> ParseLinkageMethod(const std::string& name) {
  if (name == "gaussian-kl") return core::LinkageMethod::kGaussianKL;
  if (name == "neg-log-density") return core::LinkageMethod::kNegLogDensity;
  if (name == "mahalanobis") return core::LinkageMethod::kMahalanobis;
  if (name == "euclidean") return core::LinkageMethod::kEuclidean;
  return Status::InvalidArgument("unknown linkage method '" + name + "'");
}

void AppendFixed(std::string* out, const char* fmt, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), fmt, v);
  *out += buf;
}

}  // namespace texrheo::serve
