#ifndef TEXRHEO_SERVE_SERVER_H_
#define TEXRHEO_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/query_engine.h"
#include "util/status.h"

namespace texrheo::serve {

/// Line protocol spoken by texrheo_serve. One request per line, one
/// response per line (STATSZ is multi-line, terminated by a lone ".").
/// Responses start with "OK" or "ERR <StatusCode>:".
///
///   PING
///   PREDICT <name=ratio[,name=ratio...]|-> [terms=a,b,...]
///   NEAREST <topic> [method=gaussian-kl|neg-log-density|mahalanobis|euclidean]
///   SIMILAR <name=ratio[,...]|-> [terms=a,b,...] [n=N]
///   TOPIC <k>
///   RELOAD <model-file>
///   STATSZ
///   QUIT
///
/// "-" stands for an empty ingredient list (texture-terms-only query).
struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read back via port()).
  int port = 0;
  /// Loopback-only by default; the toy server has no auth story.
  bool loopback_only = true;
  /// NEAREST / SIMILAR rows per response line.
  size_t max_rows = 5;
};

/// Blocking thread-per-connection TCP front-end over a QueryEngine.
///
/// The server owns no model state: every command is answered through the
/// engine, so concurrent connections exercise exactly the same thread
/// safety the in-process API guarantees. Stop() (or destruction) closes
/// the listener, wakes every connection, and joins all threads.
class LineProtocolServer {
 public:
  /// `engine` must outlive the server.
  LineProtocolServer(QueryEngine* engine, const ServerOptions& options);
  ~LineProtocolServer();

  LineProtocolServer(const LineProtocolServer&) = delete;
  LineProtocolServer& operator=(const LineProtocolServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Idempotent; safe to call while connections are active.
  void Stop();

  /// Bound port (valid after Start succeeded).
  int port() const { return port_; }

  uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Executes one protocol line against the engine and returns the full
  /// response (no trailing newline; may contain internal newlines). Public
  /// so tests can drive the protocol without sockets.
  std::string HandleCommand(const std::string& line, bool* quit);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  QueryEngine* engine_;  ///< Not owned.
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_{0};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;  // Guarded by conn_mu_.
  std::vector<int> conn_fds_;              // Live sockets; guarded by conn_mu_.
};

/// Minimal blocking client for the line protocol; used by tests and the
/// --selftest mode of texrheo_serve.
class LineClient {
 public:
  static StatusOr<std::unique_ptr<LineClient>> Connect(const std::string& host,
                                                       int port);
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  Status SendLine(const std::string& line);
  /// Next newline-terminated line (without the newline).
  StatusOr<std::string> ReadLine();
  /// SendLine + ReadLine.
  StatusOr<std::string> RoundTrip(const std::string& line);
  /// Reads lines until a lone "."; returns them joined by '\n' (for STATSZ).
  StatusOr<std::string> ReadUntilDot();

  void Close();

 private:
  explicit LineClient(int fd) : fd_(fd) {}

  int fd_;
  std::string buffer_;
};

}  // namespace texrheo::serve

#endif  // TEXRHEO_SERVE_SERVER_H_
