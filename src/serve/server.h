#ifndef TEXRHEO_SERVE_SERVER_H_
#define TEXRHEO_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/query_engine.h"
#include "util/backoff.h"
#include "util/socket_ops.h"
#include "util/status.h"

namespace texrheo::serve {

/// Executes one protocol line and returns the full response (no trailing
/// newline; may contain internal newlines, e.g. a multi-line STATSZ page
/// ending in a lone "."). The seam that lets LineProtocolServer front
/// anything that speaks the line protocol: a QueryEngine (the built-in
/// handler below) or a ReplicaRouter fanning commands over a fleet
/// (serve/router.h). Implementations must be safe to call from many
/// connection threads at once.
class CommandHandler {
 public:
  virtual ~CommandHandler() = default;

  /// `deadline` is the request's absolute budget (kNoDeadline = unlimited).
  /// Set *quit to end the connection after the response is flushed.
  virtual std::string Handle(const std::string& line, bool* quit,
                             Deadline deadline) = 0;
};

/// Line protocol spoken by texrheo_serve. One request per line, one
/// response per line (STATSZ is multi-line, terminated by a lone ".").
/// Responses start with "OK" or "ERR <StatusCode>:", with one exception:
/// METRICSZ answers a single bare JSON line (machine consumers pipe it
/// straight into a JSON parser; an OK prefix would just be stripped).
///
///   PING
///   PREDICT <name=ratio[,name=ratio...]|-> [terms=a,b,...]
///   NEAREST <topic> [method=gaussian-kl|neg-log-density|mahalanobis|euclidean]
///   SIMILAR <name=ratio[,...]|-> [terms=a,b,...] [n=N]
///   TOPIC <k>
///   RELOAD <model-file>
///   INGESTZ
///   STATSZ
///   METRICSZ
///   QUIT
///
/// "-" stands for an empty ingredient list (texture-terms-only query).
/// STATSZ and METRICSZ render from one MetricsSnapshot of the engine's
/// registry, so the two pages (and any two counters within one page)
/// can never contradict each other.
struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read back via port()).
  int port = 0;
  /// Loopback-only by default; the toy server has no auth story.
  bool loopback_only = true;
  /// NEAREST / SIMILAR rows per response line.
  size_t max_rows = 5;

  // --- Robustness knobs -------------------------------------------------

  /// Socket seam; null = SocketOps::Real(). Not owned; must outlive the
  /// server. Tests substitute a fault-injecting decorator here.
  SocketOps* socket_ops = nullptr;
  /// A connection with no complete request line for this long is reaped
  /// (slow-loris defense): it gets one ERR line, then close. <= 0 disables.
  int idle_timeout_millis = 30000;
  /// A response write that makes no progress for this long drops the
  /// connection (a stalled reader must not park a thread forever).
  int write_timeout_millis = 10000;
  /// Hard cap on buffered request-line bytes. A line that exceeds it gets
  /// one ERR response and the connection is closed — an unbounded buffer is
  /// a memory DoS vector.
  size_t max_line_bytes = 4096;
  /// Max concurrent connections; accepts beyond the cap are shed at accept
  /// time with one ERR line (overload must degrade crisply, not queue).
  size_t max_connections = 64;
  /// Per-request budget threaded into the engine (fold-in admission sheds
  /// blown requests with DeadlineExceeded). <= 0 = unlimited.
  int request_deadline_millis = 0;
  /// Stop(): how long in-flight commands may finish (and flush their
  /// responses) before remaining connections are force-closed.
  int drain_deadline_millis = 2000;
  /// RELOAD circuit breaker: after this many consecutive failures the
  /// server rejects RELOAD with Unavailable for `reload_cooldown_millis`,
  /// then admits one half-open trial.
  int reload_failure_threshold = 3;
  int reload_cooldown_millis = 5000;
};

/// Robustness counters (monotonic unless noted); exported in STATSZ.
/// Filled from the engine's metrics registry (serve.server.*) — the struct
/// is a convenience view for in-process callers, not a second store.
///
/// The reload breaker's state machine is additionally exported through the
/// registry (so METRICSZ consumers see ejections, not just the STATSZ text
/// section); names kept in sync with ci/metricsz_schema.jq:
///   serve.breaker.trips             transitions into kOpen
///   serve.breaker.half_open_trials  cooldown-elapsed trial admissions
///   serve.breaker.recoveries        half-open trials that reclosed
struct ServerStats {
  uint64_t requests_received = 0;   ///< Protocol lines entered HandleCommand.
  uint64_t requests_completed = 0;  ///< ... and produced a response.
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;  ///< Rejected at the connection cap.
  uint64_t current_connections = 0;  ///< Gauge.
  uint64_t peak_connections = 0;
  uint64_t idle_reaped = 0;          ///< Connections dropped by idle timeout.
  uint64_t oversized_rejected = 0;   ///< Request lines over max_line_bytes.
  uint64_t deadlines_exceeded = 0;   ///< Commands answered DeadlineExceeded.
  uint64_t io_errors = 0;  ///< Connections dropped on recv/send failure.
  uint64_t reload_failures = 0;
  uint64_t reload_rejected_by_breaker = 0;
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  CircuitBreaker::Stats breaker;
};

/// Blocking thread-per-connection TCP front-end over a QueryEngine.
///
/// The server owns no model state: every command is answered through the
/// engine, so concurrent connections exercise exactly the same thread
/// safety the in-process API guarantees. All connection I/O is
/// non-blocking and driven through SocketOps::Poll with explicit
/// deadlines, so a slow or hostile peer can stall only its own
/// connection, and only until its idle/write timeout.
///
/// Stop() (or destruction) drains: the listener closes, in-flight commands
/// finish and flush their responses within drain_deadline_millis, then any
/// remaining connections are force-closed and all threads joined. A
/// response that was computed is never dropped by a drain.
class LineProtocolServer {
 public:
  /// `engine` must outlive the server. Commands run through the built-in
  /// engine protocol; serve.server.* and serve.breaker.* metrics register
  /// in the engine's registry.
  LineProtocolServer(QueryEngine* engine, const ServerOptions& options);

  /// Fronts an arbitrary CommandHandler (the router path). `handler` and
  /// `metrics` must outlive the server; serve.server.* metrics register in
  /// `metrics`. The handler owns the whole command surface — the server
  /// contributes only socket I/O, per-connection budgets, and counters.
  LineProtocolServer(CommandHandler* handler, obs::MetricsRegistry* metrics,
                     const ServerOptions& options);

  ~LineProtocolServer();

  LineProtocolServer(const LineProtocolServer&) = delete;
  LineProtocolServer& operator=(const LineProtocolServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Graceful drain, then force-close: idempotent; safe to call while
  /// connections are active.
  void Stop();

  /// Bound port (valid after Start succeeded).
  int port() const { return port_; }

  uint64_t connections_accepted() const {
    return connections_accepted_->Value();
  }

  ServerStats GetStats() const;

  /// Executes one protocol line against the engine and returns the full
  /// response (no trailing newline; may contain internal newlines). Public
  /// so tests can drive the protocol without sockets. `deadline` is the
  /// request's absolute budget (kNoDeadline = unlimited).
  std::string HandleCommand(const std::string& line, bool* quit,
                            Deadline deadline = kNoDeadline);

 private:
  LineProtocolServer(QueryEngine* engine, CommandHandler* handler,
                     obs::MetricsRegistry* metrics,
                     const ServerOptions& options);

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Writes all of `data`, looping over partial sends and EINTR, waiting
  /// for writability up to write_timeout_millis per unit of progress.
  /// False = connection is unusable (caller should drop it).
  bool WriteAll(int fd, const std::string& data);
  /// "ERR <status>", counting deadline-exceeded responses.
  std::string Err(const Status& status);
  /// One "server:" + "reload_breaker:" statsz section (appended to the
  /// engine's), rendered from the same snapshot as the engine sections.
  std::string StatszSection(const obs::MetricsSnapshot& snap) const;
  void DeregisterConnection(int fd);

  QueryEngine* engine_;      ///< Not owned; null in handler mode.
  CommandHandler* handler_;  ///< Not owned; null in engine mode.
  const ServerOptions options_;
  SocketOps* ops_;  ///< Not owned.

  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;

  std::mutex stop_mu_;    ///< Serializes Stop() callers.
  bool stopped_ = false;  // Guarded by stop_mu_.

  mutable std::mutex conn_mu_;
  std::condition_variable conn_cv_;        ///< Signals active_ changes.
  std::vector<std::thread> conn_threads_;  // Guarded by conn_mu_.
  std::vector<int> conn_fds_;              // Live sockets; guarded by conn_mu_.
  size_t active_ = 0;                      // Live handler threads; conn_mu_.

  // Stats: pre-registered handles into the engine's registry
  // (serve.server.*), bumped lock-free from many connection threads.
  // requests_received is registered before requests_completed and each
  // request increments them in that order, so no registry snapshot ever
  // shows completed > received.
  obs::Counter* requests_received_ = nullptr;
  obs::Counter* requests_completed_ = nullptr;
  obs::Counter* connections_accepted_ = nullptr;
  obs::Counter* connections_shed_ = nullptr;
  obs::Counter* idle_reaped_ = nullptr;
  obs::Counter* oversized_rejected_ = nullptr;
  obs::Counter* deadlines_exceeded_ = nullptr;
  obs::Counter* io_errors_ = nullptr;
  obs::Counter* reload_failures_ = nullptr;
  obs::Counter* reload_rejected_by_breaker_ = nullptr;
  obs::Gauge* current_connections_ = nullptr;
  obs::Gauge* peak_connections_ = nullptr;
  CircuitBreaker reload_breaker_;
};

/// Client-side tuning. The defaults are the legacy behavior (single
/// connect attempt, block forever) so in-process test callers are
/// unchanged; production callers opt into budgets and retries.
struct LineClientOptions {
  /// Total connect attempts (>= 1). Transient connect failures (refused /
  /// reset / interrupted / timed out) are retried with exponential backoff
  /// + jitter; non-transient ones (bad address) fail immediately.
  int max_connect_attempts = 1;
  BackoffPolicy backoff;
  /// Seeds the jitter stream; fixed seed => reproducible schedule.
  uint64_t backoff_seed = 0x7ee1;
  /// Per-round-trip budget: SendLine / ReadLine fail with DeadlineExceeded
  /// when the socket makes no progress for this long. <= 0 = block forever.
  int io_timeout_millis = 0;
  /// Socket seam; null = SocketOps::Real(). Not owned.
  SocketOps* socket_ops = nullptr;
};

/// Minimal blocking client for the line protocol; used by tests, the
/// --selftest mode of texrheo_serve, and the router's replica links.
///
/// Status-code contract (the router's retry policy is built on it):
///  - connect-phase failures -> Unavailable ("replica down": trying the
///    next replica immediately is safe and costs nothing),
///  - per-round-trip budget exhausted -> DeadlineExceeded ("replica slow":
///    retrying elsewhere only makes sense if the request's own budget
///    still allows it),
///  - mid-stream close / reset -> Unavailable; when the peer closes with
///    an unterminated partial line buffered, the Status says so and the
///    partial bytes are dropped, never surfaced as a response.
class LineClient {
 public:
  struct Stats {
    uint64_t connect_retries = 0;
    uint64_t io_retries = 0;  ///< EINTR / partial-I/O continuations.
  };

  static StatusOr<std::unique_ptr<LineClient>> Connect(
      const std::string& host, int port,
      const LineClientOptions& options = LineClientOptions{});
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  Status SendLine(const std::string& line);
  /// Next newline-terminated line (without the newline).
  StatusOr<std::string> ReadLine();
  /// SendLine + ReadLine under one io_timeout budget.
  StatusOr<std::string> RoundTrip(const std::string& line);
  /// RoundTrip under an explicit absolute deadline instead of the client's
  /// io_timeout (how the router threads per-request / per-probe budgets
  /// through pooled connections).
  StatusOr<std::string> RoundTrip(const std::string& line, Deadline deadline);
  /// Reads lines until a lone "."; returns them joined by '\n' (for STATSZ).
  StatusOr<std::string> ReadUntilDot();

  void Close();

  /// Makes a thread blocked inside this client's I/O fail promptly with
  /// Unavailable by shutting the socket down (recv sees EOF, send sees
  /// EPIPE). Safe to call from another thread while one thread is inside
  /// SendLine / ReadLine / RoundTrip — this is how the router cancels the
  /// losing leg of a hedged request. The client is unusable afterwards.
  void Abort();

  Stats stats() const { return stats_; }

 private:
  LineClient(int fd, const LineClientOptions& options, SocketOps* ops,
             uint64_t connect_retries);

  Status SendWithDeadline(const std::string& payload, Deadline deadline);
  StatusOr<std::string> ReadLineWithDeadline(Deadline deadline);
  /// Blocks until `fd_` is ready for `events` or the deadline passes.
  Status WaitReady(short events, Deadline deadline);

  int fd_;
  const LineClientOptions options_;
  SocketOps* ops_;  ///< Not owned.
  std::string buffer_;
  Stats stats_;
};

}  // namespace texrheo::serve

#endif  // TEXRHEO_SERVE_SERVER_H_
