#ifndef TEXRHEO_SERVE_SNAPSHOT_H_
#define TEXRHEO_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/serialization.h"
#include "math/linalg.h"
#include "recipe/dataset.h"
#include "text/texture_dictionary.h"
#include "util/rng.h"
#include "util/status.h"

namespace texrheo::serve {

/// Probability mass a topic's term distribution puts on each pole of the
/// three TPA axes (hardness, cohesiveness, adhesiveness). `other` absorbs
/// vocabulary words absent from the texture dictionary.
struct CategoryMasses {
  double hard = 0.0;
  double soft = 0.0;
  double elastic = 0.0;
  double crumbly = 0.0;
  double sticky = 0.0;
  double dry = 0.0;
  double other = 0.0;
};

/// Pre-aggregated term view of one topic, derived once at snapshot build
/// time so per-query work never touches the raw phi matrix for reporting.
struct TopicTermSummary {
  CategoryMasses masses;
  /// Top terms by phi, descending: (surface form, probability).
  std::vector<std::pair<std::string, double>> top_terms;
};

/// An immutable, self-contained trained model prepared for serving.
///
/// ServingSnapshot is the unit the query engine swaps on hot reload: it is
/// built fully before it becomes visible, never mutated afterwards, and
/// handed out as shared_ptr<const ServingSnapshot> so an in-flight query
/// keeps its model alive across any number of reloads. Every accessor is
/// therefore safe from any thread by construction.
class ServingSnapshot {
 public:
  /// Wraps a deserialized model, derives the per-topic term summaries, and
  /// computes the content fingerprint. Fails on structurally inconsistent
  /// estimates (phi/Gaussian/topic-count shape mismatches).
  static StatusOr<std::shared_ptr<const ServingSnapshot>> FromModel(
      core::ModelSnapshot model, std::string source);

  /// Loads a text-format (v2) model file.
  static StatusOr<std::shared_ptr<const ServingSnapshot>> FromModelFile(
      const std::string& path);

  /// Rebuilds a servable model from a Gibbs *checkpoint*: the checkpoint's
  /// fingerprint reconstructs the training configuration, the sampler state
  /// is restored through the usual fingerprint + corpus cross-checks
  /// (refused on any mismatch), and eq.-5 estimates are extracted. The
  /// dataset must be the corpus the checkpoint was trained on.
  static StatusOr<std::shared_ptr<const ServingSnapshot>> FromCheckpointFile(
      const std::string& path, const recipe::Dataset& dataset);

  const core::ModelSnapshot& model() const { return model_; }
  int num_topics() const { return model_.num_topics(); }
  size_t vocab_size() const { return model_.vocab.size(); }
  /// CRC32 of the canonical serialized model text: two snapshots with the
  /// same fingerprint serve identical answers.
  uint32_t fingerprint() const { return fingerprint_; }
  /// Where the snapshot came from (path or label), for /statsz.
  const std::string& source() const { return source_; }

  const TopicTermSummary& term_summary(int k) const {
    return summaries_[static_cast<size_t>(k)];
  }

  /// Eq.-5 fold-in against the snapshot's *point estimates*: phi replaces
  /// the training count ratios and the stored per-topic gel Gaussian
  /// replaces the instantiated eq.-4 sample. Gibbs-samples the query's own
  /// z / y for `sweeps` and returns the theta estimate. Const and
  /// re-entrant: the caller supplies the RNG, all scratch is local.
  StatusOr<std::vector<double>> FoldInTheta(
      const std::vector<int32_t>& term_ids, const math::Vector& gel_feature,
      int sweeps, double alpha, Rng& rng) const;

  /// Most likely topic for a gel feature vector alone, prior-weighted by
  /// the per-topic training recipe counts (the serving analogue of
  /// JointTopicModel::InferTopicForFeatures).
  int InferTopicForFeatures(const math::Vector& gel_feature) const;

 private:
  ServingSnapshot(core::ModelSnapshot model, std::string source);

  Status Validate() const;
  void BuildSummaries(const text::TextureDictionary& dict, int top_terms);

  core::ModelSnapshot model_;
  std::string source_;
  uint32_t fingerprint_ = 0;
  std::vector<TopicTermSummary> summaries_;
};

}  // namespace texrheo::serve

#endif  // TEXRHEO_SERVE_SNAPSHOT_H_
