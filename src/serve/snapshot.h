#ifndef TEXRHEO_SERVE_SNAPSHOT_H_
#define TEXRHEO_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/model_binary.h"
#include "core/serialization.h"
#include "embed/embedding.h"
#include "math/linalg.h"
#include "recipe/dataset.h"
#include "text/texture_dictionary.h"
#include "util/rng.h"
#include "util/status.h"

namespace texrheo::serve {

/// Probability mass a topic's term distribution puts on each pole of the
/// three TPA axes (hardness, cohesiveness, adhesiveness). `other` absorbs
/// vocabulary words absent from the texture dictionary.
struct CategoryMasses {
  double hard = 0.0;
  double soft = 0.0;
  double elastic = 0.0;
  double crumbly = 0.0;
  double sticky = 0.0;
  double dry = 0.0;
  double other = 0.0;
};

/// Pre-aggregated term view of one topic, derived once at snapshot build
/// time so per-query work never touches the raw phi matrix for reporting.
struct TopicTermSummary {
  CategoryMasses masses;
  /// Top terms by phi, descending: (surface form, probability).
  std::vector<std::pair<std::string, double>> top_terms;
};

/// An immutable, self-contained trained model prepared for serving.
///
/// ServingSnapshot is the unit the query engine swaps on hot reload: it is
/// built fully before it becomes visible, never mutated afterwards, and
/// handed out as shared_ptr<const ServingSnapshot> so an in-flight query
/// keeps its model alive across any number of reloads. Every accessor is
/// therefore safe from any thread by construction.
///
/// Two storage paths sit behind one span/string_view interface:
///  - heap: FromModelFile / FromModel / FromCheckpointFile own a decoded
///    core::ModelSnapshot;
///  - mmap: FromBinaryFile keeps a shared_ptr<const core::MappedModel> and
///    serves phi rows and the vocabulary string pool directly out of the
///    mapping - no per-load heap copy of the big tables. The snapshot (and
///    transitively every in-flight query holding it) keeps the mapping
///    alive, so unmapping is deferred until the last reference drops.
/// Both paths serve byte-identical answers for the same model: the binary
/// pack canonicalizes through the v2 text round-trip.
class ServingSnapshot {
 public:
  /// Wraps a deserialized model, derives the per-topic term summaries, and
  /// computes the content fingerprint. Fails on structurally inconsistent
  /// estimates (phi/Gaussian/topic-count shape mismatches). A non-empty
  /// `embeddings` table (vocabulary-aligned with the model) enables the
  /// embed/fused SIMILAR backends; it does not enter the fingerprint, which
  /// identifies the topic model alone (see WriteModelBinary).
  static StatusOr<std::shared_ptr<const ServingSnapshot>> FromModel(
      core::ModelSnapshot model, std::string source,
      embed::EmbeddingTable embeddings = {});

  /// Loads a text-format (v2) model file.
  static StatusOr<std::shared_ptr<const ServingSnapshot>> FromModelFile(
      const std::string& path);

  /// Maps a packed binary model pair (see core/model_binary.h). `path` may
  /// be the `.idx`, the `.dat`, or the bare base path. The fingerprint is
  /// read from the verified index header rather than recomputed, so load
  /// cost is the mmap, one CRC pass, and the per-topic summaries.
  static StatusOr<std::shared_ptr<const ServingSnapshot>> FromBinaryFile(
      const std::string& path,
      core::MemoryMapOps& ops = core::MemoryMapOps::Real());

  /// Dispatches on the file name: `.idx`/`.dat` go to FromBinaryFile,
  /// anything else to FromModelFile. What RELOAD and --model accept.
  static StatusOr<std::shared_ptr<const ServingSnapshot>> FromFile(
      const std::string& path);

  /// Rebuilds a servable model from a Gibbs *checkpoint*: the checkpoint's
  /// fingerprint reconstructs the training configuration, the sampler state
  /// is restored through the usual fingerprint + corpus cross-checks
  /// (refused on any mismatch), and eq.-5 estimates are extracted. The
  /// dataset must be the corpus the checkpoint was trained on.
  static StatusOr<std::shared_ptr<const ServingSnapshot>> FromCheckpointFile(
      const std::string& path, const recipe::Dataset& dataset);

  int num_topics() const { return num_topics_; }
  size_t vocab_size() const { return vocab_size_; }
  /// CRC32 of the canonical serialized model text: two snapshots with the
  /// same fingerprint serve identical answers.
  uint32_t fingerprint() const { return fingerprint_; }
  /// Where the snapshot came from (path or label), for /statsz.
  const std::string& source() const { return source_; }
  /// True when phi and the vocabulary are served out of a file mapping.
  bool mmap_backed() const { return mapped_ != nullptr; }
  /// Bytes of the `.dat` mapping (0 on the heap path), for /statsz.
  size_t mapped_bytes() const {
    return mapped_ != nullptr ? mapped_->mapped_bytes() : 0;
  }

  /// P(term v | topic k): a view into either the heap row or the mapping.
  std::span<const double> phi(int k) const {
    if (mapped_ != nullptr) return mapped_->phi_row(k);
    return model_.estimates.phi[static_cast<size_t>(k)];
  }
  /// True when the snapshot can serve embedding-backed similarity (a heap
  /// table was attached, or the binary pack carries the embedding pair).
  bool has_embeddings() const {
    return mapped_ != nullptr ? mapped_->has_embeddings()
                              : !embeddings_.empty();
  }
  /// Zero-copy span view of the embeddings (heap rows or mapped sections);
  /// empty view when has_embeddings() is false. Valid while the snapshot
  /// lives — exactly the lifetime every in-flight query already holds.
  embed::EmbeddingView embedding_view() const {
    if (mapped_ != nullptr) return mapped_->embedding_view();
    return embed::EmbeddingView::Of(embeddings_);
  }

  /// Surface form of a vocabulary id.
  std::string_view word(size_t v) const {
    if (mapped_ != nullptr) return mapped_->word(v);
    return model_.vocab.WordOf(static_cast<int32_t>(v));
  }
  /// Id of `term`, or text::Vocabulary::kUnknownId.
  int32_t WordId(std::string_view term) const;
  /// Per-topic Gaussians and Table-I linkage counts. On the mmap path the
  /// Gaussians are materialized once at load (they need a Cholesky for
  /// LogPdf anyway) and `phi` inside is intentionally empty - use phi(k).
  const core::TopicEstimates& estimates() const {
    return mapped_ != nullptr ? gaussian_estimates_ : model_.estimates;
  }

  const TopicTermSummary& term_summary(int k) const {
    return summaries_[static_cast<size_t>(k)];
  }

  /// Eq.-5 fold-in against the snapshot's *point estimates*: phi replaces
  /// the training count ratios and the stored per-topic gel Gaussian
  /// replaces the instantiated eq.-4 sample. Gibbs-samples the query's own
  /// z / y for `sweeps` and returns the theta estimate. Const and
  /// re-entrant: the caller supplies the RNG, all scratch is local.
  StatusOr<std::vector<double>> FoldInTheta(
      const std::vector<int32_t>& term_ids, const math::Vector& gel_feature,
      int sweeps, double alpha, Rng& rng) const;

  /// Most likely topic for a gel feature vector alone, prior-weighted by
  /// the per-topic training recipe counts (the serving analogue of
  /// JointTopicModel::InferTopicForFeatures).
  int InferTopicForFeatures(const math::Vector& gel_feature) const;

 private:
  ServingSnapshot() = default;

  /// Shared tail of every factory: validate shapes/finiteness through the
  /// view accessors, then derive the per-topic summaries.
  Status Finalize();
  Status Validate() const;
  void BuildSummaries(const text::TextureDictionary& dict, int top_terms);

  std::string source_;
  uint32_t fingerprint_ = 0;
  int num_topics_ = 0;
  size_t vocab_size_ = 0;
  std::vector<TopicTermSummary> summaries_;

  // Heap path: the decoded model. Unused (empty) when mapped_ is set.
  core::ModelSnapshot model_;
  // Heap path: optional vocabulary-aligned embeddings (empty when absent
  // or when mapped_ serves them zero-copy instead).
  embed::EmbeddingTable embeddings_;

  // Mmap path: the verified mapping, Gaussians/linkage materialized from
  // it (phi left empty), and a word -> id index over pool string_views
  // (stable for the life of the mapping).
  std::shared_ptr<const core::MappedModel> mapped_;
  core::TopicEstimates gaussian_estimates_;
  std::unordered_map<std::string_view, int32_t> word_index_;
};

}  // namespace texrheo::serve

#endif  // TEXRHEO_SERVE_SNAPSHOT_H_
