#include "serve/query_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "eval/figures.h"
#include "math/divergence.h"
#include "recipe/features.h"
#include "recipe/ingredient.h"
#include "serve/cache.h"

namespace texrheo::serve {

namespace {

/// Per-query accounting, covering every return path: bumps accepted on
/// entry, and at scope exit records wall time into the method's latency
/// histogram and bumps completed. accepted-before-work / completed-after
/// is what gives registry snapshots their accepted >= completed guarantee.
class QueryScope {
 public:
  QueryScope(obs::Counter* accepted, obs::Counter* completed,
             LatencyHistogram* hist)
      : completed_(completed),
        hist_(hist),
        start_(std::chrono::steady_clock::now()) {
    accepted->Increment();
  }
  ~QueryScope() {
    hist_->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
    completed_->Increment();
  }

 private:
  obs::Counter* completed_;
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

math::Vector OrZeros(const math::Vector& v, size_t dim) {
  return v.empty() ? math::Vector(dim) : v;
}

/// One backend's full ranking of a topic's member documents.
struct RankedDoc {
  size_t doc = 0;
  double distance = 0.0;
};

void SortRanking(std::vector<RankedDoc>& ranking) {
  std::sort(ranking.begin(), ranking.end(),
            [](const RankedDoc& a, const RankedDoc& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.doc < b.doc;  // Deterministic among ties.
            });
}

/// 1 - Jaccard of two sorted-unique id sets (1.0 when either is empty).
double JaccardDistance(const std::vector<int32_t>& a,
                       const std::vector<int32_t>& b) {
  if (a.empty() || b.empty()) return 1.0;
  size_t i = 0;
  size_t j = 0;
  size_t both = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++both;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t either = a.size() + b.size() - both;
  return 1.0 - static_cast<double>(both) / static_cast<double>(either);
}

}  // namespace

const char* SimilarityModeName(SimilarityMode mode) {
  switch (mode) {
    case SimilarityMode::kKl: return "kl";
    case SimilarityMode::kEmbed: return "embed";
    case SimilarityMode::kLexical: return "lexical";
    case SimilarityMode::kFused: return "fused";
  }
  return "unknown";
}

StatusOr<SimilarityMode> ParseSimilarityMode(std::string_view name) {
  if (name == "kl") return SimilarityMode::kKl;
  if (name == "embed") return SimilarityMode::kEmbed;
  if (name == "lexical") return SimilarityMode::kLexical;
  if (name == "fused") return SimilarityMode::kFused;
  return Status::InvalidArgument(
      "unknown similarity mode '" + std::string(name) +
      "' (expected kl, embed, lexical, or fused)");
}

StatusOr<TextureQuery> QueryFromIngredients(
    const std::vector<std::pair<std::string, double>>& ingredients,
    std::vector<std::string> texture_terms) {
  const recipe::IngredientDatabase& db =
      recipe::IngredientDatabase::Embedded();
  TextureQuery query;
  query.gel_concentration = math::Vector(recipe::kNumGelTypes);
  query.emulsion_concentration = math::Vector(recipe::kNumEmulsionTypes);
  for (const auto& [name, concentration] : ingredients) {
    if (concentration < 0.0 || concentration > 1.0 ||
        !std::isfinite(concentration)) {
      return Status::InvalidArgument("concentration of '" + name +
                                     "' must be a ratio in [0, 1]");
    }
    const recipe::IngredientInfo* info = db.Find(name);
    if (info == nullptr) {
      return Status::InvalidArgument("unknown ingredient '" + name + "'");
    }
    switch (info->cls) {
      case recipe::IngredientClass::kGel:
        query.gel_concentration[static_cast<size_t>(info->gel_type)] +=
            concentration;
        break;
      case recipe::IngredientClass::kEmulsion:
        query.emulsion_concentration[static_cast<size_t>(
            info->emulsion_type)] += concentration;
        break;
      case recipe::IngredientClass::kOther:
        break;  // Not part of the model's concentration space.
    }
  }
  query.texture_terms = std::move(texture_terms);
  return query;
}

QueryEngine::QueryEngine(const QueryEngineConfig& config,
                         const recipe::Dataset* corpus)
    : config_(config),
      corpus_(corpus),
      cache_(config.cache_capacity),
      similar_cache_(config.similar_cache_capacity) {
  metrics_ = config.metrics != nullptr
                 ? config.metrics
                 : std::make_shared<obs::MetricsRegistry>();
  // Pipeline registration order (see header): accepted here, the batcher's
  // submitted/jobs_processed when the batcher is built, completed last
  // (in Create) — matching the order a request increments them. The mode
  // counters sit right after accepted for the same reason: a snapshot can
  // never show sum(modes) > accepted.
  queries_accepted_ = metrics_->RegisterCounter("serve.queries.accepted");
  for (size_t m = 0; m < kNumSimilarityModes; ++m) {
    similar_mode_[m] = metrics_->RegisterCounter(
        std::string("serve.similar.mode.") +
        SimilarityModeName(static_cast<SimilarityMode>(m)));
  }
  similar_cache_hits_ = metrics_->RegisterCounter("serve.similar.cache.hits");
  similar_cache_misses_ =
      metrics_->RegisterCounter("serve.similar.cache.misses");
  cache_hits_ = metrics_->RegisterCounter("serve.cache.hits");
  cache_misses_ = metrics_->RegisterCounter("serve.cache.misses");
  errors_ = metrics_->RegisterCounter("serve.errors");
  unknown_terms_ = metrics_->RegisterCounter("serve.unknown_terms");
  stale_vocab_ = metrics_->RegisterCounter("serve.queries.stale_vocab");
  delta_folded_ = metrics_->RegisterCounter("serve.delta.folded");
  reloads_ = metrics_->RegisterCounter("serve.reloads");
  delta_docs_gauge_ = metrics_->RegisterGauge("serve.delta.docs");
  pending_terms_gauge_ = metrics_->RegisterGauge("serve.delta.pending_terms");
  cache_size_ = metrics_->RegisterGauge("serve.cache.size");
  cache_capacity_ = metrics_->RegisterGauge("serve.cache.capacity");
  cache_evictions_ = metrics_->RegisterGauge("serve.cache.evictions");
  cache_insertions_ = metrics_->RegisterGauge("serve.cache.insertions");
  predict_latency_ = metrics_->RegisterHistogram("serve.predict_us");
  nearest_latency_ = metrics_->RegisterHistogram("serve.nearest_us");
  similar_latency_ = metrics_->RegisterHistogram("serve.similar_us");
  topic_card_latency_ = metrics_->RegisterHistogram("serve.topic_card_us");
}

QueryEngine::~QueryEngine() = default;

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    const QueryEngineConfig& config,
    std::shared_ptr<const ServingSnapshot> snapshot,
    const recipe::Dataset* corpus) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("query engine: snapshot is null");
  }
  if (config.fold_in_sweeps < 1) {
    return Status::InvalidArgument("query engine: fold_in_sweeps must be >= 1");
  }
  if (config.alpha <= 0.0) {
    return Status::InvalidArgument("query engine: alpha must be positive");
  }
  if (config.cache_quantum <= 0.0) {
    return Status::InvalidArgument(
        "query engine: cache_quantum must be positive");
  }
  if (config.batch_max_size < 1 || config.max_queue < 1) {
    return Status::InvalidArgument(
        "query engine: batch_max_size and max_queue must be >= 1");
  }
  if (config.num_threads < 0) {
    return Status::InvalidArgument("query engine: num_threads must be >= 0");
  }
  auto engine =
      std::unique_ptr<QueryEngine>(new QueryEngine(config, corpus));
  engine->state_ = BuildState(std::move(snapshot), corpus);
  int threads = config.num_threads == 0 ? ThreadPool::HardwareConcurrency()
                                        : config.num_threads;
  engine->pool_ = std::make_unique<ThreadPool>(threads);
  FoldInBatcher::Options batch_options;
  batch_options.max_queue = config.max_queue;
  batch_options.max_batch = config.batch_max_size;
  batch_options.linger_micros = config.batch_linger_micros;
  batch_options.metrics = engine->metrics_.get();
  QueryEngine* raw = engine.get();
  engine->batcher_ = std::make_unique<FoldInBatcher>(
      batch_options,
      [raw](std::vector<FoldInJob>& batch) { raw->RunBatch(batch); });
  // Registered after the batcher's counters on purpose: completed is the
  // last counter a request touches, so it must be the first one a snapshot
  // reads (TakeSnapshot reads in reverse registration order).
  engine->queries_completed_ =
      engine->metrics_->RegisterCounter("serve.queries.completed");
  return engine;
}

std::shared_ptr<const QueryEngine::ServingState> QueryEngine::state() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

std::shared_ptr<const QueryEngine::ServingState> QueryEngine::BuildState(
    std::shared_ptr<const ServingSnapshot> snapshot,
    const recipe::Dataset* corpus) {
  auto state = std::make_shared<ServingState>();
  state->topic_docs.resize(static_cast<size_t>(snapshot->num_topics()));
  if (corpus != nullptr) {
    for (size_t d = 0; d < corpus->documents.size(); ++d) {
      int k = snapshot->InferTopicForFeatures(
          corpus->documents[d].gel_feature);
      state->topic_docs[static_cast<size_t>(k)].push_back(d);
    }
    // Remap each document's term bag into the snapshot's vocabulary via
    // surface forms: the corpus may have been indexed against a different
    // (or older) model, so corpus ids are not trusted to line up. The
    // result is sorted-unique — both consumers treat the bag as a set.
    std::vector<int32_t> remap(corpus->term_vocab.size(),
                               text::Vocabulary::kUnknownId);
    for (size_t v = 0; v < corpus->term_vocab.size(); ++v) {
      remap[v] =
          snapshot->WordId(corpus->term_vocab.WordOf(static_cast<int32_t>(v)));
    }
    state->doc_terms.resize(corpus->documents.size());
    for (size_t d = 0; d < corpus->documents.size(); ++d) {
      std::vector<int32_t>& terms = state->doc_terms[d];
      terms.reserve(corpus->documents[d].term_ids.size());
      for (int32_t id : corpus->documents[d].term_ids) {
        if (id < 0 || static_cast<size_t>(id) >= remap.size()) continue;
        int32_t mapped = remap[static_cast<size_t>(id)];
        if (mapped != text::Vocabulary::kUnknownId) terms.push_back(mapped);
      }
      std::sort(terms.begin(), terms.end());
      terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    }
    if (snapshot->has_embeddings()) {
      state->embedding_index = std::make_unique<embed::EmbeddingIndex>(
          snapshot->embedding_view(), state->doc_terms);
    }
  }
  state->snapshot = std::move(snapshot);
  return state;
}

std::vector<int32_t> QueryEngine::ResolveTerms(
    const ServingSnapshot& snapshot, const std::vector<std::string>& terms) {
  std::vector<int32_t> ids;
  ids.reserve(terms.size());
  for (const std::string& term : terms) {
    int32_t id = snapshot.WordId(term);
    if (id == text::Vocabulary::kUnknownId) {
      unknown_terms_->Increment();
      continue;
    }
    ids.push_back(id);
  }
  return ids;
}

Status QueryEngine::CheckTermFreshness(
    const ServingSnapshot& snapshot, const std::vector<std::string>& terms) {
  if (terms.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(delta_mu_);
  if (pending_terms_.empty()) return Status::OK();
  for (const std::string& term : terms) {
    if (snapshot.WordId(term) != text::Vocabulary::kUnknownId) continue;
    if (pending_terms_.count(term) != 0) {
      stale_vocab_->Increment();
      return Status::FailedPrecondition(
          "texture term '" + term +
          "' is in the ingest pipeline but not yet in the served "
          "vocabulary; retry after the next model refresh");
    }
  }
  return Status::OK();
}

std::vector<std::pair<size_t, QueryEngine::DeltaDoc>> QueryEngine::DeltaOfTopic(
    int topic) const {
  std::vector<std::pair<size_t, DeltaDoc>> out;
  std::lock_guard<std::mutex> lock(delta_mu_);
  for (size_t i = 0; i < delta_docs_.size(); ++i) {
    if (delta_docs_[i].topic == topic) out.emplace_back(i, delta_docs_[i]);
  }
  return out;
}

Status QueryEngine::ValidateQuery(const TextureQuery& query) const {
  if (!query.gel_concentration.empty() &&
      query.gel_concentration.size() != recipe::kNumGelTypes) {
    return Status::InvalidArgument("gel concentration must have dimension " +
                                   std::to_string(recipe::kNumGelTypes));
  }
  if (!query.emulsion_concentration.empty() &&
      query.emulsion_concentration.size() != recipe::kNumEmulsionTypes) {
    return Status::InvalidArgument(
        "emulsion concentration must have dimension " +
        std::to_string(recipe::kNumEmulsionTypes));
  }
  auto finite_ratios = [](const math::Vector& v) {
    for (size_t i = 0; i < v.size(); ++i) {
      if (!std::isfinite(v[i]) || v[i] < 0.0 || v[i] > 1.0) return false;
    }
    return true;
  };
  if (!finite_ratios(query.gel_concentration) ||
      !finite_ratios(query.emulsion_concentration)) {
    return Status::InvalidArgument(
        "concentrations must be finite ratios in [0, 1]");
  }
  return Status::OK();
}

TexturePrediction QueryEngine::BuildPrediction(
    const ServingSnapshot& snapshot, std::vector<double> theta) const {
  TexturePrediction prediction;
  prediction.model_fingerprint = snapshot.fingerprint();
  prediction.topic = static_cast<int>(
      std::max_element(theta.begin(), theta.end()) - theta.begin());
  // Theta-weighted mixtures over topics: per-pole masses and term marginal.
  std::vector<double> mix(snapshot.vocab_size(), 0.0);
  for (size_t k = 0; k < theta.size(); ++k) {
    const CategoryMasses& m = snapshot.term_summary(static_cast<int>(k)).masses;
    double w = theta[k];
    prediction.categories.hard += w * m.hard;
    prediction.categories.soft += w * m.soft;
    prediction.categories.elastic += w * m.elastic;
    prediction.categories.crumbly += w * m.crumbly;
    prediction.categories.sticky += w * m.sticky;
    prediction.categories.dry += w * m.dry;
    prediction.categories.other += w * m.other;
    std::span<const double> row = snapshot.phi(static_cast<int>(k));
    for (size_t v = 0; v < mix.size(); ++v) mix[v] += w * row[v];
  }
  std::vector<size_t> order(mix.size());
  for (size_t v = 0; v < order.size(); ++v) order[v] = v;
  size_t keep = std::min<size_t>(static_cast<size_t>(config_.top_terms),
                                 order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                    order.end(),
                    [&mix](size_t a, size_t b) { return mix[a] > mix[b]; });
  for (size_t i = 0; i < keep; ++i) {
    prediction.top_terms.emplace_back(std::string(snapshot.word(order[i])),
                                      mix[order[i]]);
  }
  prediction.theta = std::move(theta);
  return prediction;
}

void QueryEngine::RunBatch(std::vector<FoldInJob>& batch) {
  // The dispatch span is a root (one batch serves many requests); each
  // job's fold_in span instead parents to its request's admission span via
  // the id carried in the job, keeping the per-request chain intact.
  obs::TraceSpan dispatch;
  obs::Tracer* tracer = config_.tracer;
  if (tracer != nullptr) dispatch = tracer->StartSpan("batch_dispatch");
  // Fan the batch across the pool; each job's RNG is keyed on its admission
  // sequence, so results are independent of batch composition and of which
  // worker runs the job.
  pool_->ParallelFor(
      static_cast<int>(batch.size()), [this, tracer, &batch](int i) {
        FoldInJob& job = batch[static_cast<size_t>(i)];
        obs::TraceSpan fold;
        if (tracer != nullptr) {
          fold = tracer->StartSpanWithParent("fold_in", job.trace_parent);
        }
        Rng rng = Rng::ForStream(config_.seed, job.sequence);
        job.result.set_value(job.snapshot->FoldInTheta(
            job.term_ids, job.gel_feature, config_.fold_in_sweeps,
            config_.alpha, rng));
      });
}

StatusOr<TexturePrediction> QueryEngine::PredictTexture(
    const TextureQuery& query, Deadline deadline, uint64_t trace_parent) {
  QueryScope scope(queries_accepted_, queries_completed_, predict_latency_);
  // Admission covers validation, term resolution, the cache probe and the
  // batcher hand-off; the wait for the fold-in result is deliberately
  // outside it (queue time shows up between admission and fold_in spans).
  obs::TraceSpan admission;
  if (config_.tracer != nullptr) {
    admission =
        config_.tracer->StartSpanWithParent("admission", trace_parent);
  }
  TEXRHEO_RETURN_IF_ERROR(ValidateQuery(query));
  std::shared_ptr<const ServingState> state = this->state();
  const ServingSnapshot& snapshot = *state->snapshot;
  TEXRHEO_RETURN_IF_ERROR(
      CheckTermFreshness(snapshot, query.texture_terms));

  math::Vector gel =
      OrZeros(query.gel_concentration, recipe::kNumGelTypes);
  math::Vector emulsion =
      OrZeros(query.emulsion_concentration, recipe::kNumEmulsionTypes);
  std::vector<int32_t> term_ids =
      ResolveTerms(snapshot, query.texture_terms);

  std::string key =
      CanonicalQueryKey(gel, emulsion, term_ids, config_.cache_quantum);
  if (std::optional<TexturePrediction> hit = cache_.Get(key)) {
    cache_hits_->Increment();
    hit->from_cache = true;
    return *std::move(hit);
  }
  cache_misses_->Increment();

  FoldInJob job;
  job.snapshot = state->snapshot;
  job.term_ids = std::move(term_ids);
  job.gel_feature = recipe::ToFeature(gel, config_.feature);
  job.sequence = sequence_.fetch_add(1, std::memory_order_relaxed);
  job.deadline = deadline;
  job.trace_parent = admission.span_id();
  auto future_or = batcher_->Submit(std::move(job));
  admission.End();
  if (!future_or.ok()) {
    errors_->Increment();
    return future_or.status();
  }
  StatusOr<std::vector<double>> theta = future_or->get();
  if (!theta.ok()) {
    errors_->Increment();
    return theta.status();
  }
  TexturePrediction prediction =
      BuildPrediction(snapshot, std::move(theta).value());
  cache_.Put(key, prediction);
  return prediction;
}

StatusOr<std::vector<RheologyMatch>> QueryEngine::NearestRheology(
    int topic, const core::LinkageOptions* options) {
  QueryScope scope(queries_accepted_, queries_completed_, nearest_latency_);
  std::shared_ptr<const ServingState> state = this->state();
  const ServingSnapshot& snapshot = *state->snapshot;
  if (topic < 0 || topic >= snapshot.num_topics()) {
    return Status::OutOfRange("topic index out of range");
  }
  const core::LinkageOptions& opts =
      options != nullptr ? *options : config_.linkage;
  const std::vector<rheology::EmpiricalSetting>& settings =
      rheology::TableI();
  auto links_or = core::LinkSettingsToTopics(snapshot.estimates(), settings,
                                             config_.feature, opts);
  if (!links_or.ok()) {
    errors_->Increment();
    return links_or.status();
  }
  std::vector<RheologyMatch> matches;
  matches.reserve(settings.size());
  for (size_t i = 0; i < settings.size(); ++i) {
    RheologyMatch match;
    match.setting_id = settings[i].id;
    match.source = settings[i].source;
    match.attributes = settings[i].attributes;
    match.divergence =
        (*links_or)[i].divergence_by_topic[static_cast<size_t>(topic)];
    matches.push_back(std::move(match));
  }
  std::sort(matches.begin(), matches.end(),
            [](const RheologyMatch& a, const RheologyMatch& b) {
              return a.divergence < b.divergence;
            });
  return matches;
}

StatusOr<SimilarRecipesResult> QueryEngine::SimilarRecipes(
    const TextureQuery& query, size_t top_n, Deadline deadline,
    uint64_t trace_parent, SimilarityMode mode) {
  QueryScope scope(queries_accepted_, queries_completed_, similar_latency_);
  similar_mode_[static_cast<size_t>(mode)]->Increment();
  TEXRHEO_RETURN_IF_ERROR(ValidateQuery(query));
  if (corpus_ == nullptr) {
    return Status::FailedPrecondition(
        "similar-recipes requires an indexed corpus (engine built without "
        "one)");
  }
  std::shared_ptr<const ServingState> state = this->state();
  const ServingSnapshot& snapshot = *state->snapshot;
  TEXRHEO_RETURN_IF_ERROR(
      CheckTermFreshness(snapshot, query.texture_terms));

  const bool needs_embeddings =
      mode == SimilarityMode::kEmbed || mode == SimilarityMode::kFused;
  if (needs_embeddings && state->embedding_index == nullptr) {
    return Status::FailedPrecondition(
        std::string("similar-recipes mode=") + SimilarityModeName(mode) +
        " requires a model packed with ingredient embeddings (this snapshot "
        "has none)");
  }

  math::Vector gel = OrZeros(query.gel_concentration, recipe::kNumGelTypes);
  math::Vector emulsion =
      OrZeros(query.emulsion_concentration, recipe::kNumEmulsionTypes);
  std::vector<int32_t> term_ids = ResolveTerms(snapshot, query.texture_terms);
  std::sort(term_ids.begin(), term_ids.end());
  term_ids.erase(std::unique(term_ids.begin(), term_ids.end()),
                 term_ids.end());
  if (mode == SimilarityMode::kEmbed && term_ids.empty()) {
    return Status::InvalidArgument(
        "similar-recipes mode=embed needs at least one in-vocabulary "
        "texture term (terms=...) to build a query vector");
  }

  // Mode and size are part of the key (and the embedded PredictTexture has
  // its own mode-less cache): a kl answer can never satisfy a fused probe.
  std::string key = CanonicalQueryKey(gel, emulsion, term_ids,
                                      config_.cache_quantum,
                                      SimilarityModeName(mode));
  key += "|n:" + std::to_string(top_n);
  // The streamed delta changes what a ranking should return without any
  // reload; versioning the key retires stale entries instead of flushing.
  key += "|dg:" +
         std::to_string(delta_generation_.load(std::memory_order_acquire));
  if (std::optional<SimilarRecipesResult> hit = similar_cache_.Get(key)) {
    similar_cache_hits_->Increment();
    hit->from_cache = true;
    return *std::move(hit);
  }
  similar_cache_misses_->Increment();

  SimilarRecipesResult result;
  result.mode = mode;
  if (query.texture_terms.empty()) {
    // Feature-only query: place it by gel Gaussian (fast path, no fold-in).
    math::Vector gel_feature = recipe::ToFeature(gel, config_.feature);
    result.topic = snapshot.InferTopicForFeatures(gel_feature);
  } else {
    TEXRHEO_ASSIGN_OR_RETURN(TexturePrediction prediction,
                             PredictTexture(query, deadline, trace_parent));
    result.topic = prediction.topic;
  }

  const std::vector<size_t>& members =
      state->topic_docs[static_cast<size_t>(result.topic)];

  // Backends, each producing a full ascending ranking of `members`.
  auto rank_kl = [&]() -> StatusOr<std::vector<RankedDoc>> {
    auto ranked_or = eval::RankByEmulsionKL(*corpus_, members, emulsion);
    if (!ranked_or.ok()) return ranked_or.status();
    std::vector<RankedDoc> ranking;
    ranking.reserve(ranked_or->size());
    for (const eval::RankedRecipe& r : *ranked_or) {
      ranking.push_back(RankedDoc{r.doc_index, r.divergence});
    }
    return ranking;
  };
  auto rank_embed = [&]() {
    std::vector<embed::EmbeddingIndex::Ranked> ranked =
        state->embedding_index->RankByCosine(term_ids, members);
    std::vector<RankedDoc> ranking;
    ranking.reserve(ranked.size());
    for (const auto& r : ranked) {
      ranking.push_back(RankedDoc{r.doc, r.distance});
    }
    return ranking;
  };
  auto rank_lexical = [&]() {
    std::vector<RankedDoc> ranking;
    ranking.reserve(members.size());
    for (size_t d : members) {
      ranking.push_back(
          RankedDoc{d, JaccardDistance(term_ids, state->doc_terms[d])});
    }
    SortRanking(ranking);
    return ranking;
  };

  std::vector<RankedDoc> ranking;
  // Fused mode keeps its backend rankings so streamed-delta documents can
  // be scored by insertion rank below.
  std::vector<RankedDoc> kl_rank;
  std::vector<RankedDoc> embed_rank;
  std::vector<RankedDoc> lex_rank;
  if (mode == SimilarityMode::kKl) {
    auto kl_or = rank_kl();
    if (!kl_or.ok()) {
      errors_->Increment();
      return kl_or.status();
    }
    ranking = *std::move(kl_or);
  } else if (mode == SimilarityMode::kEmbed) {
    ranking = rank_embed();
  } else if (mode == SimilarityMode::kLexical) {
    ranking = rank_lexical();
  } else {
    // Weighted reciprocal-rank fusion. Every member appears in every
    // backend's full ranking, so each accumulates all three contributions.
    // With no usable terms the embed and lexical perspectives carry no
    // signal (all-tied rankings) and fusion degrades toward pure KL order.
    auto kl_or = rank_kl();
    if (!kl_or.ok()) {
      errors_->Increment();
      return kl_or.status();
    }
    kl_rank = *std::move(kl_or);
    if (!term_ids.empty()) {
      embed_rank = rank_embed();
      lex_rank = rank_lexical();
    }
    std::vector<double> score(corpus_->documents.size(), 0.0);
    auto accumulate = [&](const std::vector<RankedDoc>& backend, double w) {
      for (size_t r = 0; r < backend.size(); ++r) {
        score[backend[r].doc] +=
            w / (config_.fusion_rrf_k + static_cast<double>(r + 1));
      }
    };
    accumulate(kl_rank, config_.fusion_kl_weight);
    if (!term_ids.empty()) {
      accumulate(embed_rank, config_.fusion_embed_weight);
      accumulate(lex_rank, config_.fusion_lexical_weight);
    }
    ranking.reserve(members.size());
    // Negated so "ascending divergence = nearest first" holds for fused
    // results too.
    for (size_t d : members) ranking.push_back(RankedDoc{d, -score[d]});
    SortRanking(ranking);
  }

  // --- Streamed delta: recipes folded in since the last reload -----------
  // Delta members of the query's topic join the ranking under the same
  // distance as the corpus members; their recipe_index starts at the
  // corpus size, which is how the protocol layer tells them apart.
  std::vector<std::pair<size_t, DeltaDoc>> delta = DeltaOfTopic(result.topic);
  if (!delta.empty()) {
    const size_t base = corpus_->documents.size();
    std::vector<float> query_vec;
    double query_norm = 0.0;
    if (state->embedding_index != nullptr) {
      query_vec = state->embedding_index->MeanVector(term_ids);
      for (float x : query_vec) query_norm += static_cast<double>(x) * x;
      query_norm = std::sqrt(query_norm);
    }
    auto kl_dist = [&](const DeltaDoc& doc) {
      auto kl = math::DiscreteKL(doc.emulsion_concentration, emulsion, 1e-4);
      return kl.ok() ? *kl : std::numeric_limits<double>::infinity();
    };
    auto embed_dist = [&](const DeltaDoc& doc) {
      if (state->embedding_index == nullptr) return 2.0;
      std::vector<float> doc_vec =
          state->embedding_index->MeanVector(doc.term_ids);
      double doc_norm = 0.0;
      double dot = 0.0;
      for (size_t i = 0; i < doc_vec.size(); ++i) {
        doc_norm += static_cast<double>(doc_vec[i]) * doc_vec[i];
        dot += static_cast<double>(doc_vec[i]) * query_vec[i];
      }
      doc_norm = std::sqrt(doc_norm);
      // Same zero-norm sentinel as EmbeddingIndex::CosineDistance.
      if (doc_norm == 0.0 || query_norm == 0.0) return 2.0;
      return 1.0 - dot / (doc_norm * query_norm);
    };
    auto lex_dist = [&](const DeltaDoc& doc) {
      return JaccardDistance(term_ids, doc.term_ids);
    };
    // 1-based rank the distance would take in an ascending backend ranking.
    auto insertion_rank = [](const std::vector<RankedDoc>& sorted,
                             double dist) {
      size_t lo = 0;
      size_t hi = sorted.size();
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (sorted[mid].distance < dist) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return static_cast<double>(lo + 1);
    };
    for (const auto& [i, doc] : delta) {
      double dist = 0.0;
      if (mode == SimilarityMode::kKl) {
        dist = kl_dist(doc);
      } else if (mode == SimilarityMode::kEmbed) {
        dist = embed_dist(doc);
      } else if (mode == SimilarityMode::kLexical) {
        dist = lex_dist(doc);
      } else {
        double score = config_.fusion_kl_weight /
                       (config_.fusion_rrf_k +
                        insertion_rank(kl_rank, kl_dist(doc)));
        if (!term_ids.empty()) {
          score += config_.fusion_embed_weight /
                   (config_.fusion_rrf_k +
                    insertion_rank(embed_rank, embed_dist(doc)));
          score += config_.fusion_lexical_weight /
                   (config_.fusion_rrf_k +
                    insertion_rank(lex_rank, lex_dist(doc)));
        }
        dist = -score;
      }
      ranking.push_back(RankedDoc{base + i, dist});
    }
    SortRanking(ranking);
  }

  size_t keep = top_n == 0 ? config_.max_similar : top_n;
  keep = std::min(keep, ranking.size());
  result.recipes.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    result.recipes.push_back(
        SimilarRecipe{ranking[i].doc, ranking[i].distance});
  }
  similar_cache_.Put(key, result);
  return result;
}

StatusOr<TopicCardResult> QueryEngine::TopicCard(int topic) {
  QueryScope scope(queries_accepted_, queries_completed_,
                   topic_card_latency_);
  std::shared_ptr<const ServingState> state = this->state();
  const ServingSnapshot& snapshot = *state->snapshot;
  if (topic < 0 || topic >= snapshot.num_topics()) {
    return Status::OutOfRange("topic index out of range");
  }
  const core::TopicEstimates& est = snapshot.estimates();
  const TopicTermSummary& summary = snapshot.term_summary(topic);
  TopicCardResult card;
  card.topic = topic;
  if (!est.topic_recipe_count.empty()) {
    card.recipe_count = est.topic_recipe_count[static_cast<size_t>(topic)];
  }
  card.top_terms = summary.top_terms;
  if (card.top_terms.size() > static_cast<size_t>(config_.top_terms)) {
    card.top_terms.resize(static_cast<size_t>(config_.top_terms));
  }
  card.categories = summary.masses;
  card.gel_mean_concentration = recipe::FromFeature(
      est.gel_topics[static_cast<size_t>(topic)].mean(), config_.feature);
  card.emulsion_mean_concentration = recipe::FromFeature(
      est.emulsion_topics[static_cast<size_t>(topic)].mean(),
      config_.feature);
  return card;
}

StatusOr<int> QueryEngine::FoldInDelta(const TextureQuery& query,
                                       uint64_t ingest_sequence,
                                       Deadline deadline) {
  // Deliberately not a QueryScope: fold-ins are pipeline work, not client
  // queries, and the ingest layer keeps its own accepted/folded counters.
  TEXRHEO_RETURN_IF_ERROR(ValidateQuery(query));
  std::shared_ptr<const ServingState> state = this->state();
  const ServingSnapshot& snapshot = *state->snapshot;

  math::Vector gel = OrZeros(query.gel_concentration, recipe::kNumGelTypes);
  math::Vector emulsion =
      OrZeros(query.emulsion_concentration, recipe::kNumEmulsionTypes);
  // Terms outside the served vocabulary are dropped here; the ingest layer
  // separately registers them via NotePendingTerms so queries naming them
  // fail clean until the next refresh absorbs them.
  std::vector<int32_t> term_ids = ResolveTerms(snapshot, query.texture_terms);

  FoldInJob job;
  job.snapshot = state->snapshot;
  job.term_ids = term_ids;
  job.gel_feature = recipe::ToFeature(gel, config_.feature);
  job.sequence = sequence_.fetch_add(1, std::memory_order_relaxed);
  job.deadline = deadline;
  auto future_or = batcher_->Submit(std::move(job));
  if (!future_or.ok()) {
    errors_->Increment();
    return future_or.status();
  }
  StatusOr<std::vector<double>> theta = future_or->get();
  if (!theta.ok()) {
    errors_->Increment();
    return theta.status();
  }
  DeltaDoc doc;
  doc.ingest_sequence = ingest_sequence;
  doc.topic = static_cast<int>(
      std::max_element(theta->begin(), theta->end()) - theta->begin());
  doc.emulsion_concentration = std::move(emulsion);
  doc.term_ids = std::move(term_ids);
  const int topic = doc.topic;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    delta_docs_.push_back(std::move(doc));
  }
  delta_folded_->Increment();
  delta_generation_.fetch_add(1, std::memory_order_acq_rel);
  return topic;
}

void QueryEngine::NotePendingTerms(const std::vector<std::string>& terms) {
  if (terms.empty()) return;
  std::shared_ptr<const ServingState> state = this->state();
  const ServingSnapshot& snapshot = *state->snapshot;
  std::lock_guard<std::mutex> lock(delta_mu_);
  for (const std::string& term : terms) {
    if (snapshot.WordId(term) == text::Vocabulary::kUnknownId) {
      pending_terms_.insert(term);
    }
  }
}

DeltaStats QueryEngine::GetDeltaStats() const {
  DeltaStats stats;
  stats.folded = delta_folded_->Value();
  stats.stale_vocab_queries = stale_vocab_->Value();
  stats.delta_generation = delta_generation_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(delta_mu_);
  stats.delta_docs = delta_docs_.size();
  stats.pending_terms = pending_terms_.size();
  return stats;
}

std::string QueryEngine::RenderIngestz() const {
  DeltaStats stats = GetDeltaStats();
  std::shared_ptr<const ServingSnapshot> snapshot = this->snapshot();
  char fp[16];
  std::snprintf(fp, sizeof(fp), "%08x", snapshot->fingerprint());
  std::ostringstream out;
  out << "texrheo_serve ingestz\n";
  out << "model: fingerprint=" << fp << "\n";
  out << "delta: docs=" << stats.delta_docs << " folded=" << stats.folded
      << " generation=" << stats.delta_generation << "\n";
  out << "vocab: pending_terms=" << stats.pending_terms
      << " stale_vocab_queries=" << stats.stale_vocab_queries << "\n";
  return out.str();
}

Status QueryEngine::Reload(std::shared_ptr<const ServingSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("reload: snapshot is null");
  }
  std::shared_ptr<const ServingState> fresh =
      BuildState(std::move(snapshot), corpus_);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    state_ = std::move(fresh);
  }
  // Flush *after* publishing: a result computed against the old model can
  // re-enter the cache between a flush-then-publish, but not the reverse
  // ordering... it still can (a slow in-flight Put lands late). That is
  // acceptable staleness: entries carry the model fingerprint, and the
  // next eviction or reload clears them; correctness-critical readers
  // compare fingerprints.
  cache_.Clear();
  similar_cache_.Clear();
  // The refreshed model has absorbed the streamed recipes (the ingest
  // layer re-folds any the refresh did not cover), so the resident delta
  // is dropped wholesale; pending terms now present in the new vocabulary
  // resolve and stop failing queries.
  {
    std::shared_ptr<const ServingState> current = this->state();
    const ServingSnapshot& snap = *current->snapshot;
    std::lock_guard<std::mutex> lock(delta_mu_);
    delta_docs_.clear();
    for (auto it = pending_terms_.begin(); it != pending_terms_.end();) {
      if (snap.WordId(*it) != text::Vocabulary::kUnknownId) {
        it = pending_terms_.erase(it);
      } else {
        ++it;
      }
    }
  }
  delta_generation_.fetch_add(1, std::memory_order_acq_rel);
  reloads_->Increment();
  return Status::OK();
}

Status QueryEngine::ReloadFromFile(const std::string& path) {
  TEXRHEO_ASSIGN_OR_RETURN(std::shared_ptr<const ServingSnapshot> snapshot,
                           ServingSnapshot::FromFile(path));
  return Reload(std::move(snapshot));
}

std::shared_ptr<const ServingSnapshot> QueryEngine::snapshot() const {
  return state()->snapshot;
}

QueryEngineStats QueryEngine::GetStats() const {
  QueryEngineStats stats;
  stats.predict = predict_latency_->TakeSnapshot();
  stats.nearest = nearest_latency_->TakeSnapshot();
  stats.similar = similar_latency_->TakeSnapshot();
  stats.topic_card = topic_card_latency_->TakeSnapshot();
  stats.cache = cache_.Stats();
  stats.batcher = batcher_->GetStats();
  stats.reloads = reloads_->Value();
  stats.errors = errors_->Value();
  stats.unknown_terms = unknown_terms_->Value();
  stats.model_fingerprint = state()->snapshot->fingerprint();
  return stats;
}

void QueryEngine::RefreshDerivedGauges() const {
  // The LRU cache keeps its own internal tallies (it predates the
  // registry and its occupancy is not an event stream); mirror them into
  // gauges right before a snapshot so renders always see current values.
  LruCacheStats cache = cache_.Stats();
  cache_size_->Set(static_cast<double>(cache.size));
  cache_capacity_->Set(static_cast<double>(cache.capacity));
  cache_evictions_->Set(static_cast<double>(cache.evictions));
  cache_insertions_->Set(static_cast<double>(cache.insertions));
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    delta_docs_gauge_->Set(static_cast<double>(delta_docs_.size()));
    pending_terms_gauge_->Set(static_cast<double>(pending_terms_.size()));
  }
}

obs::MetricsSnapshot QueryEngine::TakeMetricsSnapshot() const {
  RefreshDerivedGauges();
  return metrics_->TakeSnapshot();
}

std::string QueryEngine::RenderStatsz(const obs::MetricsSnapshot& snap) const {
  std::shared_ptr<const ServingSnapshot> snapshot = this->snapshot();
  std::ostringstream out;
  char fp[16];
  std::snprintf(fp, sizeof(fp), "%08x", snapshot->fingerprint());
  out << "texrheo_serve statsz\n";
  out << "model: fingerprint=" << fp << " topics=" << snapshot->num_topics()
      << " vocab=" << snapshot->vocab_size()
      << " source=" << snapshot->source()
      << " reloads=" << snap.CounterValue("serve.reloads") << "\n";
  const uint64_t hits = snap.CounterValue("serve.cache.hits");
  const uint64_t misses = snap.CounterValue("serve.cache.misses");
  out << "cache: capacity="
      << static_cast<uint64_t>(snap.GaugeValue("serve.cache.capacity"))
      << " size=" << static_cast<uint64_t>(snap.GaugeValue("serve.cache.size"))
      << " hits=" << hits << " misses=" << misses << " evictions="
      << static_cast<uint64_t>(snap.GaugeValue("serve.cache.evictions"))
      << " hit_rate=";
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.4f",
                hits + misses == 0
                    ? 0.0
                    : static_cast<double>(hits) /
                          static_cast<double>(hits + misses));
  out << rate << "\n";
  const uint64_t batches = snap.CounterValue("serve.batcher.batches");
  const uint64_t jobs = snap.CounterValue("serve.batcher.jobs_processed");
  out << "batcher: submitted=" << snap.CounterValue("serve.batcher.submitted")
      << " shed=" << snap.CounterValue("serve.batcher.shed")
      << " deadline_expired="
      << snap.CounterValue("serve.batcher.deadline_expired")
      << " batches=" << batches << " jobs=" << jobs << " mean_batch=";
  std::snprintf(rate, sizeof(rate), "%.2f",
                batches == 0 ? 0.0
                             : static_cast<double>(jobs) /
                                   static_cast<double>(batches));
  out << rate << " max_batch="
      << static_cast<uint64_t>(snap.GaugeValue("serve.batcher.max_batch_size"))
      << "\n";
  out << "queries: accepted=" << snap.CounterValue("serve.queries.accepted")
      << " completed=" << snap.CounterValue("serve.queries.completed")
      << "\n";
  out << "errors: total=" << snap.CounterValue("serve.errors")
      << " unknown_terms=" << snap.CounterValue("serve.unknown_terms")
      << "\n";
  auto line = [&out, &snap](const char* label, const char* metric) {
    static const LatencyHistogram::Snapshot kEmpty;
    const LatencyHistogram::Snapshot* h = snap.Histogram(metric);
    if (h == nullptr) h = &kEmpty;
    out << label << ": count=" << h->count << " mean_us=";
    char mean[32];
    std::snprintf(mean, sizeof(mean), "%.1f", h->MeanMicros());
    out << mean << " p50_us=" << h->QuantileUpperBound(0.50)
        << " p95_us=" << h->QuantileUpperBound(0.95)
        << " p99_us=" << h->QuantileUpperBound(0.99)
        << " max_us=" << h->max_micros << "\n";
  };
  line("predict_texture", "serve.predict_us");
  line("nearest_rheology", "serve.nearest_us");
  line("similar_recipes", "serve.similar_us");
  line("topic_card", "serve.topic_card_us");
  return out.str();
}

std::string QueryEngine::Statsz() const {
  return RenderStatsz(TakeMetricsSnapshot());
}

std::string QueryEngine::MetricszJson() const {
  obs::MetricsSnapshot snap = TakeMetricsSnapshot();
  std::shared_ptr<const ServingSnapshot> snapshot = this->snapshot();
  JsonValue root = snap.ToJson();
  char fp[16];
  std::snprintf(fp, sizeof(fp), "%08x", snapshot->fingerprint());
  JsonValue model = JsonValue::MakeObject();
  model.AsObject()["fingerprint"] = JsonValue::String(fp);
  model.AsObject()["topics"] =
      JsonValue::Number(static_cast<double>(snapshot->num_topics()));
  model.AsObject()["vocab"] =
      JsonValue::Number(static_cast<double>(snapshot->vocab_size()));
  model.AsObject()["source"] = JsonValue::String(snapshot->source());
  root.AsObject()["model"] = std::move(model);
  return root.Serialize();
}

}  // namespace texrheo::serve
