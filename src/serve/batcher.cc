#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace texrheo::serve {

FoldInBatcher::FoldInBatcher(const Options& options, BatchFn run_batch)
    : options_(options), run_batch_(std::move(run_batch)) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

FoldInBatcher::~FoldInBatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

StatusOr<std::future<StatusOr<std::vector<double>>>> FoldInBatcher::Submit(
    FoldInJob job) {
  std::future<StatusOr<std::vector<double>>> future =
      job.result.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::Unavailable("fold-in batcher is shutting down");
    }
    // Dead on arrival: the request blew its budget before admission (e.g.
    // a slow client took the whole budget just delivering the line).
    if (DeadlineExpired(job.deadline)) {
      ++stats_.deadline_expired;
      return Status::DeadlineExceeded(
          "request deadline expired before fold-in admission");
    }
    if (queue_.size() >= options_.max_queue) {
      ++stats_.shed;
      return Status::Unavailable("fold-in queue full (" +
                                 std::to_string(options_.max_queue) +
                                 " pending); retry later");
    }
    ++stats_.submitted;
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return future;
}

void FoldInBatcher::DispatcherLoop() {
  for (;;) {
    std::vector<FoldInJob> batch;
    std::vector<FoldInJob> expired;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      if (options_.linger_micros > 0 &&
          queue_.size() < options_.max_batch && !shutdown_) {
        // Brief linger: near-simultaneous requests (N client threads firing
        // together) coalesce into one dispatch instead of N.
        work_cv_.wait_for(
            lock, std::chrono::microseconds(options_.linger_micros), [this] {
              return shutdown_ || queue_.size() >= options_.max_batch;
            });
      }
      // Jobs that expired while queued are shed here, before they can
      // occupy a batch slot; the freed slots go to still-live jobs.
      size_t take = 0;
      while (take < options_.max_batch && !queue_.empty()) {
        FoldInJob job = std::move(queue_.front());
        queue_.pop_front();
        if (DeadlineExpired(job.deadline)) {
          ++stats_.deadline_expired;
          expired.push_back(std::move(job));
          continue;
        }
        batch.push_back(std::move(job));
        ++take;
      }
      if (take > 0) {
        ++stats_.batches;
        stats_.jobs_processed += take;
        stats_.max_batch_size =
            std::max<uint64_t>(stats_.max_batch_size, take);
      }
    }
    for (FoldInJob& job : expired) {
      job.result.set_value(Status::DeadlineExceeded(
          "request deadline expired in the fold-in queue"));
    }
    if (!batch.empty()) run_batch_(batch);
  }
}

FoldInBatcher::Stats FoldInBatcher::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace texrheo::serve
