#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace texrheo::serve {

FoldInBatcher::FoldInBatcher(const Options& options, BatchFn run_batch)
    : options_(options), run_batch_(std::move(run_batch)) {
  obs::MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  // Pipeline order: a job is submitted before it is processed, so
  // registering submitted first guarantees snapshots never show
  // jobs_processed > submitted (see MetricsRegistry::TakeSnapshot).
  submitted_ = metrics->RegisterCounter("serve.batcher.submitted");
  shed_ = metrics->RegisterCounter("serve.batcher.shed");
  deadline_expired_ = metrics->RegisterCounter("serve.batcher.deadline_expired");
  batches_ = metrics->RegisterCounter("serve.batcher.batches");
  jobs_processed_ = metrics->RegisterCounter("serve.batcher.jobs_processed");
  max_batch_size_ = metrics->RegisterGauge("serve.batcher.max_batch_size");
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

FoldInBatcher::~FoldInBatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

StatusOr<std::future<StatusOr<std::vector<double>>>> FoldInBatcher::Submit(
    FoldInJob job) {
  std::future<StatusOr<std::vector<double>>> future =
      job.result.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::Unavailable("fold-in batcher is shutting down");
    }
    // Dead on arrival: the request blew its budget before admission (e.g.
    // a slow client took the whole budget just delivering the line).
    if (DeadlineExpired(job.deadline)) {
      deadline_expired_->Increment();
      return Status::DeadlineExceeded(
          "request deadline expired before fold-in admission");
    }
    if (queue_.size() >= options_.max_queue) {
      shed_->Increment();
      return Status::Unavailable("fold-in queue full (" +
                                 std::to_string(options_.max_queue) +
                                 " pending); retry later");
    }
    submitted_->Increment();
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return future;
}

void FoldInBatcher::DispatcherLoop() {
  for (;;) {
    std::vector<FoldInJob> batch;
    std::vector<FoldInJob> expired;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      if (options_.linger_micros > 0 &&
          queue_.size() < options_.max_batch && !shutdown_) {
        // Brief linger: near-simultaneous requests (N client threads firing
        // together) coalesce into one dispatch instead of N.
        work_cv_.wait_for(
            lock, std::chrono::microseconds(options_.linger_micros), [this] {
              return shutdown_ || queue_.size() >= options_.max_batch;
            });
      }
      // Jobs that expired while queued are shed here, before they can
      // occupy a batch slot; the freed slots go to still-live jobs.
      size_t take = 0;
      while (take < options_.max_batch && !queue_.empty()) {
        FoldInJob job = std::move(queue_.front());
        queue_.pop_front();
        if (DeadlineExpired(job.deadline)) {
          deadline_expired_->Increment();
          expired.push_back(std::move(job));
          continue;
        }
        batch.push_back(std::move(job));
        ++take;
      }
      if (take > 0) {
        batches_->Increment();
        jobs_processed_->Increment(take);
        max_batch_size_->SetMax(static_cast<double>(take));
      }
    }
    for (FoldInJob& job : expired) {
      job.result.set_value(Status::DeadlineExceeded(
          "request deadline expired in the fold-in queue"));
    }
    if (!batch.empty()) run_batch_(batch);
  }
}

FoldInBatcher::Stats FoldInBatcher::GetStats() const {
  // Increments all happen under mu_, so holding it here yields the same
  // mutually consistent view the pre-registry struct gave.
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.submitted = submitted_->Value();
  stats.shed = shed_->Value();
  stats.deadline_expired = deadline_expired_->Value();
  stats.batches = batches_->Value();
  stats.jobs_processed = jobs_processed_->Value();
  stats.max_batch_size = static_cast<uint64_t>(max_batch_size_->Value());
  return stats;
}

}  // namespace texrheo::serve
