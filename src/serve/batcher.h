#ifndef TEXRHEO_SERVE_BATCHER_H_
#define TEXRHEO_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "math/linalg.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace texrheo::serve {

/// Absolute per-request time budget, threaded from the protocol front-end
/// through batcher admission into the engine. kNoDeadline means unlimited
/// (the in-process API default), so existing callers are unaffected.
using Deadline = std::chrono::steady_clock::time_point;
inline constexpr Deadline kNoDeadline = Deadline::max();

/// Deadline `budget_millis` from now; <= 0 means unlimited.
inline Deadline DeadlineAfterMillis(int budget_millis) {
  if (budget_millis <= 0) return kNoDeadline;
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(budget_millis);
}

inline bool DeadlineExpired(Deadline deadline) {
  return deadline != kNoDeadline &&
         std::chrono::steady_clock::now() >= deadline;
}

/// One queued fold-in request. The job pins the snapshot that was current
/// when the query was *admitted*: a hot reload between admission and
/// dispatch must not re-map the already-resolved term ids onto a different
/// vocabulary, and pinning is also what makes reload drain-free (in-flight
/// work keeps its model alive via the shared_ptr).
struct FoldInJob {
  std::shared_ptr<const ServingSnapshot> snapshot;
  std::vector<int32_t> term_ids;
  math::Vector gel_feature;
  /// Monotonic admission number; keys the job's private RNG stream, so a
  /// fold-in's sampled theta does not depend on which batch it rode in.
  uint64_t sequence = 0;
  /// Request budget. A job whose deadline has passed is shed with
  /// DeadlineExceeded instead of occupying a batch slot — the caller has
  /// already given up, so folding it in would be pure wasted work.
  Deadline deadline = kNoDeadline;
  /// Span id of the request's admission span (0 = untraced). The fold-in
  /// span created at dispatch parents here, stitching the request ->
  /// admission -> fold-in chain across the queue's thread hop.
  uint64_t trace_parent = 0;
  std::promise<StatusOr<std::vector<double>>> result;
};

/// Bounded fold-in queue with micro-batching and load shedding.
///
/// Concurrent PredictTexture misses enqueue here; a dedicated dispatcher
/// thread collects up to `max_batch` jobs (lingering briefly after the
/// first so near-simultaneous arrivals share a dispatch) and hands them to
/// `run_batch` as one unit. Batching amortizes dispatch overhead and gives
/// the engine a natural place to fan a batch across its ThreadPool.
///
/// Admission control is strict: when `max_queue` jobs are already waiting,
/// Submit fails *immediately* with Unavailable instead of blocking — a
/// serving layer that queues without bound converts overload into
/// unbounded latency for everyone.
class FoldInBatcher {
 public:
  struct Options {
    size_t max_queue = 256;
    size_t max_batch = 16;
    /// How long the dispatcher waits for companions after the first job of
    /// a batch. 0 dispatches immediately (no artificial latency).
    int linger_micros = 200;
    /// Registry the batcher's counters live in (serve.batcher.*). Not
    /// owned; may be null, in which case the batcher keeps a private
    /// registry so the handles always exist. The serving engine always
    /// passes its own registry — that is what makes STATSZ/METRICSZ one
    /// source of truth.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Counters (monotonic except where noted).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t shed = 0;  ///< Rejected by admission control (queue full).
    /// Jobs shed with DeadlineExceeded: either dead on arrival at Submit or
    /// expired in the queue before the dispatcher could batch them.
    uint64_t deadline_expired = 0;
    uint64_t batches = 0;
    uint64_t jobs_processed = 0;
    uint64_t max_batch_size = 0;
    double MeanBatchSize() const {
      return batches == 0 ? 0.0 : static_cast<double>(jobs_processed) /
                                      static_cast<double>(batches);
    }
  };

  using BatchFn = std::function<void(std::vector<FoldInJob>& batch)>;

  /// `run_batch` runs on the dispatcher thread and must fulfil every job's
  /// promise (exactly once).
  FoldInBatcher(const Options& options, BatchFn run_batch);

  /// Drains every queued job through `run_batch`, then joins the
  /// dispatcher. No admitted job is ever dropped.
  ~FoldInBatcher();

  FoldInBatcher(const FoldInBatcher&) = delete;
  FoldInBatcher& operator=(const FoldInBatcher&) = delete;

  /// Admits one fold-in job, or sheds with Unavailable when the queue is
  /// full (or the batcher is shutting down). On success the caller waits
  /// on the returned future.
  StatusOr<std::future<StatusOr<std::vector<double>>>> Submit(FoldInJob job);

  Stats GetStats() const;

 private:
  void DispatcherLoop();

  const Options options_;
  const BatchFn run_batch_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< Signals the dispatcher.
  std::deque<FoldInJob> queue_;      // Guarded by mu_.
  bool shutdown_ = false;            // Guarded by mu_.

  /// Counters live in the registry (single source of truth for statsz /
  /// metricsz); all increments happen under mu_, so GetStats() remains a
  /// mutually consistent view exactly as before the migration.
  /// Registration order follows the job pipeline (submitted before
  /// jobs_processed), which is what makes registry snapshots
  /// monotone-consistent (submitted >= jobs_processed, always).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  ///< Fallback only.
  obs::Counter* submitted_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* deadline_expired_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* jobs_processed_ = nullptr;
  obs::Gauge* max_batch_size_ = nullptr;

  std::thread dispatcher_;
};

}  // namespace texrheo::serve

#endif  // TEXRHEO_SERVE_BATCHER_H_
