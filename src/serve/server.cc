#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "serve/protocol.h"

namespace texrheo::serve {

namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// How long a connection thread parks in one poll() before re-checking the
/// stop/drain flags and its idle budget. Small enough that drain latency
/// and idle-reap precision stay well under any configured timeout.
constexpr int kPollSliceMillis = 50;

long MillisSince(steady_clock::time_point start) {
  return std::chrono::duration_cast<milliseconds>(steady_clock::now() - start)
      .count();
}

}  // namespace

LineProtocolServer::LineProtocolServer(QueryEngine* engine,
                                       const ServerOptions& options)
    : LineProtocolServer(engine, nullptr, engine->metrics(), options) {}

LineProtocolServer::LineProtocolServer(CommandHandler* handler,
                                       obs::MetricsRegistry* metrics,
                                       const ServerOptions& options)
    : LineProtocolServer(nullptr, handler, metrics, options) {}

LineProtocolServer::LineProtocolServer(QueryEngine* engine,
                                       CommandHandler* handler,
                                       obs::MetricsRegistry* metrics,
                                       const ServerOptions& options)
    : engine_(engine),
      handler_(handler),
      options_(options),
      ops_(options.socket_ops != nullptr ? options.socket_ops
                                         : &SocketOps::Real()),
      reload_breaker_(CircuitBreaker::Options{
          options.reload_failure_threshold, options.reload_cooldown_millis}) {
  // All server counters live in one registry (the engine's in engine mode)
  // so one snapshot covers the whole serving stack. received before
  // completed = the monotone-consistency pair (see header).
  requests_received_ = metrics->RegisterCounter("serve.server.requests_received");
  connections_accepted_ =
      metrics->RegisterCounter("serve.server.connections_accepted");
  connections_shed_ = metrics->RegisterCounter("serve.server.connections_shed");
  idle_reaped_ = metrics->RegisterCounter("serve.server.idle_reaped");
  oversized_rejected_ =
      metrics->RegisterCounter("serve.server.oversized_rejected");
  deadlines_exceeded_ =
      metrics->RegisterCounter("serve.server.deadlines_exceeded");
  io_errors_ = metrics->RegisterCounter("serve.server.io_errors");
  reload_failures_ = metrics->RegisterCounter("serve.server.reload_failures");
  reload_rejected_by_breaker_ =
      metrics->RegisterCounter("serve.server.reload_rejected_by_breaker");
  requests_completed_ =
      metrics->RegisterCounter("serve.server.requests_completed");
  current_connections_ =
      metrics->RegisterGauge("serve.server.current_connections");
  peak_connections_ = metrics->RegisterGauge("serve.server.peak_connections");
  if (engine_ != nullptr) {
    // Surface the reload breaker's transitions as counters (not just the
    // STATSZ text section) so METRICSZ consumers see ejections. Counter
    // increments are lock-free, which is what SetListeners requires.
    obs::Counter* trips = metrics->RegisterCounter("serve.breaker.trips");
    obs::Counter* trials =
        metrics->RegisterCounter("serve.breaker.half_open_trials");
    obs::Counter* recoveries =
        metrics->RegisterCounter("serve.breaker.recoveries");
    reload_breaker_.SetListeners(CircuitBreaker::TransitionListeners{
        [trips] { trips->Increment(); },
        [trials] { trials->Increment(); },
        [recoveries] { recoveries->Increment(); }});
  }
}

LineProtocolServer::~LineProtocolServer() { Stop(); }

Status LineProtocolServer::Start() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      options_.loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) < 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LineProtocolServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;

  // Phase 1 — stop accepting. Connection threads observe draining_ within
  // one poll slice; a thread mid-command finishes it and flushes the
  // response before closing (no computed response is ever dropped here).
  draining_.store(true, std::memory_order_release);
  int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() unblocks accept(); close() alone does not on Linux.
    ops_->Shutdown(fd, SHUT_RDWR);
    ops_->Close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Phase 2 — drain: wait for in-flight handlers to finish on their own.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait_for(lock,
                      milliseconds(std::max(0, options_.drain_deadline_millis)),
                      [this] { return active_ == 0; });
  }

  // Phase 3 — force: shut down whatever is still connected. This unblocks
  // threads parked in poll/recv/send; a thread still inside the engine
  // finishes its query and then fails the write cleanly.
  stopping_.store(true, std::memory_order_release);
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int cfd : conn_fds_) ops_->Shutdown(cfd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  stopped_ = true;
}

void LineProtocolServer::AcceptLoop() {
  for (;;) {
    int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;
    int fd = ops_->Accept(lfd);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed) ||
          draining_.load(std::memory_order_relaxed)) {
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return;  // Listener gone.
    }
    SetNonBlocking(fd);
    bool at_capacity;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      at_capacity = conn_fds_.size() >= options_.max_connections;
    }
    if (at_capacity) {
      // Shed at the door: one crisp ERR beats an unbounded connection
      // backlog that turns overload into latency for everyone.
      connections_shed_->Increment();
      WriteAll(fd, "ERR Unavailable: connection capacity (" +
                       std::to_string(options_.max_connections) +
                       ") reached; retry later\n");
      ops_->Close(fd);
      continue;
    }
    connections_accepted_->Increment();
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    double cur = static_cast<double>(conn_fds_.size());
    current_connections_->Set(cur);
    peak_connections_->SetMax(cur);
    ++active_;
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

bool LineProtocolServer::WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  steady_clock::time_point last_progress = steady_clock::now();
  while (sent < data.size()) {
    ssize_t w = ops_->Send(fd, data.data() + sent, data.size() - sent);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      last_progress = steady_clock::now();
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: the peer is not reading. Wait for writability,
      // but only as long as the write-progress budget allows — a stalled
      // reader must not park this thread forever.
      long waited = MillisSince(last_progress);
      if (options_.write_timeout_millis > 0 &&
          waited >= options_.write_timeout_millis) {
        io_errors_->Increment();
        return false;
      }
      int slice = kPollSliceMillis;
      if (options_.write_timeout_millis > 0) {
        slice = static_cast<int>(std::min<long>(
            slice, options_.write_timeout_millis - waited));
      }
      int ready = ops_->Poll(fd, POLLOUT, std::max(1, slice));
      if (ready < 0 && errno != EINTR) {
        io_errors_->Increment();
        return false;
      }
      continue;
    }
    io_errors_->Increment();
    return false;  // Hard error (EPIPE, ECONNRESET, ...).
  }
  return true;
}

void LineProtocolServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[1024];
  bool quit = false;
  // The idle clock measures time since the last *complete request line* —
  // a slow-loris client dripping one byte per interval gains nothing.
  steady_clock::time_point last_line = steady_clock::now();
  while (!quit) {
    if (stopping_.load(std::memory_order_relaxed) ||
        draining_.load(std::memory_order_relaxed)) {
      break;
    }
    int slice = kPollSliceMillis;
    if (options_.idle_timeout_millis > 0) {
      long idle = MillisSince(last_line);
      long remaining = options_.idle_timeout_millis - idle;
      if (remaining <= 0) {
        idle_reaped_->Increment();
        WriteAll(fd, Err(Status::DeadlineExceeded(
                     "idle for more than " +
                     std::to_string(options_.idle_timeout_millis) +
                     " ms; closing")) +
                         "\n");
        break;
      }
      slice = static_cast<int>(std::min<long>(slice, remaining));
    }
    int ready = ops_->Poll(fd, POLLIN, std::max(1, slice));
    if (ready < 0) {
      if (errno == EINTR) continue;
      io_errors_->Increment();
      break;
    }
    if (ready == 0) continue;  // Slice elapsed; re-check stop/idle above.
    ssize_t n = ops_->Recv(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      io_errors_->Increment();
      break;
    }
    if (n == 0) break;  // Peer closed.
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while (!quit && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > options_.max_line_bytes) {
        oversized_rejected_->Increment();
        WriteAll(fd, Err(Status::InvalidArgument(
                     "request line exceeds " +
                     std::to_string(options_.max_line_bytes) + " bytes")) +
                         "\n");
        quit = true;
        break;
      }
      last_line = steady_clock::now();
      Deadline deadline =
          DeadlineAfterMillis(options_.request_deadline_millis);
      std::string response = HandleCommand(line, &quit, deadline) + "\n";
      if (!WriteAll(fd, response)) {
        quit = true;
        break;
      }
      // Drain request arrived while this command ran: its response is
      // flushed (above), remaining pipelined input is abandoned.
      if (draining_.load(std::memory_order_relaxed)) {
        quit = true;
        break;
      }
    }
    if (!quit && buffer.size() > options_.max_line_bytes) {
      // A line this long is still incomplete: cap the buffer instead of
      // letting a hostile client grow it without bound.
      oversized_rejected_->Increment();
      WriteAll(fd, Err(Status::InvalidArgument(
                   "request line exceeds " +
                   std::to_string(options_.max_line_bytes) + " bytes")) +
                       "\n");
      break;
    }
  }
  // Deregister before close so Stop() can never shutdown() a recycled fd.
  DeregisterConnection(fd);
  ops_->Close(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    --active_;
  }
  conn_cv_.notify_all();
}

void LineProtocolServer::DeregisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (size_t i = 0; i < conn_fds_.size(); ++i) {
    if (conn_fds_[i] == fd) {
      conn_fds_[i] = conn_fds_.back();
      conn_fds_.pop_back();
      break;
    }
  }
  current_connections_->Set(static_cast<double>(conn_fds_.size()));
}

std::string LineProtocolServer::Err(const Status& status) {
  if (status.code() == StatusCode::kDeadlineExceeded) {
    deadlines_exceeded_->Increment();
  }
  return "ERR " + status.ToString();
}

ServerStats LineProtocolServer::GetStats() const {
  ServerStats stats;
  stats.requests_received = requests_received_->Value();
  stats.requests_completed = requests_completed_->Value();
  stats.connections_accepted = connections_accepted_->Value();
  stats.connections_shed = connections_shed_->Value();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    stats.current_connections = conn_fds_.size();
  }
  stats.peak_connections =
      static_cast<uint64_t>(peak_connections_->Value());
  stats.idle_reaped = idle_reaped_->Value();
  stats.oversized_rejected = oversized_rejected_->Value();
  stats.deadlines_exceeded = deadlines_exceeded_->Value();
  stats.io_errors = io_errors_->Value();
  stats.reload_failures = reload_failures_->Value();
  stats.reload_rejected_by_breaker = reload_rejected_by_breaker_->Value();
  stats.breaker_state = reload_breaker_.state();
  stats.breaker = reload_breaker_.GetStats();
  return stats;
}

std::string LineProtocolServer::StatszSection(
    const obs::MetricsSnapshot& snap) const {
  std::ostringstream out;
  out << "server: requests="
      << snap.CounterValue("serve.server.requests_received") << "/"
      << snap.CounterValue("serve.server.requests_completed")
      << " accepted=" << snap.CounterValue("serve.server.connections_accepted")
      << " shed=" << snap.CounterValue("serve.server.connections_shed")
      << " current="
      << static_cast<uint64_t>(
             snap.GaugeValue("serve.server.current_connections"))
      << " peak="
      << static_cast<uint64_t>(
             snap.GaugeValue("serve.server.peak_connections"))
      << " idle_reaped=" << snap.CounterValue("serve.server.idle_reaped")
      << " oversized="
      << snap.CounterValue("serve.server.oversized_rejected")
      << " deadlines_exceeded="
      << snap.CounterValue("serve.server.deadlines_exceeded")
      << " io_errors=" << snap.CounterValue("serve.server.io_errors") << "\n";
  CircuitBreaker::Stats breaker = reload_breaker_.GetStats();
  out << "reload_breaker: state="
      << CircuitBreaker::StateName(reload_breaker_.state())
      << " failures=" << snap.CounterValue("serve.server.reload_failures")
      << " rejected="
      << snap.CounterValue("serve.server.reload_rejected_by_breaker")
      << " opened=" << breaker.opened
      << " half_opened=" << breaker.half_opened
      << " reclosed=" << breaker.reclosed;
  return out.str();
}

std::string LineProtocolServer::HandleCommand(const std::string& line,
                                              bool* quit, Deadline deadline) {
  *quit = false;
  // received on entry, completed on every exit (the RAII below), in that
  // order — the registry snapshot can then never show completed > received.
  requests_received_->Increment();
  struct RequestScope {
    obs::Counter* completed;
    obs::TraceSpan span;  ///< Root "request" span; ends with the scope.
    ~RequestScope() { completed->Increment(); }
  } scope{requests_completed_, {}};
  // Handler mode: the handler owns the whole command surface (including
  // its own tracing); the server contributes only the counter pair above.
  if (handler_ != nullptr) return handler_->Handle(line, quit, deadline);
  obs::Tracer* tracer = engine_->tracer();
  if (tracer != nullptr) scope.span = tracer->StartSpan("request");
  const uint64_t trace_parent = scope.span.span_id();
  std::vector<std::string> tokens = SplitProtocolTokens(line);
  if (tokens.empty()) return Err(Status::InvalidArgument("empty command"));
  const std::string& cmd = tokens[0];

  if (cmd == "PING") return "OK pong";
  if (cmd == "QUIT") {
    *quit = true;
    return "OK bye";
  }

  if (cmd == "PREDICT") {
    auto query_or = ParseQueryCommand(tokens, nullptr);
    if (!query_or.ok()) return Err(query_or.status());
    auto prediction_or =
        engine_->PredictTexture(*query_or, deadline, trace_parent);
    if (!prediction_or.ok()) return Err(prediction_or.status());
    const TexturePrediction& p = *prediction_or;
    std::string out = "OK topic=" + std::to_string(p.topic) +
                      " cached=" + (p.from_cache ? "1" : "0");
    out += " hard=";
    AppendFixed(&out, "%.4f", p.categories.hard);
    out += " soft=";
    AppendFixed(&out, "%.4f", p.categories.soft);
    out += " elastic=";
    AppendFixed(&out, "%.4f", p.categories.elastic);
    out += " crumbly=";
    AppendFixed(&out, "%.4f", p.categories.crumbly);
    out += " sticky=";
    AppendFixed(&out, "%.4f", p.categories.sticky);
    out += " dry=";
    AppendFixed(&out, "%.4f", p.categories.dry);
    out += " top=";
    for (size_t i = 0; i < p.top_terms.size(); ++i) {
      if (i > 0) out += ',';
      out += p.top_terms[i].first + ':';
      AppendFixed(&out, "%.4f", p.top_terms[i].second);
    }
    return out;
  }

  if (cmd == "NEAREST") {
    if (tokens.size() < 2) {
      return Err(
          Status::InvalidArgument("usage: NEAREST <topic> [method=...]"));
    }
    auto topic_or = ParseTopicIndex(tokens[1]);
    if (!topic_or.ok()) return Err(topic_or.status());
    core::LinkageOptions options = engine_->config().linkage;
    const core::LinkageOptions* options_ptr = nullptr;
    if (tokens.size() > 2) {
      if (tokens[2].rfind("method=", 0) != 0) {
        return Err(
            Status::InvalidArgument("unknown option '" + tokens[2] + "'"));
      }
      auto method_or = ParseLinkageMethod(tokens[2].substr(7));
      if (!method_or.ok()) return Err(method_or.status());
      options.method = *method_or;
      options_ptr = &options;
    }
    auto matches_or = engine_->NearestRheology(*topic_or, options_ptr);
    if (!matches_or.ok()) return Err(matches_or.status());
    std::string out = "OK";
    size_t rows = std::min(options_.max_rows, matches_or->size());
    for (size_t i = 0; i < rows; ++i) {
      const RheologyMatch& m = (*matches_or)[i];
      out += " setting=" + std::to_string(m.setting_id) + ":";
      AppendFixed(&out, "%.4f", m.divergence);
    }
    return out;
  }

  if (cmd == "SIMILAR") {
    size_t top_n = 0;
    SimilarityMode mode = SimilarityMode::kKl;
    auto query_or = ParseQueryCommand(tokens, &top_n, &mode);
    if (!query_or.ok()) return Err(query_or.status());
    auto result_or =
        engine_->SimilarRecipes(*query_or, top_n, deadline, trace_parent, mode);
    if (!result_or.ok()) return Err(result_or.status());
    std::string out = "OK topic=" + std::to_string(result_or->topic) +
                      " mode=" + SimilarityModeName(result_or->mode);
    size_t rows = std::min(options_.max_rows, result_or->recipes.size());
    if (top_n != 0) rows = std::min(rows, top_n);
    out += " recipes=";
    for (size_t i = 0; i < rows; ++i) {
      if (i > 0) out += ',';
      out += std::to_string(result_or->recipes[i].recipe_index) + ':';
      AppendFixed(&out, "%.4f", result_or->recipes[i].divergence);
    }
    return out;
  }

  if (cmd == "TOPIC") {
    if (tokens.size() < 2) {
      return Err(Status::InvalidArgument("usage: TOPIC <k>"));
    }
    auto topic_or = ParseTopicIndex(tokens[1]);
    if (!topic_or.ok()) return Err(topic_or.status());
    auto card_or = engine_->TopicCard(*topic_or);
    if (!card_or.ok()) return Err(card_or.status());
    std::string out = "OK topic=" + std::to_string(card_or->topic) +
                      " recipes=" + std::to_string(card_or->recipe_count) +
                      " top=";
    for (size_t i = 0; i < card_or->top_terms.size(); ++i) {
      if (i > 0) out += ',';
      out += card_or->top_terms[i].first + ':';
      AppendFixed(&out, "%.4f", card_or->top_terms[i].second);
    }
    out += " gel=";
    for (size_t i = 0; i < card_or->gel_mean_concentration.size(); ++i) {
      if (i > 0) out += ',';
      AppendFixed(&out, "%.5f", card_or->gel_mean_concentration[i]);
    }
    return out;
  }

  if (cmd == "RELOAD") {
    if (tokens.size() < 2) {
      return Err(Status::InvalidArgument("usage: RELOAD <model-file>"));
    }
    // A model file that fails to load will fail identically on every
    // retry; the breaker stops a reload-retry loop from starving queries.
    if (!reload_breaker_.Allow(steady_clock::now())) {
      reload_rejected_by_breaker_->Increment();
      return Err(Status::Unavailable(
          "reload circuit breaker open after repeated failures; retry "
          "after cooldown"));
    }
    Status status = engine_->ReloadFromFile(tokens[1]);
    if (!status.ok()) {
      reload_failures_->Increment();
      reload_breaker_.RecordFailure(steady_clock::now());
      return Err(status);
    }
    reload_breaker_.RecordSuccess();
    char fp[16];
    std::snprintf(fp, sizeof(fp), "%08x",
                  engine_->snapshot()->fingerprint());
    return std::string("OK reloaded fingerprint=") + fp;
  }

  if (cmd == "INGESTZ") {
    // Streamed-delta state: recipes folded in since the last reload plus
    // pending-vocabulary terms (see QueryEngine::RenderIngestz).
    std::string stats = engine_->RenderIngestz();
    if (!stats.empty() && stats.back() == '\n') stats.pop_back();
    return stats + "\n.";
  }

  if (cmd == "STATSZ") {
    // One snapshot renders both the engine and server sections, so the
    // page is internally consistent by construction.
    obs::MetricsSnapshot snap = engine_->TakeMetricsSnapshot();
    std::string stats = engine_->RenderStatsz(snap);
    if (!stats.empty() && stats.back() == '\n') stats.pop_back();
    return stats + "\n" + StatszSection(snap) + "\n.";
  }

  if (cmd == "METRICSZ") {
    // Single bare JSON line (see header): the machine-readable twin of
    // STATSZ, rendered from the same registry.
    return engine_->MetricszJson();
  }

  return Err(Status::InvalidArgument("unknown command '" + cmd + "'"));
}

// --- LineClient ---------------------------------------------------------

LineClient::LineClient(int fd, const LineClientOptions& options,
                       SocketOps* ops, uint64_t connect_retries)
    : fd_(fd), options_(options), ops_(ops) {
  stats_.connect_retries = connect_retries;
}

StatusOr<std::unique_ptr<LineClient>> LineClient::Connect(
    const std::string& host, int port, const LineClientOptions& options) {
  SocketOps* ops = options.socket_ops != nullptr ? options.socket_ops
                                                 : &SocketOps::Real();
  Rng rng(options.backoff_seed);
  const int attempts = std::max(1, options.max_connect_attempts);
  uint64_t retries = 0;
  Status last = Status::Unavailable("connect: no attempts made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      double delay = BackoffDelayMillis(options.backoff, attempt - 1, rng);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay));
      ++retries;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal(std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::InvalidArgument("bad host '" + host + "'");
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      if (options.io_timeout_millis > 0) SetNonBlocking(fd);
      return std::unique_ptr<LineClient>(
          new LineClient(fd, options, ops, retries));
    }
    int err = errno;
    ::close(fd);
    const bool transient = err == ECONNREFUSED || err == ECONNRESET ||
                           err == ETIMEDOUT || err == EINTR ||
                           err == EAGAIN || err == ENETUNREACH;
    if (!transient) {
      // Still Unavailable, not Internal: whatever the errno, the peer is
      // unreachable — a router must treat it as "this replica is down"
      // (retry elsewhere now), never as a caller bug. Only retrying *here*
      // is pointless, hence no backoff loop.
      return Status::Unavailable(std::string("connect: ") +
                                 std::strerror(err));
    }
    last = Status::Unavailable(std::string("connect: ") + std::strerror(err) +
                               " (attempt " + std::to_string(attempt + 1) +
                               "/" + std::to_string(attempts) + ")");
  }
  return last;
}

LineClient::~LineClient() { Close(); }

void LineClient::Close() {
  if (fd_ >= 0) {
    ops_->Close(fd_);
    fd_ = -1;
  }
}

void LineClient::Abort() {
  // shutdown, not close: the fd stays allocated (no reuse race with the
  // thread still blocked in poll/recv on it), but every pending and future
  // I/O on it fails promptly. fd_ itself is only ever written by the owner
  // thread (ctor / Close), so this cross-thread read is race-free.
  if (fd_ >= 0) ops_->Shutdown(fd_, SHUT_RDWR);
}

Status LineClient::WaitReady(short events, Deadline deadline) {
  int timeout = -1;
  if (deadline != kNoDeadline) {
    auto remaining = std::chrono::duration_cast<milliseconds>(
                         deadline - steady_clock::now())
                         .count();
    if (remaining <= 0) {
      return Status::DeadlineExceeded("client i/o budget (" +
                                      std::to_string(
                                          options_.io_timeout_millis) +
                                      " ms) exhausted");
    }
    timeout = static_cast<int>(std::min<long long>(remaining, 1 << 20));
  }
  int ready = ops_->Poll(fd_, events, timeout);
  if (ready < 0 && errno != EINTR) {
    return Status::Internal(std::string("poll: ") + std::strerror(errno));
  }
  return Status::OK();  // Ready, timeout, or EINTR: caller re-checks.
}

Status LineClient::SendWithDeadline(const std::string& payload,
                                    Deadline deadline) {
  if (fd_ < 0) return Status::FailedPrecondition("client closed");
  size_t sent = 0;
  while (sent < payload.size()) {
    ssize_t w = ops_->Send(fd_, payload.data() + sent, payload.size() - sent);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) {
      ++stats_.io_retries;
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ++stats_.io_retries;
      TEXRHEO_RETURN_IF_ERROR(WaitReady(POLLOUT, deadline));
      continue;
    }
    // EPIPE / ECONNRESET / ...: the connection is gone, not slow.
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<std::string> LineClient::ReadLineWithDeadline(Deadline deadline) {
  if (fd_ < 0) return Status::FailedPrecondition("client closed");
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[1024];
    ssize_t n = ops_->Recv(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      // Peer closed mid-response. A buffered unterminated line must be
      // reported and dropped — surfacing a truncated response as data
      // would hand the caller a silently-corrupt answer.
      if (!buffer_.empty()) {
        size_t dropped = buffer_.size();
        buffer_.clear();
        return Status::Unavailable(
            "connection closed mid-response with " +
            std::to_string(dropped) +
            " unterminated byte(s) buffered; partial line dropped");
      }
      return Status::Unavailable("connection closed while awaiting response");
    }
    if (errno == EINTR) {
      ++stats_.io_retries;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      TEXRHEO_RETURN_IF_ERROR(WaitReady(POLLIN, deadline));
      continue;
    }
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

Status LineClient::SendLine(const std::string& line) {
  return SendWithDeadline(line + "\n",
                          DeadlineAfterMillis(options_.io_timeout_millis));
}

StatusOr<std::string> LineClient::ReadLine() {
  return ReadLineWithDeadline(
      DeadlineAfterMillis(options_.io_timeout_millis));
}

StatusOr<std::string> LineClient::RoundTrip(const std::string& line) {
  // One budget for the whole exchange, not one per leg.
  return RoundTrip(line, DeadlineAfterMillis(options_.io_timeout_millis));
}

StatusOr<std::string> LineClient::RoundTrip(const std::string& line,
                                            Deadline deadline) {
  TEXRHEO_RETURN_IF_ERROR(SendWithDeadline(line + "\n", deadline));
  return ReadLineWithDeadline(deadline);
}

StatusOr<std::string> LineClient::ReadUntilDot() {
  std::string all;
  for (;;) {
    TEXRHEO_ASSIGN_OR_RETURN(std::string line, ReadLine());
    if (line == ".") return all;
    if (!all.empty()) all += '\n';
    all += line;
  }
}

}  // namespace texrheo::serve
