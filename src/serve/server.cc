#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

namespace texrheo::serve {

namespace {

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

/// Parses "name=ratio,name=ratio" ("-" = none) into ingredient pairs.
StatusOr<std::vector<std::pair<std::string, double>>> ParseIngredients(
    const std::string& spec) {
  std::vector<std::pair<std::string, double>> out;
  if (spec == "-") return out;
  for (const std::string& part : SplitCommas(spec)) {
    size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected name=ratio, got '" + part +
                                     "'");
    }
    char* end = nullptr;
    double value = std::strtod(part.c_str() + eq + 1, &end);
    if (end == part.c_str() + eq + 1 || *end != '\0') {
      return Status::InvalidArgument("bad ratio in '" + part + "'");
    }
    out.emplace_back(part.substr(0, eq), value);
  }
  return out;
}

/// Builds a TextureQuery from positional <ingredients> plus key=value
/// options (terms=..., n=...).
StatusOr<TextureQuery> ParseQuery(const std::vector<std::string>& tokens,
                                  size_t* top_n) {
  if (tokens.size() < 2) {
    return Status::InvalidArgument("usage: " + tokens[0] +
                                   " <name=ratio,...|-> [terms=a,b] [n=N]");
  }
  std::vector<std::string> terms;
  if (top_n != nullptr) *top_n = 0;
  for (size_t i = 2; i < tokens.size(); ++i) {
    const std::string& opt = tokens[i];
    if (opt.rfind("terms=", 0) == 0) {
      terms = SplitCommas(opt.substr(6));
    } else if (top_n != nullptr && opt.rfind("n=", 0) == 0) {
      *top_n = static_cast<size_t>(std::strtoul(opt.c_str() + 2, nullptr, 10));
    } else {
      return Status::InvalidArgument("unknown option '" + opt + "'");
    }
  }
  TEXRHEO_ASSIGN_OR_RETURN(auto ingredients, ParseIngredients(tokens[1]));
  return QueryFromIngredients(ingredients, std::move(terms));
}

StatusOr<int> ParseTopic(const std::string& token) {
  char* end = nullptr;
  long topic = std::strtol(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad topic index '" + token + "'");
  }
  return static_cast<int>(topic);
}

StatusOr<core::LinkageMethod> ParseMethod(const std::string& name) {
  if (name == "gaussian-kl") return core::LinkageMethod::kGaussianKL;
  if (name == "neg-log-density") return core::LinkageMethod::kNegLogDensity;
  if (name == "mahalanobis") return core::LinkageMethod::kMahalanobis;
  if (name == "euclidean") return core::LinkageMethod::kEuclidean;
  return Status::InvalidArgument("unknown linkage method '" + name + "'");
}

std::string ErrLine(const Status& status) {
  return "ERR " + status.ToString();
}

void AppendF(std::string* out, const char* fmt, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), fmt, v);
  *out += buf;
}

}  // namespace

LineProtocolServer::LineProtocolServer(QueryEngine* engine,
                                       const ServerOptions& options)
    : engine_(engine), options_(options) {}

LineProtocolServer::~LineProtocolServer() { Stop(); }

Status LineProtocolServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      options_.loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LineProtocolServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Already stopping/stopped; still join if the first Stop was concurrent.
  }
  if (listen_fd_ >= 0) {
    // shutdown() unblocks accept(); close() alone does not on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
    // Wake connection threads blocked in recv(); they observe EOF and
    // exit. The fd itself is closed by its owning thread.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void LineProtocolServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (errno == EINTR) continue;
      return;  // Listener gone.
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void LineProtocolServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[1024];
  bool quit = false;
  while (!quit) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // Peer closed (or error): drop the connection.
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while (!quit && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = HandleCommand(line, &quit) + "\n";
      size_t sent = 0;
      while (sent < response.size()) {
        ssize_t w = ::send(fd, response.data() + sent, response.size() - sent,
                           MSG_NOSIGNAL);
        if (w <= 0) {
          quit = true;
          break;
        }
        sent += static_cast<size_t>(w);
      }
    }
  }
  // Deregister before close so Stop() can never shutdown() a recycled fd.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < conn_fds_.size(); ++i) {
      if (conn_fds_[i] == fd) {
        conn_fds_[i] = conn_fds_.back();
        conn_fds_.pop_back();
        break;
      }
    }
  }
  ::close(fd);
}

std::string LineProtocolServer::HandleCommand(const std::string& line,
                                              bool* quit) {
  *quit = false;
  std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty()) return ErrLine(Status::InvalidArgument("empty command"));
  const std::string& cmd = tokens[0];

  if (cmd == "PING") return "OK pong";
  if (cmd == "QUIT") {
    *quit = true;
    return "OK bye";
  }

  if (cmd == "PREDICT") {
    auto query_or = ParseQuery(tokens, nullptr);
    if (!query_or.ok()) return ErrLine(query_or.status());
    auto prediction_or = engine_->PredictTexture(*query_or);
    if (!prediction_or.ok()) return ErrLine(prediction_or.status());
    const TexturePrediction& p = *prediction_or;
    std::string out = "OK topic=" + std::to_string(p.topic) +
                      " cached=" + (p.from_cache ? "1" : "0");
    out += " hard=";
    AppendF(&out, "%.4f", p.categories.hard);
    out += " soft=";
    AppendF(&out, "%.4f", p.categories.soft);
    out += " elastic=";
    AppendF(&out, "%.4f", p.categories.elastic);
    out += " crumbly=";
    AppendF(&out, "%.4f", p.categories.crumbly);
    out += " sticky=";
    AppendF(&out, "%.4f", p.categories.sticky);
    out += " dry=";
    AppendF(&out, "%.4f", p.categories.dry);
    out += " top=";
    for (size_t i = 0; i < p.top_terms.size(); ++i) {
      if (i > 0) out += ',';
      out += p.top_terms[i].first + ':';
      AppendF(&out, "%.4f", p.top_terms[i].second);
    }
    return out;
  }

  if (cmd == "NEAREST") {
    if (tokens.size() < 2) {
      return ErrLine(
          Status::InvalidArgument("usage: NEAREST <topic> [method=...]"));
    }
    auto topic_or = ParseTopic(tokens[1]);
    if (!topic_or.ok()) return ErrLine(topic_or.status());
    core::LinkageOptions options = engine_->config().linkage;
    const core::LinkageOptions* options_ptr = nullptr;
    if (tokens.size() > 2) {
      if (tokens[2].rfind("method=", 0) != 0) {
        return ErrLine(
            Status::InvalidArgument("unknown option '" + tokens[2] + "'"));
      }
      auto method_or = ParseMethod(tokens[2].substr(7));
      if (!method_or.ok()) return ErrLine(method_or.status());
      options.method = *method_or;
      options_ptr = &options;
    }
    auto matches_or = engine_->NearestRheology(*topic_or, options_ptr);
    if (!matches_or.ok()) return ErrLine(matches_or.status());
    std::string out = "OK";
    size_t rows = std::min(options_.max_rows, matches_or->size());
    for (size_t i = 0; i < rows; ++i) {
      const RheologyMatch& m = (*matches_or)[i];
      out += " setting=" + std::to_string(m.setting_id) + ":";
      AppendF(&out, "%.4f", m.divergence);
    }
    return out;
  }

  if (cmd == "SIMILAR") {
    size_t top_n = 0;
    auto query_or = ParseQuery(tokens, &top_n);
    if (!query_or.ok()) return ErrLine(query_or.status());
    auto result_or = engine_->SimilarRecipes(*query_or, top_n);
    if (!result_or.ok()) return ErrLine(result_or.status());
    std::string out = "OK topic=" + std::to_string(result_or->topic);
    size_t rows = std::min(options_.max_rows, result_or->recipes.size());
    if (top_n != 0) rows = std::min(rows, top_n);
    out += " recipes=";
    for (size_t i = 0; i < rows; ++i) {
      if (i > 0) out += ',';
      out += std::to_string(result_or->recipes[i].recipe_index) + ':';
      AppendF(&out, "%.4f", result_or->recipes[i].divergence);
    }
    return out;
  }

  if (cmd == "TOPIC") {
    if (tokens.size() < 2) {
      return ErrLine(Status::InvalidArgument("usage: TOPIC <k>"));
    }
    auto topic_or = ParseTopic(tokens[1]);
    if (!topic_or.ok()) return ErrLine(topic_or.status());
    auto card_or = engine_->TopicCard(*topic_or);
    if (!card_or.ok()) return ErrLine(card_or.status());
    std::string out = "OK topic=" + std::to_string(card_or->topic) +
                      " recipes=" + std::to_string(card_or->recipe_count) +
                      " top=";
    for (size_t i = 0; i < card_or->top_terms.size(); ++i) {
      if (i > 0) out += ',';
      out += card_or->top_terms[i].first + ':';
      AppendF(&out, "%.4f", card_or->top_terms[i].second);
    }
    out += " gel=";
    for (size_t i = 0; i < card_or->gel_mean_concentration.size(); ++i) {
      if (i > 0) out += ',';
      AppendF(&out, "%.5f", card_or->gel_mean_concentration[i]);
    }
    return out;
  }

  if (cmd == "RELOAD") {
    if (tokens.size() < 2) {
      return ErrLine(Status::InvalidArgument("usage: RELOAD <model-file>"));
    }
    Status status = engine_->ReloadFromFile(tokens[1]);
    if (!status.ok()) return ErrLine(status);
    char fp[16];
    std::snprintf(fp, sizeof(fp), "%08x",
                  engine_->snapshot()->fingerprint());
    return std::string("OK reloaded fingerprint=") + fp;
  }

  if (cmd == "STATSZ") {
    std::string stats = engine_->Statsz();
    if (!stats.empty() && stats.back() == '\n') stats.pop_back();
    return stats + "\n.";
  }

  return ErrLine(Status::InvalidArgument("unknown command '" + cmd + "'"));
}

StatusOr<std::unique_ptr<LineClient>> LineClient::Connect(
    const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::Internal(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<LineClient>(new LineClient(fd));
}

LineClient::~LineClient() { Close(); }

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status LineClient::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("client closed");
  std::string payload = line + "\n";
  size_t sent = 0;
  while (sent < payload.size()) {
    ssize_t w =
        ::send(fd_, payload.data() + sent, payload.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) {
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

StatusOr<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("client closed");
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[1024];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return Status::Internal("connection closed while awaiting response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<std::string> LineClient::RoundTrip(const std::string& line) {
  TEXRHEO_RETURN_IF_ERROR(SendLine(line));
  return ReadLine();
}

StatusOr<std::string> LineClient::ReadUntilDot() {
  std::string all;
  for (;;) {
    TEXRHEO_ASSIGN_OR_RETURN(std::string line, ReadLine());
    if (line == ".") return all;
    if (!all.empty()) all += '\n';
    all += line;
  }
}

}  // namespace texrheo::serve
