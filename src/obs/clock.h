#ifndef TEXRHEO_OBS_CLOCK_H_
#define TEXRHEO_OBS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace texrheo::obs {

/// Time source for the observability layer. Everything that stamps a span
/// or measures a phase reads through this interface, so tests inject a
/// ManualClock and get deterministic durations while production uses the
/// steady (monotonic) clock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic microseconds. Only differences are meaningful; the epoch is
  /// unspecified (steady-clock start for the real clock, 0 for ManualClock
  /// unless constructed otherwise).
  virtual int64_t NowMicros() const = 0;

  /// Shared instance backed by std::chrono::steady_clock.
  static const Clock& Steady();
};

/// Test clock: time moves only when the test says so. Advance is
/// thread-safe, so concurrent spans observe a coherent (if coarse)
/// timeline.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_acquire);
  }

  void AdvanceMicros(int64_t delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }

  void SetMicros(int64_t now) { now_.store(now, std::memory_order_release); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace texrheo::obs

#endif  // TEXRHEO_OBS_CLOCK_H_
