#ifndef TEXRHEO_OBS_TRACE_H_
#define TEXRHEO_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace texrheo::obs {

/// One finished span: a named interval with an explicit parent, so a trace
/// is a forest (sweep -> shard-sample -> gaussian-update; request ->
/// admission -> batch-dispatch -> fold-in). parent_id == 0 means root.
struct SpanRecord {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string name;
  int64_t start_micros = 0;
  int64_t duration_micros = 0;
};

class Tracer;

/// Move-only RAII span. Ends (and records) at destruction or on an
/// explicit End(); ending twice is a no-op. Children are created
/// explicitly — either from the span (same thread or not) or from the
/// tracer with the parent's id (the cross-thread form used when a request
/// hands work to the batcher's dispatcher thread).
class TraceSpan {
 public:
  TraceSpan() = default;  ///< Inert span (no tracer); End is a no-op.
  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Stops the clock and hands the record to the tracer. Idempotent.
  void End();

  /// Child span starting now. Valid only before End().
  TraceSpan StartChild(std::string_view name);

  uint64_t span_id() const { return span_id_; }
  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  TraceSpan(Tracer* tracer, uint64_t span_id, uint64_t parent_id,
            std::string name, int64_t start_micros)
      : tracer_(tracer),
        span_id_(span_id),
        parent_id_(parent_id),
        name_(std::move(name)),
        start_micros_(start_micros) {}

  Tracer* tracer_ = nullptr;  ///< Null once ended / moved-from.
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  std::string name_;
  int64_t start_micros_ = 0;
};

/// Span factory + bounded completed-span buffer.
///
/// The clock is injected (ManualClock in tests, Clock::Steady() in
/// production) and span ids come from one atomic, so traces are
/// deterministic whenever the clock and the span-creation order are.
/// Finished records land in a bounded ring (oldest dropped first, drops
/// counted) under a short mutex; when a MetricsRegistry is attached every
/// span additionally records its duration into a "trace.<name>_us"
/// histogram, which is how span timings reach METRICSZ without keeping
/// unbounded per-span state.
class Tracer {
 public:
  struct Options {
    /// Completed-record ring capacity. 0 disables record keeping entirely
    /// (durations still flow to the metrics registry) — the configuration
    /// for always-on production tracing.
    size_t max_records = 4096;
  };

  explicit Tracer(const Clock* clock = nullptr) : Tracer(clock, Options{}) {}
  Tracer(const Clock* clock, Options options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Root span starting now.
  TraceSpan StartSpan(std::string_view name) {
    return StartSpanWithParent(name, 0);
  }

  /// Span parented to an already-known span id — the cross-thread /
  /// cross-component form (the id travels in a job struct; the parent may
  /// even have ended already, which is normal for queued work).
  TraceSpan StartSpanWithParent(std::string_view name, uint64_t parent_id);

  /// Mirror every span duration into `registry` as a
  /// "trace.<name>_us" histogram. Must be called before spans start.
  void ExportDurationsTo(MetricsRegistry* registry);

  /// Completed records, oldest first (a copy; the buffer keeps them).
  std::vector<SpanRecord> Records() const;

  /// Removes and returns all completed records, oldest first.
  std::vector<SpanRecord> Drain();

  /// Records lost to the ring bound since construction.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  const Clock& clock() const { return *clock_; }

 private:
  friend class TraceSpan;
  void Finish(const TraceSpan& span, int64_t end_micros);
  LatencyHistogram* HistogramFor(const std::string& span_name);

  const Clock* clock_;
  const Options options_;
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> dropped_{0};
  MetricsRegistry* registry_ = nullptr;  ///< Not owned; may be null.

  mutable std::mutex mu_;
  std::deque<SpanRecord> records_;  // Guarded by mu_.
  /// Span-name -> histogram handle memo (guarded by mu_; the handle itself
  /// is then used lock-free).
  std::unordered_map<std::string, LatencyHistogram*> histograms_;
};

}  // namespace texrheo::obs

#endif  // TEXRHEO_OBS_TRACE_H_
