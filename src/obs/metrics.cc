#include "obs/metrics.h"

#include <cassert>
#include <chrono>

#include "obs/clock.h"

namespace texrheo::obs {

namespace {

class SteadyClockImpl : public Clock {
 public:
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

const Clock& Clock::Steady() {
  static const SteadyClockImpl clock;
  return clock;
}

Counter* MetricsRegistry::RegisterCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key(name);
  assert(gauge_index_.find(key) == gauge_index_.end() &&
         histogram_index_.find(key) == histogram_index_.end());
  auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return counters_[it->second].get();
  counters_.push_back(std::unique_ptr<Counter>(new Counter(key)));
  counter_index_.emplace(std::move(key), counters_.size() - 1);
  return counters_.back().get();
}

Gauge* MetricsRegistry::RegisterGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key(name);
  assert(counter_index_.find(key) == counter_index_.end() &&
         histogram_index_.find(key) == histogram_index_.end());
  auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return gauges_[it->second].get();
  gauges_.push_back(std::unique_ptr<Gauge>(new Gauge(key)));
  gauge_index_.emplace(std::move(key), gauges_.size() - 1);
  return gauges_.back().get();
}

LatencyHistogram* MetricsRegistry::RegisterHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key(name);
  assert(counter_index_.find(key) == counter_index_.end() &&
         gauge_index_.find(key) == gauge_index_.end());
  auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) return &histograms_[it->second];
  histograms_.emplace_back();
  histogram_names_.push_back(key);
  histogram_index_.emplace(std::move(key), histograms_.size() - 1);
  return &histograms_.back();
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  // The lock pins the registration tables (no handle is added mid-pass);
  // it does not serialize against increments, which are lock-free.
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.resize(counters_.size());
  // Reverse registration order: a counter registered (and, per the usage
  // contract, incremented) later in a request's pipeline is read first, so
  // "completion" counts can never be observed ahead of their "admission"
  // counterparts.
  for (size_t i = counters_.size(); i-- > 0;) {
    snap.counters[i] = {counters_[i]->name(), counters_[i]->Value()};
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    snap.gauges.emplace_back(g->name(), g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (size_t i = 0; i < histograms_.size(); ++i) {
    snap.histograms.emplace_back(histogram_names_[i],
                                 histograms_[i].TakeSnapshot());
  }
  return snap;
}

std::string MetricsRegistry::RenderJson() const {
  return TakeSnapshot().ToJson().Serialize();
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const LatencyHistogram::Snapshot* MetricsSnapshot::Histogram(
    std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue root = JsonValue::MakeObject();
  root.AsObject()["schema_version"] = JsonValue::Number(1);
  JsonValue counter_obj = JsonValue::MakeObject();
  for (const auto& [name, value] : counters) {
    counter_obj.AsObject()[name] =
        JsonValue::Number(static_cast<double>(value));
  }
  root.AsObject()["counters"] = std::move(counter_obj);
  JsonValue gauge_obj = JsonValue::MakeObject();
  for (const auto& [name, value] : gauges) {
    gauge_obj.AsObject()[name] = JsonValue::Number(value);
  }
  root.AsObject()["gauges"] = std::move(gauge_obj);
  JsonValue hist_obj = JsonValue::MakeObject();
  for (const auto& [name, snap] : histograms) {
    JsonValue h = JsonValue::MakeObject();
    auto& obj = h.AsObject();
    obj["count"] = JsonValue::Number(static_cast<double>(snap.count));
    obj["sum_us"] = JsonValue::Number(static_cast<double>(snap.sum_micros));
    obj["max_us"] = JsonValue::Number(static_cast<double>(snap.max_micros));
    obj["mean_us"] = JsonValue::Number(snap.MeanMicros());
    obj["p50_us"] = JsonValue::Number(
        static_cast<double>(snap.QuantileUpperBound(0.50)));
    obj["p95_us"] = JsonValue::Number(
        static_cast<double>(snap.QuantileUpperBound(0.95)));
    obj["p99_us"] = JsonValue::Number(
        static_cast<double>(snap.QuantileUpperBound(0.99)));
    hist_obj.AsObject()[name] = std::move(h);
  }
  root.AsObject()["histograms"] = std::move(hist_obj);
  return root;
}

}  // namespace texrheo::obs
