#include "obs/exporter.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/atomic_file.h"
#include "util/logging.h"

namespace texrheo::obs {

PeriodicMetricsWriter::PeriodicMetricsWriter(
    std::function<std::string()> render, Options options)
    : render_(std::move(render)), options_(std::move(options)) {}

PeriodicMetricsWriter::~PeriodicMetricsWriter() { Stop(); }

Status PeriodicMetricsWriter::Start() {
  TEXRHEO_RETURN_IF_ERROR(WriteOnce());
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::FailedPrecondition("writer already started");
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void PeriodicMetricsWriter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      stopping_ = true;
      return;
    }
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final write so the file reflects the last state (e.g. a selftest's
  // closing counters), best-effort.
  Status final_write = WriteOnce();
  (void)final_write;
}

Status PeriodicMetricsWriter::WriteOnce() const {
  return AtomicWriteFile(options_.path, render_());
}

void PeriodicMetricsWriter::Loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(10, options_.interval_millis));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stopping_; })) {
      return;
    }
    lock.unlock();
    Status written = WriteOnce();
    if (!written.ok()) {
      TEXRHEO_LOG(Warning) << "metrics write failed: " << written.ToString();
    }
    lock.lock();
  }
}

}  // namespace texrheo::obs
