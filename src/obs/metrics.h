#ifndef TEXRHEO_OBS_METRICS_H_
#define TEXRHEO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/histogram.h"
#include "util/json.h"

namespace texrheo::obs {

/// Monotone counter. Increment is one atomic fetch_add; the handle is
/// registered once (cold path) and then used lock-free from any thread.
///
/// Increments use release ordering and snapshot reads use acquire ordering;
/// together with MetricsRegistry's reverse-registration-order snapshot this
/// is what makes pipeline-ordered counter pairs monotone-consistent (see
/// MetricsRegistry::TakeSnapshot).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_release);
  }
  uint64_t Value() const { return value_.load(std::memory_order_acquire); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  const std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Double-valued gauge (set / add / running max). Stored as an atomic
/// double; Add and SetMax are CAS loops, Set is a plain store.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_release); }
  void Add(double delta) {
    double prev = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(prev, prev + delta,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if `v` is larger (peak tracking).
  void SetMax(double v) {
    double prev = value_.load(std::memory_order_relaxed);
    while (prev < v && !value_.compare_exchange_weak(
                           prev, v, std::memory_order_release,
                           std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_acquire); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  const std::string name_;
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of every registered metric. Counters and gauges are
/// in registration order; `Counter`/`Gauge`/`Histogram` look up by name
/// (0 / empty snapshot when absent, so render code stays branch-light).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> histograms;

  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  const LatencyHistogram::Snapshot* Histogram(std::string_view name) const;

  /// Stable machine-readable form (the METRICSZ schema):
  ///   {"schema_version": 1,
  ///    "counters":   {name: integer, ...},
  ///    "gauges":     {name: number, ...},
  ///    "histograms": {name: {"count": n, "sum_us": n, "max_us": n,
  ///                          "mean_us": x, "p50_us": n, "p95_us": n,
  ///                          "p99_us": n}, ...}}
  /// Keys are sorted (JsonValue objects are ordered maps), so the rendered
  /// text is deterministic for a given state.
  JsonValue ToJson() const;
};

/// Process-wide named-metrics registry: the single source of truth every
/// statsz/metricsz page renders from.
///
/// Usage pattern: each subsystem registers its handles once at
/// construction (mutex-protected, idempotent — re-registering a name
/// returns the same handle), keeps the raw pointers, and bumps them on the
/// hot path with no registry involvement. Handles live as long as the
/// registry; they are never invalidated by later registrations.
///
/// Snapshot consistency contract: TakeSnapshot reads counters in *reverse
/// registration order*. Register counters in the order a request touches
/// them (admission first, completion last) and the snapshot is
/// monotone-consistent for every such pair: if each request increments A
/// strictly before B and A was registered before B, no snapshot will ever
/// show B > A. This is the whole fix for the classic
/// "completed > accepted" statsz glitch — one registry, one read pass,
/// pipeline-ordered reads — without any lock on the increment path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a metric. The returned handle is owned by the
  /// registry and stays valid for the registry's lifetime. Registering the
  /// same name with two different types is a programming error and
  /// asserts in debug builds; in release the first registration wins and
  /// a fresh unconnected handle is returned for the mismatched request.
  Counter* RegisterCounter(std::string_view name);
  Gauge* RegisterGauge(std::string_view name);
  LatencyHistogram* RegisterHistogram(std::string_view name);

  /// One consistent pass over every metric (see class comment for the
  /// counter-ordering guarantee). Histograms are racy-but-monotone like
  /// LatencyHistogram::TakeSnapshot.
  MetricsSnapshot TakeSnapshot() const;

  /// TakeSnapshot().ToJson().Serialize() — the METRICSZ payload.
  std::string RenderJson() const;

 private:
  mutable std::mutex mu_;
  // unique_ptr elements give stable handle addresses across growth (the
  // handles themselves hold atomics and are neither movable nor copyable);
  // histograms are emplaced directly, which a deque never relocates.
  std::deque<std::unique_ptr<Counter>> counters_;
  std::deque<std::unique_ptr<Gauge>> gauges_;
  std::deque<LatencyHistogram> histograms_;
  std::deque<std::string> histogram_names_;
  std::unordered_map<std::string, size_t> counter_index_;
  std::unordered_map<std::string, size_t> gauge_index_;
  std::unordered_map<std::string, size_t> histogram_index_;
};

}  // namespace texrheo::obs

#endif  // TEXRHEO_OBS_METRICS_H_
