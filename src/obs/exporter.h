#ifndef TEXRHEO_OBS_EXPORTER_H_
#define TEXRHEO_OBS_EXPORTER_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"

namespace texrheo::obs {

/// Periodically writes a metrics snapshot to a file, atomically (temp +
/// fsync + rename via util/atomic_file), so a scraper reading the file
/// never sees a torn JSON document.
///
/// The writer takes a render callback instead of a registry so callers can
/// enrich the payload (the serve binary prepends its model section); the
/// callback runs on the writer thread and must be thread-safe.
class PeriodicMetricsWriter {
 public:
  struct Options {
    std::string path;            ///< Destination file (e.g. DIR/metricsz.json).
    int interval_millis = 1000;  ///< Clamped to >= 10.
  };

  /// `render` produces the full file payload per tick.
  PeriodicMetricsWriter(std::function<std::string()> render, Options options);

  /// Stops (with one final write) and joins.
  ~PeriodicMetricsWriter();

  PeriodicMetricsWriter(const PeriodicMetricsWriter&) = delete;
  PeriodicMetricsWriter& operator=(const PeriodicMetricsWriter&) = delete;

  /// Writes once synchronously, then starts the background thread.
  /// Fails (and does not start the thread) when the first write fails —
  /// a bad --metrics-dir should be a startup error, not a silent log spam.
  Status Start();

  /// Final write + join. Idempotent.
  void Stop();

  /// One synchronous write of the current snapshot.
  Status WriteOnce() const;

 private:
  void Loop();

  const std::function<std::string()> render_;
  const Options options_;

  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  // Guarded by mu_.
  bool started_ = false;   // Guarded by mu_.
  std::thread thread_;
};

}  // namespace texrheo::obs

#endif  // TEXRHEO_OBS_EXPORTER_H_
