#include "obs/trace.h"

#include <utility>

namespace texrheo::obs {

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = std::exchange(other.tracer_, nullptr);
    span_id_ = other.span_id_;
    parent_id_ = other.parent_id_;
    name_ = std::move(other.name_);
    start_micros_ = other.start_micros_;
  }
  return *this;
}

void TraceSpan::End() {
  Tracer* tracer = std::exchange(tracer_, nullptr);
  if (tracer == nullptr) return;
  tracer->Finish(*this, tracer->clock().NowMicros());
}

TraceSpan TraceSpan::StartChild(std::string_view name) {
  if (tracer_ == nullptr) return TraceSpan();
  return tracer_->StartSpanWithParent(name, span_id_);
}

Tracer::Tracer(const Clock* clock, Options options)
    : clock_(clock != nullptr ? clock : &Clock::Steady()),
      options_(options) {}

TraceSpan Tracer::StartSpanWithParent(std::string_view name,
                                      uint64_t parent_id) {
  return TraceSpan(this, next_span_id_.fetch_add(1, std::memory_order_relaxed),
                   parent_id, std::string(name), clock_->NowMicros());
}

void Tracer::ExportDurationsTo(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = registry;
  histograms_.clear();
}

LatencyHistogram* Tracer::HistogramFor(const std::string& span_name) {
  // Caller holds mu_. Registration is once per distinct span name.
  auto it = histograms_.find(span_name);
  if (it != histograms_.end()) return it->second;
  LatencyHistogram* hist =
      registry_->RegisterHistogram("trace." + span_name + "_us");
  histograms_.emplace(span_name, hist);
  return hist;
}

void Tracer::Finish(const TraceSpan& span, int64_t end_micros) {
  SpanRecord record;
  record.span_id = span.span_id_;
  record.parent_id = span.parent_id_;
  record.name = span.name_;
  record.start_micros = span.start_micros_;
  record.duration_micros = end_micros - span.start_micros_;
  const int64_t duration = record.duration_micros;
  LatencyHistogram* hist = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (registry_ != nullptr) hist = HistogramFor(record.name);
    if (options_.max_records > 0) {
      if (records_.size() >= options_.max_records) {
        records_.pop_front();
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
      records_.push_back(std::move(record));
    }
  }
  if (hist != nullptr) hist->Record(duration);
}

std::vector<SpanRecord> Tracer::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SpanRecord>(records_.begin(), records_.end());
}

std::vector<SpanRecord> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out(std::make_move_iterator(records_.begin()),
                              std::make_move_iterator(records_.end()));
  records_.clear();
  return out;
}

}  // namespace texrheo::obs
