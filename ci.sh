#!/usr/bin/env bash
# CI driver: tier-1 verify (full build + ctest), a ThreadSanitizer pass over
# the concurrency-sensitive tests (including the serving layer and the
# socket chaos suite), an ASan+UBSan pass over the serialization /
# checkpoint / fault-injection paths plus the hostile-input server suite
# and a texrheo_serve smoke session (toy model, scripted queries, clean
# shutdown), and the Gibbs-sweep / serving benchmarks with JSON output.
#
# Usage:
#   ./ci.sh            # tier-1 + TSan + ASan/UBSan
#   ./ci.sh --bench    # also run the threads + checkpoint benchmarks
#                      # (JSON to bench/out)
#   ./ci.sh --metrics  # also validate the METRICSZ pipeline end to end:
#                      # selftest with --metrics-dir, jq schema check of the
#                      # exported file, and the instrumentation-overhead
#                      # benches (fails if instrumented sweeps are > 2%
#                      # slower; JSON to bench/out/obs_overhead.json)
#
# Exit code is nonzero if any stage fails.

set -euo pipefail

cd "$(dirname "$0")"

RUN_BENCH=0
RUN_METRICS=0
for arg in "$@"; do
  case "$arg" in
    --bench) RUN_BENCH=1 ;;
    --metrics) RUN_METRICS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> tier-1: configure + build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "==> TSan: rebuild concurrency-sensitive targets with -fsanitize=thread"
# A separate build tree keeps the sanitizer objects out of the main build.
cmake -B build-tsan -S . -DTEXRHEO_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target thread_pool_test geweke_test sampler_exactness_test \
  query_engine_test serve_snapshot_test joint_topic_model_test \
  serve_chaos_test router_chaos_test backoff_test metrics_registry_test \
  trace_test pipeline_e2e_test embed_trainer_test embedding_index_test \
  ingest_test ingest_chaos_test alias_table_test topic_gaussians_test \
  sparse_gibbs_test checkpoint_test
(cd build-tsan && ctest --output-on-failure \
  -R '^(thread_pool_test|geweke_test|sampler_exactness_test|query_engine_test|serve_snapshot_test|joint_topic_model_test|serve_chaos_test|router_chaos_test|backoff_test|metrics_registry_test|trace_test|pipeline_e2e_test|embed_trainer_test|embedding_index_test|ingest_test|ingest_chaos_test|alias_table_test|topic_gaussians_test|sparse_gibbs_test|checkpoint_test)$')

echo "==> ASan/UBSan: rebuild durability-sensitive targets with -fsanitize=address,undefined"
cmake -B build-asan -S . -DTEXRHEO_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target serialization_test robustness_test model_binary_test \
  checkpoint_test atomic_file_test serve_hostile_test backoff_test \
  router_chaos_test pipeline_e2e_test embed_trainer_test \
  embedding_index_test ingest_test ingest_chaos_test geweke_test \
  sampler_exactness_test alias_table_test topic_gaussians_test \
  sparse_gibbs_test joint_topic_model_test
(cd build-asan && ctest --output-on-failure \
  -R '^(serialization_test|robustness_test|model_binary_test|checkpoint_test|atomic_file_test|serve_hostile_test|backoff_test|router_chaos_test|pipeline_e2e_test|embed_trainer_test|embedding_index_test|ingest_test|ingest_chaos_test|geweke_test|sampler_exactness_test|alias_table_test|topic_gaussians_test|sparse_gibbs_test|joint_topic_model_test)$')

echo "==> serve smoke: texrheo_serve --toy --selftest under ASan/UBSan"
# Trains a small toy model, runs the scripted query session (PREDICT /
# NEAREST / SIMILAR / TOPIC / RELOAD / STATSZ) over real sockets, and
# exits; ASan makes shutdown leaks and use-after-frees fatal.
cmake --build build-asan -j "$JOBS" --target texrheo_serve
./build-asan/src/serve/texrheo_serve --toy --toy-scale=0.03 --selftest

echo "==> ingest smoke: texrheo_ingest --toy --selftest under ASan/UBSan"
# Drives the full streaming loop over real sockets: drifting-stream
# INGEST lines, wire redelivery dedup, the stale-vocab contract, INGESTZ,
# a REFRESH cycle (retrain + pack + reload + WAL compaction), and a
# post-refresh ingest; ASan covers the WAL + mmap-reload paths.
cmake --build build-asan -j "$JOBS" --target texrheo_ingest
./build-asan/src/ingest/texrheo_ingest --toy --toy-scale=0.03 --selftest

if [[ "$RUN_METRICS" == 1 ]]; then
  echo "==> metrics: selftest with --metrics-dir + jq schema validation"
  METRICS_DIR="$(mktemp -d)"
  trap 'rm -rf "$METRICS_DIR"' EXIT
  ./build/src/serve/texrheo_serve --toy --toy-scale=0.03 --selftest \
    --metrics-dir="$METRICS_DIR" --metrics-interval-ms=200
  test -s "$METRICS_DIR/metricsz.json"
  jq -e -f ci/metricsz_schema.jq "$METRICS_DIR/metricsz.json" >/dev/null
  # The schema's breaker trio is all-or-none (handler-mode fronts have no
  # reload breaker); an engine front must actually carry it.
  jq -e '.counters | has("serve.breaker.trips")' \
    "$METRICS_DIR/metricsz.json" >/dev/null
  echo "metricsz.json conforms to ci/metricsz_schema.jq"

  echo "==> metrics: ingest METRICSZ over the wire + jq schema validation"
  # Same schema, other binary: start the toy ingest front, push one record
  # through INGEST + REFRESH, and validate the METRICSZ document it serves
  # (exercises the conditional ingest.* monotone chains in the schema).
  ./build/src/ingest/texrheo_ingest --toy --toy-scale=0.03 --port=0 \
    > "$METRICS_DIR/ingest_server.log" 2>&1 &
  INGEST_PID=$!
  INGEST_PORT=""
  for _ in $(seq 1 50); do
    INGEST_PORT="$(sed -n \
      's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$METRICS_DIR/ingest_server.log" | head -1)"
    [[ -n "$INGEST_PORT" ]] && break
    sleep 0.1
  done
  [[ -n "$INGEST_PORT" ]] || { echo "ingest front never listened" >&2; exit 1; }
  exec 3<>"/dev/tcp/127.0.0.1/$INGEST_PORT"
  printf 'INGEST gelatin=0.009 terms=katai\r\nREFRESH\r\nMETRICSZ\r\nQUIT\r\n' >&3
  INGEST_METRICSZ=""
  { read -r _ingest_reply && read -r _refresh_reply \
      && read -r INGEST_METRICSZ; } <&3 || true
  exec 3<&- 3>&-
  kill "$INGEST_PID" 2>/dev/null; wait "$INGEST_PID" 2>/dev/null || true
  printf '%s' "$INGEST_METRICSZ" | tr -d '\r' > "$METRICS_DIR/ingest_metricsz.json"
  test -s "$METRICS_DIR/ingest_metricsz.json"
  jq -e -f ci/metricsz_schema.jq "$METRICS_DIR/ingest_metricsz.json" >/dev/null
  jq -e '.counters | has("ingest.records.accepted")' \
    "$METRICS_DIR/ingest_metricsz.json" >/dev/null
  echo "ingest METRICSZ conforms to ci/metricsz_schema.jq"

  echo "==> metrics: instrumentation overhead (BM_MetricsOverhead + BM_InstrumentedSweep)"
  cmake --build build -j "$JOBS" --target bench_perf
  mkdir -p bench/out
  ./build/bench/bench_perf \
    --benchmark_filter='BM_(MetricsOverhead|InstrumentedSweep)' \
    --benchmark_min_time=2 \
    --benchmark_out=bench/out/obs_overhead.json \
    --benchmark_out_format=json
  echo "wrote bench/out/obs_overhead.json"
  # Fail when the instrumented chain loses > 2% sweep throughput. The
  # bench interleaves plain/instrumented sweeps per iteration, so the
  # paired overhead_pct is drift-free even on a busy single-core box.
  jq -e '
    [.benchmarks[] | select(.name | startswith("BM_InstrumentedSweep"))
     | .overhead_pct] | .[0] | . <= 2.0
  ' bench/out/obs_overhead.json >/dev/null \
    || { echo "instrumented sweep throughput regressed > 2%" >&2; exit 1; }
  echo "instrumented sweep throughput within 2% of plain"
fi

if [[ "$RUN_BENCH" == 1 ]]; then
  echo "==> bench: Gibbs sweep scaling at 1/2/4/8 threads"
  cmake --build build -j "$JOBS" --target bench_perf
  mkdir -p bench/out
  ./build/bench/bench_perf \
    --benchmark_filter='BM_(GibbsSweepThreads|CollapsedSweepThreads)' \
    --benchmark_out=bench/out/gibbs_threads.json \
    --benchmark_out_format=json
  echo "wrote bench/out/gibbs_threads.json"
  echo "==> bench: sparse vs dense z-sampler (alias + MH decomposition)"
  ./build/bench/bench_perf \
    --benchmark_filter='BM_SparseGibbs(Sweep|Speedup)' \
    --benchmark_min_time=1 \
    --benchmark_repetitions=3 \
    --benchmark_out=bench/out/gibbs_sparse.json \
    --benchmark_out_format=json
  echo "wrote bench/out/gibbs_sparse.json"
  # The point of the sparse decomposition: at K = 64 on the z-heavy bench
  # corpus the sparse sampler must clear 5x the dense sweep throughput.
  # The verdict comes from BM_SparseGibbsSpeedup, which interleaves one
  # dense and one sparse sweep per timed iteration so a load window on the
  # CI box dilates both sides of the ratio equally; gating on the median
  # across the 3 repetitions then discards any residual outlier rep.
  jq -e '
    ([.benchmarks[]
      | select(.name == "BM_SparseGibbsSpeedup/64/manual_time_median")
      | .speedup] | .[0]) >= 5
  ' bench/out/gibbs_sparse.json >/dev/null \
    || { echo "sparse z-sampler is < 5x dense sweep throughput at K=64" >&2; exit 1; }
  jq -r '
    ([.benchmarks[]
      | select(.name == "BM_SparseGibbsSpeedup/64/manual_time_median")
      | .speedup] | .[0]) as $ratio
    | "sparse z-sampler is \($ratio * 10 | floor / 10)x dense at K=64"
  ' bench/out/gibbs_sparse.json
  echo "==> bench: checkpoint save/restore cost"
  ./build/bench/bench_perf \
    --benchmark_filter='BM_CheckpointSaveRestore' \
    --benchmark_out=bench/out/checkpoint.json \
    --benchmark_out_format=json
  echo "wrote bench/out/checkpoint.json"
  echo "==> bench: query engine (fold-in vs cached, batching under load)"
  ./build/bench/bench_perf \
    --benchmark_filter='BM_QueryEngine' \
    --benchmark_out=bench/out/serve.json \
    --benchmark_out_format=json
  echo "wrote bench/out/serve.json"
  echo "==> bench: snapshot load, v2 text parse vs mmap (cold/warm)"
  ./build/bench/bench_perf \
    --benchmark_filter='BM_SnapshotLoad' \
    --benchmark_out=bench/out/model_load.json \
    --benchmark_out_format=json
  echo "wrote bench/out/model_load.json"
  # The point of the binary format: loading the packed pair must be at
  # least 20x faster than parsing the v2 text file (warm page cache; the
  # cold number is reported but advisory, POSIX_FADV_DONTNEED is a hint).
  jq -e '
    ([.benchmarks[] | select(.name == "BM_SnapshotLoadV2Parse")
      | .real_time] | .[0]) as $v2
    | ([.benchmarks[] | select(.name == "BM_SnapshotLoadMmapWarm")
        | .real_time] | .[0]) as $warm
    | ($v2 / $warm) >= 20
  ' bench/out/model_load.json >/dev/null \
    || { echo "mmap snapshot load is < 20x faster than v2 parse" >&2; exit 1; }
  jq -r '
    ([.benchmarks[] | select(.name == "BM_SnapshotLoadV2Parse")
      | .real_time] | .[0]) as $v2
    | ([.benchmarks[] | select(.name == "BM_SnapshotLoadMmapWarm")
        | .real_time] | .[0]) as $warm
    | "mmap warm load is \($v2 / $warm | floor)x faster than v2 parse"
  ' bench/out/model_load.json

  echo "==> bench: healthy-client latency with a stalled peer on the wire"
  ./build/bench/bench_perf \
    --benchmark_filter='BM_ServerUnderSlowClient' \
    --benchmark_out=bench/out/serve_robustness.json \
    --benchmark_out_format=json
  echo "wrote bench/out/serve_robustness.json"

  echo "==> bench: router SLO (open-loop load, replica kill/restart mid-run)"
  cmake --build build -j "$JOBS" --target bench_router
  ./build/bench/bench_router --out=bench/out/router_slo.json
  echo "wrote bench/out/router_slo.json"
  # The fleet contract: with every replica up, the router adds zero errors
  # and sheds nothing; with one of three replicas killed mid-run, retries +
  # breaker ejection keep availability >= 99% for scheduled arrivals.
  jq -e '
    (.healthy.error_rate == 0)
    and (.healthy.shed_rate == 0)
    and (.kill_window.availability >= 0.99)
    and (.kill_window.replica_restarted == true)
  ' bench/out/router_slo.json >/dev/null \
    || { echo "router SLO gate failed (see bench/out/router_slo.json)" >&2; exit 1; }
  echo "router SLO gate passed"

  echo "==> bench: SIMILAR backend ablation (precision@10 vs dish templates)"
  cmake --build build -j "$JOBS" --target bench_similarity
  ./build/bench/bench_similarity --out=bench/out/similarity.json
  echo "wrote bench/out/similarity.json"
  # The fusion contract: the weighted reciprocal-rank blend must be at
  # least as precise as every single backend it fuses — otherwise the
  # default mode weights in QueryEngineConfig are subtracting information.
  jq -e '
    .modes.fused.precision_at_10 as $fused
    | ($fused >= .modes.kl.precision_at_10)
      and ($fused >= .modes.embed.precision_at_10)
      and ($fused >= .modes.lexical.precision_at_10)
  ' bench/out/similarity.json >/dev/null \
    || { echo "similarity fusion gate failed (see bench/out/similarity.json)" >&2; exit 1; }
  echo "similarity fusion gate passed: fused >= every single backend"

  echo "==> bench: streaming ingestion SLO (arrival->queryable, refresh window)"
  cmake --build build -j "$JOBS" --target bench_ingest
  ./build/bench/bench_ingest --out=bench/out/ingest.json
  echo "wrote bench/out/ingest.json"
  # The zero-downtime contract: a fixed-cadence query stream running
  # across a full refresh cycle (retrain + pack + rolling reload of all
  # replicas + WAL compaction) keeps availability >= 99%, and the swap
  # actually happened (fingerprint changed, fleet converged on it).
  jq -e '
    (.refresh_window.availability >= 0.99)
    and (.refresh_window.fingerprint_changed == true)
    and (.refresh_window.fleet_converged == true)
  ' bench/out/ingest.json >/dev/null \
    || { echo "ingest SLO gate failed (see bench/out/ingest.json)" >&2; exit 1; }
  echo "ingest SLO gate passed"
fi

echo "==> CI passed"
